//! # generic-hpc — facade crate
//!
//! Re-exports the whole workspace under one roof so examples and downstream
//! users can depend on a single crate. See the README for the architecture
//! overview and `DESIGN.md` for the paper-reproduction map.

pub use gp_checker as checker;
pub use gp_core as core;
pub use gp_distsim as distsim;
pub use gp_graphs as graphs;
pub use gp_parallel as parallel;
pub use gp_proofs as proofs;
pub use gp_rewrite as rewrite;
pub use gp_sequences as sequences;
pub use gp_service as service;
pub use gp_taxonomy as taxonomy;
pub use gp_telemetry as telemetry;
