//! Property-based tests (proptest) on the core invariants: sorting
//! contracts, search postconditions, rewrite semantic preservation,
//! algebraic laws of the numeric substrate, parallel/sequential agreement,
//! and simulator determinism.

use generic_hpc::core::algebra::{monoid_fold, AddOp, AlgEq, MulOp, Recip};
use generic_hpc::core::cursor::SliceCursor;
use generic_hpc::core::numeric::Rational;
use generic_hpc::core::order::{NaturalLess, StrictWeakOrder};
use generic_hpc::parallel::par::{par_reduce, par_scan, par_sort};
use generic_hpc::rewrite::{BinOp, Expr, Simplifier, Type, UnOp, Value};
use generic_hpc::sequences::binary::{binary_search, is_sorted, lower_bound, upper_bound};
use generic_hpc::sequences::sort::{introsort, merge_sort_slice, sort_list};
use generic_hpc::sequences::SList;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// introsort produces a sorted permutation of its input.
    #[test]
    fn introsort_sorts_any_input(mut v in prop::collection::vec(-1000i64..1000, 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        introsort(&mut v, &NaturalLess);
        prop_assert_eq!(v, expect);
    }

    /// merge sort is stable: equal keys keep their original order.
    #[test]
    fn merge_sort_is_stable(keys in prop::collection::vec(0i32..5, 0..200)) {
        let mut v: Vec<(i32, usize)> = keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
        merge_sort_slice(&mut v, &generic_hpc::core::order::ByKey(|p: &(i32, usize)| p.0));
        for w in v.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// Forward-only list sort agrees with slice sort.
    #[test]
    fn list_sort_matches_slice_sort(v in prop::collection::vec(-500i64..500, 0..150)) {
        let l = SList::from_slice(&v);
        let sorted = sort_list(&l, &NaturalLess);
        let mut expect = v.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted.to_vec(), expect);
    }

    /// lower_bound/upper_bound postconditions on arbitrary sorted data.
    #[test]
    fn bounds_postconditions(mut v in prop::collection::vec(-100i64..100, 1..200), needle in -100i64..100) {
        v.sort_unstable();
        let r = SliceCursor::whole(&v);
        prop_assert!(is_sorted(&r, &NaturalLess));
        let lb = lower_bound(&r, &needle, &NaturalLess).position();
        let ub = upper_bound(&r, &needle, &NaturalLess).position();
        prop_assert!(lb <= ub);
        // Everything before lb is < needle; everything from ub on is > needle.
        for (i, x) in v.iter().enumerate() {
            if i < lb { prop_assert!(*x < needle); }
            if i >= ub { prop_assert!(*x > needle); }
            if i >= lb && i < ub { prop_assert_eq!(*x, needle); }
        }
        prop_assert_eq!(binary_search(&r, &needle, &NaturalLess), v.contains(&needle));
    }

    /// Simplification preserves evaluation for random integer expressions.
    #[test]
    fn simplify_preserves_semantics(ops in prop::collection::vec((0u8..5, -4i64..5), 1..25), x in -50i64..50, y in -50i64..50) {
        // Build a deterministic expression from the op list.
        let mut e = Expr::var("x", Type::Int);
        for (k, c) in ops {
            e = match k {
                0 => Expr::bin(BinOp::Add, e, Expr::int(c)),
                1 => Expr::bin(BinOp::Mul, e, Expr::int(c)),
                2 => Expr::bin(BinOp::Sub, e, Expr::var("y", Type::Int)),
                3 => Expr::un(UnOp::Neg, e),
                _ => Expr::bin(BinOp::Add, e, Expr::bin(
                        BinOp::Add,
                        Expr::var("y", Type::Int),
                        Expr::un(UnOp::Neg, Expr::var("y", Type::Int)),
                    )),
            };
        }
        let env: BTreeMap<String, Value> =
            [("x".to_string(), Value::Int(x)), ("y".to_string(), Value::Int(y))].into();
        let (out, _) = Simplifier::standard().simplify(&e);
        prop_assert_eq!(e.eval(&env), out.eval(&env));
    }

    /// Rational arithmetic satisfies the field laws exactly.
    #[test]
    fn rational_field_laws(an in -50i64..50, ad in 1i64..20, bn in -50i64..50, bd in 1i64..20, cn in -50i64..50, cd in 1i64..20) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Rational::from_int(0));
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rational::from_int(1));
        }
    }

    /// Parallel reduce/scan agree with the sequential Monoid fold for every
    /// thread count.
    #[test]
    fn parallel_agrees_with_sequential(v in prop::collection::vec(-1000i64..1000, 0..500), threads in 1usize..9) {
        prop_assert_eq!(par_reduce(&v, threads, &AddOp), monoid_fold(&AddOp, &v));
        let scanned = par_scan(&v, threads, &AddOp);
        let mut acc = 0i64;
        let expect: Vec<i64> = v.iter().map(|x| { acc += x; acc }).collect();
        prop_assert_eq!(scanned, expect);
        let mut sorted = v.clone();
        par_sort(&mut sorted, threads, &NaturalLess);
        let mut expect = v.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    /// The induced equivalence of any ByKey order is reflexive, symmetric,
    /// and transitive on arbitrary samples — the Fig. 6 derived properties,
    /// checked at random.
    #[test]
    fn derived_equivalence_properties(v in prop::collection::vec((0i32..10, -100i32..100), 1..40)) {
        let ord = generic_hpc::core::order::ByKey(|p: &(i32, i32)| p.0);
        for a in &v {
            prop_assert!(ord.equiv(a, a));
            for b in &v {
                prop_assert_eq!(ord.equiv(a, b), ord.equiv(b, a));
            }
        }
    }

    /// Complex multiplication is associative and distributes (within a
    /// norm-scaled floating-point tolerance — component-wise epsilons are
    /// too strict under cancellation) — the Monoid model behind the
    /// A·I → A rewrite instance.
    #[test]
    fn complex_algebra_laws(ar in -10.0f64..10.0, ai in -10.0f64..10.0,
                            br in -10.0f64..10.0, bi in -10.0f64..10.0,
                            cr in -10.0f64..10.0, ci in -10.0f64..10.0) {
        use generic_hpc::core::numeric::Complex;
        let (a, b, c) = (Complex::new(ar, ai), Complex::new(br, bi), Complex::new(cr, ci));
        let dist = |l: Complex<f64>, r: Complex<f64>| (l - r).norm_sqr().sqrt();
        let scale = (a.norm_sqr() * b.norm_sqr() * c.norm_sqr()).sqrt().max(1.0);
        prop_assert!(dist((a * b) * c, a * (b * c)) <= 1e-10 * scale);
        prop_assert!(dist(a * (b + c), a * b + a * c) <= 1e-10 * scale);
        let one = Complex::new(1.0, 0.0);
        prop_assert!((a * one).alg_eq(&a));
        let _ = MulOp; // the witness these laws back
    }

    /// Simulator determinism: identical seeds produce identical async runs.
    #[test]
    fn async_simulation_is_deterministic(seed in 0u64..1000, n in 3usize..20) {
        use generic_hpc::distsim::algorithms::lcr_nodes;
        use generic_hpc::distsim::engine::AsyncRunner;
        use generic_hpc::distsim::topology::Topology;
        let uids: Vec<u64> = (1..=n as u64).collect();
        let run = || {
            let mut r = AsyncRunner::new(
                Topology::ring_unidirectional(n), lcr_nodes(&uids), 5, seed);
            r.run(1_000_000)
        };
        prop_assert_eq!(run(), run());
    }
}
