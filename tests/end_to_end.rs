//! Cross-crate integration tests: each one exercises a pipeline that spans
//! several subsystems, mirroring how the paper's systems are meant to
//! compose.

use generic_hpc::checker::analyze::{analyze, DiagnosticCode, Severity};
use generic_hpc::checker::ir::build::*;
use generic_hpc::checker::ir::{AlgorithmName as A, ContainerKind as K, Program};
use generic_hpc::core::archetype::{Counters, CountingCursor, CountingOrder};
use generic_hpc::core::cursor::{Range, SliceCursor};
use generic_hpc::core::order::{check_strict_weak_order, CaseInsensitive, NaturalLess};
use generic_hpc::proofs::logic::SymbolMap;
use generic_hpc::proofs::theories::order as swo_theory;
use generic_hpc::sequences::binary::{binary_search, is_sorted, lower_bound};
use generic_hpc::sequences::find::find;
use generic_hpc::sequences::sort::ConceptSort;
use generic_hpc::sequences::{ArraySeq, SList};

/// The checker's §3.2 suggestion is *sound*: acting on it (replacing find
/// with lower_bound on sorted data) returns the same position with
/// asymptotically fewer comparisons.
#[test]
fn acting_on_the_checker_suggestion_is_sound_and_profitable() {
    // 1. The checker flags the pattern.
    let program = Program::new(
        "sorted-then-find",
        vec![
            container("v", K::Vector),
            call(A::Sort, "v"),
            call_into(A::Find, "v", "i"),
        ],
    );
    let diags = analyze(&program);
    assert!(diags.iter().any(
        |d| d.code == DiagnosticCode::SortedLinearSearch && d.severity == Severity::Suggestion
    ));

    // 2. Acting on it preserves the answer...
    let data: Vec<i64> = (0..10_000).map(|x| x * 2).collect();
    let needle = 19_000;
    let linear_pos = find(SliceCursor::whole(&data), &needle).map(|c| c.position());
    let r = SliceCursor::whole(&data);
    let lb = lower_bound(&r, &needle, &NaturalLess);
    assert_eq!(linear_pos, Some(lb.position()));

    // 3. ...and costs O(log n) comparisons instead of O(n) reads.
    let counters = Counters::new();
    let ord = CountingOrder::new(NaturalLess, counters.clone());
    let wrapped = Range::new(
        CountingCursor::new(SliceCursor::new(&data, 0), counters.clone()),
        CountingCursor::new(SliceCursor::new(&data, data.len()), counters.clone()),
    );
    let _ = lower_bound(&wrapped, &needle, &ord);
    assert!(counters.comparisons() <= 16);
}

/// The Fig. 6 story end to end: the axioms hold executably on a model, the
/// derived theorems check formally, the generic proof instantiates to the
/// model's symbols, and the model drives a correct sort.
#[test]
fn strict_weak_order_pipeline_from_axioms_to_sorting() {
    // Executable axioms on the concrete model.
    let words: Vec<String> = ["Pear", "apple", "FIG", "Apple", "fig"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(check_strict_weak_order(&CaseInsensitive, &words).is_ok());

    // Formal derivations over the abstract concept.
    let theory = swo_theory::theory();
    assert!(theory.check().is_ok());

    // Generic proof instantiated onto this model's symbols.
    let map = SymbolMap::new([("lt", "ci_lt"), ("eqv", "ci_eqv")]);
    assert!(theory.instantiate("case-insensitive", &map).check().is_ok());

    // The validated comparator drives sorting on both container kinds.
    let mut arr: ArraySeq<String> = words.iter().cloned().collect();
    arr.sort_by(&CaseInsensitive);
    assert!(is_sorted(&arr.range(), &CaseInsensitive));
    let mut list: SList<String> = words.iter().cloned().collect();
    list.sort_by(&CaseInsensitive);
    let ordered = list.to_vec();
    assert!(ordered
        .windows(2)
        .all(|w| !CaseInsensitive.less(&w[1], &w[0])));
    // Both agree up to equivalence classes.
    assert_eq!(arr.len(), list.len());

    use generic_hpc::core::order::StrictWeakOrder;
    // And binary search works over the sorted result.
    assert!(binary_search(
        &arr.range(),
        &"FIG".to_string(),
        &CaseInsensitive
    ));
}

/// The rewrite engine's output evaluates identically to its input on the
/// numeric substrate, including the exact rational field.
#[test]
fn rewriting_preserves_rational_arithmetic() {
    use generic_hpc::core::numeric::Rational;
    use generic_hpc::rewrite::{BinOp, Expr, Simplifier, Type, UnOp, Value};
    use std::collections::BTreeMap;

    let r = |n, d| Expr::Lit(Value::Rational(Rational::new(n, d)));
    // ((x * (1/x)) * (2/3 + 0)) with x rational.
    let x = Expr::var("x", Type::Rational);
    let e = Expr::bin(
        BinOp::Mul,
        Expr::bin(BinOp::Mul, x.clone(), Expr::un(UnOp::Recip, x)),
        Expr::bin(BinOp::Add, r(2, 3), r(0, 1)),
    );
    let s = Simplifier::standard();
    let (out, stats) = s.simplify(&e);
    assert!(stats.total() >= 2);
    let env: BTreeMap<String, Value> =
        [("x".to_string(), Value::Rational(Rational::new(7, 5)))].into();
    assert_eq!(e.eval(&env), out.eval(&env));
    // Fully constant-folds to 2/3.
    assert_eq!(out, r(2, 3));
}

/// Reflective (registry) dispatch and static (trait) dispatch agree on the
/// sort algorithm for both container kinds.
#[test]
fn reflective_and_static_dispatch_agree() {
    use generic_hpc::core::concept::resolve_overload;
    use generic_hpc::sequences::concepts::{seeded_registry, sort_implementations, types};

    let reg = seeded_registry();
    let impls = sort_implementations();
    let reflective_array = resolve_overload(&reg, "sort", &impls, &[types::ARRAY_CURSOR])
        .unwrap()
        .chosen;
    let reflective_list = resolve_overload(&reg, "sort", &impls, &[types::LIST_CURSOR])
        .unwrap()
        .chosen;
    assert_eq!(reflective_array, "intro_sort");
    assert_eq!(reflective_list, "merge_sort");
    assert_eq!(ArraySeq::<i64>::algorithm_name(), "introsort");
    assert_eq!(SList::<i64>::algorithm_name(), "merge_sort");
}

/// The taxonomy's selected distributed algorithm, when simulated, meets the
/// very complexity attributes the taxonomy advertised.
#[test]
fn taxonomy_selection_is_validated_by_simulation() {
    use generic_hpc::core::complexity::Complexity;
    use generic_hpc::distsim::algorithms::{bit_reversal_ring_uids, consensus, hs_nodes};
    use generic_hpc::distsim::engine::SyncRunner;
    use generic_hpc::distsim::topology::Topology;
    use generic_hpc::taxonomy::{
        catalog, select_best, Problem, Requirement, Timing, Topology as TaxTopology,
    };

    let cat = catalog();
    let req = Requirement::basic(
        Problem::LeaderElection,
        TaxTopology::BiRing,
        Timing::Asynchronous,
    );
    let alg = select_best(&cat, &req).expect("HS applies");
    assert_eq!(alg.name, "Hirschberg-Sinclair");

    // Measure across sizes (bit-reversal uids: the HS stress family);
    // fit against the advertised O(n log n).
    let mut samples = Vec::new();
    for n in [16usize, 32, 64, 128, 256] {
        let uids = bit_reversal_ring_uids(n);
        let mut r = SyncRunner::new(Topology::ring_bidirectional(n), hs_nodes(&uids));
        let stats = r.run(200 * n as u64);
        assert_eq!(consensus(&stats), Some(n as u64));
        samples.push((n as f64, stats.messages as f64));
    }
    assert!(alg.messages.fit(&samples).bound_holds);
    // And the measured counts reject a too-small bound.
    assert!(!Complexity::linear("n").fit(&samples).bound_holds);
}

/// Parallel primitives agree with their concept-level sequential
/// specifications on shared workloads.
#[test]
fn parallel_primitives_match_sequential_spec() {
    use generic_hpc::core::algebra::{monoid_fold, AddOp};
    use generic_hpc::parallel::par::{par_reduce, par_scan};
    use generic_hpc::parallel::BlockVec;
    use generic_hpc::sequences::fold::accumulate;

    let data: Vec<i64> = (0..50_000).map(|x| (x * 31 + 7) % 1000 - 500).collect();
    let arr = ArraySeq::from_vec(data.clone());
    let via_cursors = accumulate(arr.range(), &AddOp);
    let via_fold = monoid_fold(&AddOp, &data);
    let via_par = par_reduce(&data, 4, &AddOp);
    let via_dist = BlockVec::from_vec(data.clone(), 4).reduce(&AddOp);
    assert_eq!(via_cursors, via_fold);
    assert_eq!(via_fold, via_par);
    assert_eq!(via_par, via_dist);

    let scanned = par_scan(&data, 8, &AddOp);
    assert_eq!(*scanned.last().unwrap(), via_fold);
}
