//! Graph analysis with concept-generic algorithms: one algorithm source,
//! two representations (adjacency list and CSR), plus the full BGL-style
//! toolkit on a small logistics network.
//!
//! ```text
//! cargo run --example graph_analysis
//! ```

use generic_hpc::graphs::algo::{
    bfs_distances, connected_components, dijkstra, kruskal_mst, topological_sort,
};
use generic_hpc::graphs::property::{EdgeMap, PropertyMap};
use generic_hpc::graphs::{AdjacencyList, CsrGraph, Edge};

fn main() {
    // A small freight network: 8 depots, directed lanes with travel hours.
    let lanes: &[(u32, u32, f64)] = &[
        (0, 1, 4.0),
        (0, 2, 2.0),
        (1, 3, 5.0),
        (2, 1, 1.0),
        (2, 3, 8.0),
        (2, 4, 10.0),
        (3, 4, 2.0),
        (3, 5, 6.0),
        (4, 5, 3.0),
        (6, 7, 1.0), // a disconnected island
    ];
    let edges: Vec<(u32, u32)> = lanes.iter().map(|&(u, v, _)| (u, v)).collect();
    let hours = EdgeMap::from_values(lanes.iter().map(|&(_, _, w)| w).collect());

    println!("== Same generic BFS, two representations ==");
    let adj = AdjacencyList::from_edges(8, &edges);
    let csr = CsrGraph::from_edges(8, &edges);
    let da = bfs_distances(&adj, 0);
    let dc = bfs_distances(&csr, 0);
    assert_eq!(da.as_slice(), dc.as_slice());
    for (v, d) in da.iter() {
        match d {
            Some(h) => println!("  depot {v}: {h} hops from depot 0"),
            None => println!("  depot {v}: unreachable"),
        }
    }

    println!("\n== Dijkstra over the hours property map ==");
    let weight = |e: Edge| *hours.get(e);
    let sp = dijkstra(&adj, 0, weight);
    for v in 0..6u32 {
        if let Some(path) = sp.path_to(v) {
            println!(
                "  fastest to depot {v}: {:>5.1} h via {:?}",
                sp.distance.get(v),
                path
            );
        }
    }

    println!("\n== Topological order (lanes form a DAG on the mainland) ==");
    match topological_sort(&adj) {
        Ok(order) => println!("  dispatch order: {order:?}"),
        Err(_) => println!("  cyclic!"),
    }

    println!("\n== Components and a maintenance MST (undirected view) ==");
    let undirected = AdjacencyList::from_edges_undirected(8, &edges);
    let (count, comp) = connected_components(&undirected);
    println!(
        "  {count} components; depot 6 is in component {}",
        comp.get(6)
    );
    let mst = kruskal_mst(&undirected, weight);
    println!(
        "  minimum maintenance set: {} lanes, {:.1} total hours",
        mst.edges.len(),
        mst.total_weight
    );
    for e in &mst.edges {
        println!(
            "    lane {}→{} ({:.1} h)",
            e.source,
            e.target,
            *hours.get(*e)
        );
    }
}
