//! A lint session: run the STLlint reproduction over a set of programs the
//! way a CI hook would, printing diagnostics per file.
//!
//! ```text
//! cargo run --example lint_session
//! ```

use generic_hpc::checker::analyze::analyze;
use generic_hpc::checker::corpus::{corpus, fig4_program};
use generic_hpc::checker::ir::build::*;
use generic_hpc::checker::ir::{AlgorithmName as A, ContainerKind as K, Program};
use generic_hpc::checker::parse::parse;

fn lint(p: &Program) {
    println!("Checking `{}` ...", p.name);
    let diags = analyze(p);
    if diags.is_empty() {
        println!("  clean.");
    }
    for d in diags {
        println!("  {d}");
    }
    println!();
}

fn main() {
    // The textbook bug and its fix (paper Fig. 4).
    lint(&fig4_program(false));
    lint(&fig4_program(true));

    // A fresh program a developer might write: cache a begin() iterator,
    // grow the vector, then scan — classic invalidation.
    lint(&Program::new(
        "cache-then-grow",
        vec![
            container("log", K::Vector),
            begin("head", "log"),
            push_back("log"),
            push_back("log"),
            while_not_end("head", vec![deref("head"), advance("head")]),
        ],
    ));

    // Performance lint: sort then linear find.
    lint(&Program::new(
        "sorted-but-linear",
        vec![
            container("scores", K::Vector),
            call(A::Sort, "scores"),
            call_into(A::Find, "scores", "hit"),
            deref("hit"),
        ],
    ));

    // Correct replacement the suggestion asks for.
    lint(&Program::new(
        "sorted-binary",
        vec![
            container("scores", K::Vector),
            call(A::Sort, "scores"),
            call_into(A::LowerBound, "scores", "hit"),
        ],
    ));

    // Programs can also arrive as text source, the way a CI hook would
    // receive them.
    let src = r"
        # cache an iterator, grow the vector, then use it
        container log vector
        iter head = begin log
        push_back log
        while head != end {
            deref head
            advance head
        }
    ";
    match parse("text-source", src) {
        Ok(p) => lint(&p),
        Err(e) => println!("parse error: {e}"),
    }
    // And parse errors come with line numbers.
    if let Err(e) = parse("broken", "container v hashmap") {
        println!("as expected, bad source is rejected: {e}\n");
    }

    // Summary over the whole built-in corpus.
    let mut clean = 0;
    let mut flagged = 0;
    for case in corpus() {
        if analyze(&case.program).is_empty() {
            clean += 1;
        } else {
            flagged += 1;
        }
    }
    println!("corpus summary: {flagged} programs flagged, {clean} clean");
}
