//! Quickstart: a ten-minute tour of the library suite.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use generic_hpc::checker::analyze::analyze;
use generic_hpc::checker::corpus::fig4_program;
use generic_hpc::core::algebra::{check_associativity, check_identity, AddOp};
use generic_hpc::core::concept::{resolve_overload, ConceptRef};
use generic_hpc::core::order::{check_strict_weak_order, NaturalLess};
use generic_hpc::proofs::theories::order as swo;
use generic_hpc::rewrite::{BinOp, Expr, Simplifier, Type, UnOp};
use generic_hpc::sequences::concepts::{seeded_registry, sort_implementations, types};
use generic_hpc::sequences::fold::accumulate;
use generic_hpc::sequences::sort::ConceptSort;
use generic_hpc::sequences::{ArraySeq, SList};

fn main() {
    println!("== 1. Concepts are data: reflective dispatch =================");
    // The registry knows which cursor concepts each container's cursors
    // model, and resolves `sort` to the right algorithm.
    let reg = seeded_registry();
    let impls = sort_implementations();
    for ty in [types::ARRAY_CURSOR, types::LIST_CURSOR] {
        let r = resolve_overload(&reg, "sort", &impls, &[ty]).expect("resolvable");
        println!("  sort over {ty:<15} → {}", r.chosen);
    }
    // And the propagation closure of a single constraint:
    let report = reg.propagation_report(&[ConceptRef::unary("RandomAccessCursor", "I")]);
    println!(
        "  1 written constraint implies {} after propagation",
        report.propagated
    );

    println!("\n== 2. ...and concepts are traits: zero-cost dispatch =========");
    let mut array: ArraySeq<i32> = vec![5, 3, 9, 1, 7].into_iter().collect();
    array.sort_by(&NaturalLess); // statically selects introsort
    println!(
        "  ArraySeq sorted by {:<10}: {:?}",
        ArraySeq::<i32>::algorithm_name(),
        array.as_slice()
    );
    let mut list = SList::from_slice(&[5, 3, 9, 1, 7]);
    list.sort_by(&NaturalLess); // statically selects merge sort
    println!(
        "  SList    sorted by {:<10}: {:?}",
        SList::<i32>::algorithm_name(),
        list.to_vec()
    );

    println!("\n== 3. Semantic concepts are executable ======================");
    let samples: Vec<i64> = vec![-3, 0, 2, 7, 7, -11];
    println!(
        "  (i64, +) associativity : {} checks",
        check_associativity(&AddOp, &samples).expect("monoid laws hold")
    );
    println!(
        "  (i64, +) identity      : {} checks",
        check_identity::<i64>(&AddOp, &samples).expect("monoid laws hold")
    );
    println!(
        "  (i64, <) strict weak order : {} checks",
        check_strict_weak_order(&NaturalLess, &samples).expect("Fig. 6 axioms hold")
    );
    println!(
        "  accumulate over the Add monoid: {}",
        accumulate(ArraySeq::from_vec(samples).range(), &AddOp)
    );

    println!("\n== 4. ...and provable =======================================");
    let theory = swo::theory();
    let proved = theory.check().expect("Fig. 6 derivations check");
    for p in &proved[..2] {
        println!("  proved: {p}");
    }

    println!("\n== 5. Concept-based optimization (Simplicissimus) ===========");
    let e = Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1)),
        Expr::bin(
            BinOp::Add,
            Expr::var("y", Type::Int),
            Expr::un(UnOp::Neg, Expr::var("y", Type::Int)),
        ),
    );
    let (out, stats) = Simplifier::standard().simplify(&e);
    println!("  {e}  →  {out}   ({} rule applications)", stats.total());

    println!("\n== 6. Library-level static checking (STLlint) ===============");
    for d in analyze(&fig4_program(false)) {
        println!("  {d}");
    }
}
