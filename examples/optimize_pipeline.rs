//! An optimization pipeline: batch-simplify a stream of expressions with
//! the concept-based rule set, then extend the optimizer with a
//! library-specific rule and watch the coverage change — §3.2 end to end.
//!
//! ```text
//! cargo run --example optimize_pipeline
//! ```

use generic_hpc::rewrite::rules::LidiaInverse;
use generic_hpc::rewrite::{BinOp, Expr, Simplifier, Type, UnOp};
use std::collections::BTreeMap;

fn workload() -> Vec<Expr> {
    let x = || Expr::var("x", Type::Int);
    let y = || Expr::var("y", Type::Float);
    let s = || Expr::var("s", Type::Str);
    let f = || Expr::var("f", Type::BigFloat);
    vec![
        Expr::bin(BinOp::Mul, x(), Expr::int(1)),
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, x(), Expr::int(2)),
            Expr::int(3),
        ),
        Expr::bin(BinOp::Mul, y(), Expr::un(UnOp::Recip, y())),
        Expr::bin(BinOp::Concat, s(), Expr::string("")),
        Expr::bin(BinOp::Mul, x(), Expr::int(0)),
        Expr::bin(BinOp::Div, Expr::bigfloat(1.0), f()),
        Expr::un(UnOp::Not, Expr::un(UnOp::Not, Expr::var("b", Type::Bool))),
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Sub, y(), y()),
            Expr::bin(BinOp::Mul, y(), Expr::float(1.0)),
        ),
    ]
}

fn run(label: &str, s: &Simplifier) {
    println!("== {label} ==");
    let mut total_before = 0;
    let mut total_after = 0;
    let mut rules: BTreeMap<String, usize> = BTreeMap::new();
    for e in workload() {
        let (out, stats) = s.simplify(&e);
        total_before += stats.size_before;
        total_after += stats.size_after;
        for (k, v) in stats.applications {
            *rules.entry(k).or_insert(0) += v;
        }
        println!("  {e:<28} →  {out}");
    }
    println!("  total AST nodes: {total_before} → {total_after}");
    println!("  rule applications: {rules:?}\n");
}

fn main() {
    // Standard concept-based rules only.
    run("standard concept rules", &Simplifier::standard());

    // Library extension: the LiDIA bigfloat inverse specialization.
    let mut extended = Simplifier::standard();
    extended.add_rule(Box::new(LidiaInverse));
    run("standard + LiDIA library rule", &extended);

    println!("note how 1.0/f only specializes once the library registers");
    println!("its rule — and nothing else in the pipeline had to change.");
}
