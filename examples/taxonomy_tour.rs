//! A tour of the algorithm concept taxonomies: refinement queries,
//! attribute searches, DOT export, and the seven-dimension distributed
//! catalog.
//!
//! ```text
//! cargo run --example taxonomy_tour > /tmp/taxonomies.txt
//! ```

use generic_hpc::taxonomy::{
    catalog, graph_taxonomy, select_best, sequence_taxonomy, Fault, Problem, Requirement, Timing,
    Topology,
};

fn main() {
    let seq = sequence_taxonomy();
    let gra = graph_taxonomy();

    println!("== Sequence-algorithm taxonomy ({} concepts) ==", seq.len());
    println!("  concrete algorithms (leaves): {:?}", seq.leaves());
    println!("  `find` refines: {:?}", seq.ancestors("find"));
    println!(
        "  algorithms requiring sorted input: {:?}",
        seq.find_by_attr("precondition", |v| v == "sorted")
            .iter()
            .map(|n| n.name.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "  O(log n)-comparison algorithms: {:?}",
        seq.find_by_attr("comparisons", |v| v == "O(log n)")
            .iter()
            .map(|n| n.name.as_str())
            .collect::<Vec<_>>()
    );

    println!("\n== Graph-algorithm taxonomy ({} concepts) ==", gra.len());
    for name in ["dijkstra", "bellman_ford"] {
        let n = gra.node(name).unwrap();
        println!(
            "  {name:<14} {}  [{}]",
            n.attributes
                .get("complexity")
                .map(String::as_str)
                .unwrap_or("-"),
            n.attributes
                .get("requires")
                .map(String::as_str)
                .unwrap_or("-"),
        );
    }
    println!(
        "  both refine `shortest-paths`: {} / {}",
        gra.refines("dijkstra", "shortest-paths"),
        gra.refines("bellman_ford", "shortest-paths")
    );

    println!("\n== DOT export (paste into graphviz) ==");
    let dot = gra.to_dot();
    println!(
        "  graph taxonomy DOT: {} bytes, {} edges",
        dot.len(),
        dot.matches(" -> ").count()
    );
    println!("{}", &dot[..dot.find('\n').unwrap_or(40) + 1]);

    println!("== Distributed catalog on the seven dimensions ==");
    for alg in catalog() {
        println!(
            "  {:<20} problem={:<16?} topology={:<9?} faults={:<5?} strategy={:<18?} timing={:<12?} msgs={}",
            alg.name, alg.problem, alg.topology, alg.fault_tolerance, alg.strategy, alg.timing,
            alg.messages
        );
    }

    println!("\n== Selection queries ==");
    let queries = [
        (
            "async bi-ring election",
            Requirement::basic(
                Problem::LeaderElection,
                Topology::BiRing,
                Timing::Asynchronous,
            ),
        ),
        (
            "sync grid spanning tree",
            Requirement::basic(Problem::SpanningTree, Topology::Grid, Timing::Synchronous),
        ),
        (
            "async broadcast",
            Requirement::basic(
                Problem::Broadcast,
                Topology::Arbitrary,
                Timing::Asynchronous,
            ),
        ),
    ];
    let cat = catalog();
    for (label, req) in queries {
        println!(
            "  {label:<26} → {}",
            select_best(&cat, &req)
                .map(|a| a.name)
                .unwrap_or("NO KNOWN ALGORITHM")
        );
    }
    let mut crashy = Requirement::basic(
        Problem::FailureDetection,
        Topology::Complete,
        Timing::Synchronous,
    );
    crashy.fault_needed = Fault::Crash;
    println!(
        "  crash-tolerant detection   → {}",
        select_best(&cat, &crashy)
            .map(|a| a.name)
            .unwrap_or("NO KNOWN ALGORITHM")
    );
}
