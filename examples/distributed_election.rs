//! Distributed leader election end to end: consult the taxonomy for the
//! right algorithm, then run it in the simulator and compare the measured
//! costs with the taxonomy's declared complexities.
//!
//! ```text
//! cargo run --example distributed_election
//! ```

use generic_hpc::distsim::algorithms::{
    adversarial_ring_uids, consensus, floodmax_nodes, hs_nodes, lcr_nodes,
};
use generic_hpc::distsim::engine::SyncRunner;
use generic_hpc::distsim::topology::Topology;
use generic_hpc::taxonomy::{
    catalog, select_best, Problem, Requirement, Timing, Topology as TaxTopology,
};

fn main() {
    let n = 64usize;
    let uids = adversarial_ring_uids(n);
    let cat = catalog();

    println!("== Deployment 1: bidirectional ring of {n}, asynchronous ==");
    let req = Requirement::basic(
        Problem::LeaderElection,
        TaxTopology::BiRing,
        Timing::Asynchronous,
    );
    let choice = select_best(&cat, &req).expect("taxonomy has an answer");
    println!(
        "  taxonomy picks {} (messages {}, local {})",
        choice.name, choice.messages, choice.local_computation
    );
    let mut runner = SyncRunner::new(Topology::ring_bidirectional(n), hs_nodes(&uids));
    let stats = runner.run(60 * n as u64 + 200);
    println!(
        "  simulated: leader = {:?}, {} messages, {} rounds, {} local steps",
        consensus(&stats),
        stats.messages,
        stats.time,
        stats.local_steps
    );

    println!("\n== Deployment 2: unidirectional ring (only LCR applies) ==");
    let req = Requirement::basic(
        Problem::LeaderElection,
        TaxTopology::UniRing,
        Timing::Asynchronous,
    );
    let choice = select_best(&cat, &req).expect("taxonomy has an answer");
    println!(
        "  taxonomy picks {} (messages {})",
        choice.name, choice.messages
    );
    let mut runner = SyncRunner::new(Topology::ring_unidirectional(n), lcr_nodes(&uids));
    let stats = runner.run(20 * n as u64 + 100);
    println!(
        "  simulated: leader = {:?}, {} messages ({}x the HS count: the O(n²) price)",
        consensus(&stats),
        stats.messages,
        stats.messages / 632
    );

    println!("\n== Deployment 3: synchronous grid (FloodMax) ==");
    let topo = Topology::grid(8, 8);
    let diam = topo.diameter().unwrap() as u64;
    let req = Requirement::basic(
        Problem::LeaderElection,
        TaxTopology::Grid,
        Timing::Synchronous,
    );
    let choice = select_best(&cat, &req).expect("taxonomy has an answer");
    println!(
        "  taxonomy picks {} (messages {})",
        choice.name, choice.messages
    );
    let grid_uids: Vec<u64> = (0..64u64).map(|i| (i * 31 + 7) % 997).collect();
    let mut runner = SyncRunner::new(topo.clone(), floodmax_nodes(&grid_uids, diam));
    let stats = runner.run(diam + 5);
    println!(
        "  simulated: leader = {:?} in {} rounds, {} messages (= diam·E = {})",
        consensus(&stats),
        stats.time,
        stats.messages,
        diam * topo.directed_edge_count() as u64
    );

    println!("\n== Deployment 4: asynchronous grid — the gap ==");
    let req = Requirement::basic(
        Problem::LeaderElection,
        TaxTopology::Grid,
        Timing::Asynchronous,
    );
    match select_best(&cat, &req) {
        Some(a) => println!("  taxonomy picks {}", a.name),
        None => println!(
            "  taxonomy reports NO known algorithm — the design-gap signal the paper describes"
        ),
    }
}
