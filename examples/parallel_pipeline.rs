//! A data-parallel analytics pipeline over a block-distributed vector:
//! normalize → score → rank, with Monoid-constrained reductions.
//!
//! ```text
//! cargo run --release --example parallel_pipeline
//! ```

use generic_hpc::core::algebra::{AddOp, MaxOp, MinOp};
use generic_hpc::core::order::ByKey;
use generic_hpc::parallel::par::{par_map, par_sort};
use generic_hpc::parallel::BlockVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let n = 2_000_000usize;
    println!("pipeline over {n} records with {threads} threads\n");

    // Simulated sensor readings.
    let mut rng = StdRng::seed_from_u64(2024);
    let readings: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..150.0)).collect();

    // Stage 1: distribute and compute global statistics via Monoid reduce.
    let t0 = Instant::now();
    let dist = BlockVec::from_vec(readings.clone(), threads);
    let sum = dist.reduce(&AddOp);
    let maxv = dist.reduce(&MaxOp);
    let minv = dist.reduce(&MinOp);
    let mean = sum / n as f64;
    println!(
        "stage 1  stats      : mean {mean:8.3}  min {minv:8.3}  max {maxv:8.3}   ({:.0} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Stage 2: block-parallel normalization.
    let t0 = Instant::now();
    let span = (maxv - minv).max(f64::EPSILON);
    let normalized = dist.map(|x| (x - minv) / span);
    println!(
        "stage 2  normalize  : block-parallel map                     ({:.0} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Stage 3: running exposure (prefix sums) across the distribution.
    let t0 = Instant::now();
    let exposure = normalized.scan(&AddOp);
    let total = exposure.block(exposure.block_count() - 1).last().copied();
    println!(
        "stage 3  prefix scan: total exposure {:10.1}              ({:.0} ms)",
        total.unwrap_or(0.0),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Stage 4: score and rank the top anomalies with a parallel sort under
    // an explicit strict weak order (distance from the mean).
    let t0 = Instant::now();
    let scored: Vec<(usize, f64)> = par_map(&readings, threads, |x| (*x - mean).abs())
        .into_iter()
        .enumerate()
        .collect();
    let mut ranked = scored;
    par_sort(
        &mut ranked,
        threads,
        &ByKey(|p: &(usize, f64)| std::cmp::Reverse((p.1 * 1e6) as i64)),
    );
    println!(
        "stage 4  rank       : parallel sort                          ({:.0} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("\ntop anomalies (index, |deviation|):");
    for (i, d) in ranked.iter().take(5) {
        println!("  #{i:<8} {d:8.3}");
    }

    // Verify against the sequential pipeline.
    let seq_sum: f64 = readings.iter().sum();
    assert!((seq_sum - sum).abs() < 1e-6 * seq_sum.abs().max(1.0));
    println!("\nsequential cross-check passed.");
}
