//! The generic taxonomy structure: a refinement DAG of algorithm concepts
//! with attributes, plus the sequential-algorithm taxonomies.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// A node in a taxonomy: an algorithm concept.
#[derive(Clone, Debug)]
pub struct TaxNode {
    /// Concept name.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Indices of the concepts this one refines.
    pub refines: Vec<usize>,
    /// Free-form attributes (complexity guarantees, requirements, …).
    pub attributes: BTreeMap<String, String>,
}

/// A taxonomy: a named refinement DAG.
#[derive(Clone, Debug, Default)]
pub struct Taxonomy {
    name: String,
    nodes: Vec<TaxNode>,
    by_name: HashMap<String, usize>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new(name: impl Into<String>) -> Self {
        Taxonomy {
            name: name.into(),
            ..Taxonomy::default()
        }
    }

    /// Taxonomy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a concept refining the named parents (which must already exist —
    /// refinement is a DAG by construction).
    pub fn add(&mut self, name: &str, description: &str, refines: &[&str]) -> Result<(), String> {
        if self.by_name.contains_key(name) {
            return Err(format!("duplicate taxonomy node `{name}`"));
        }
        let parents: Result<Vec<usize>, String> = refines
            .iter()
            .map(|p| {
                self.by_name
                    .get(*p)
                    .copied()
                    .ok_or_else(|| format!("unknown parent `{p}` of `{name}`"))
            })
            .collect();
        let idx = self.nodes.len();
        self.nodes.push(TaxNode {
            name: name.to_string(),
            description: description.to_string(),
            refines: parents?,
            attributes: BTreeMap::new(),
        });
        self.by_name.insert(name.to_string(), idx);
        Ok(())
    }

    /// Attach an attribute to a concept.
    pub fn attr(&mut self, name: &str, key: &str, value: &str) -> Result<(), String> {
        let idx = self
            .by_name
            .get(name)
            .ok_or_else(|| format!("unknown taxonomy node `{name}`"))?;
        self.nodes[*idx]
            .attributes
            .insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// Node lookup.
    pub fn node(&self, name: &str) -> Option<&TaxNode> {
        self.by_name.get(name).map(|i| &self.nodes[*i])
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `sub` refines `sup` (reflexively, transitively).
    pub fn refines(&self, sub: &str, sup: &str) -> bool {
        let (Some(&a), Some(&b)) = (self.by_name.get(sub), self.by_name.get(sup)) else {
            return false;
        };
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        while let Some(i) = stack.pop() {
            for &p in &self.nodes[i].refines {
                if p == b {
                    return true;
                }
                stack.push(p);
            }
        }
        false
    }

    /// All ancestors (refined concepts) of a node, nearest first.
    pub fn ancestors(&self, name: &str) -> Vec<&str> {
        let Some(&start) = self.by_name.get(name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[start].refines.clone();
        while let Some(i) = stack.pop() {
            if !out.contains(&self.nodes[i].name.as_str()) {
                out.push(self.nodes[i].name.as_str());
                stack.extend(self.nodes[i].refines.iter().copied());
            }
        }
        out
    }

    /// Leaves: concepts nothing refines (the concrete algorithms).
    pub fn leaves(&self) -> Vec<&str> {
        let mut has_child = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &p in &n.refines {
                has_child[p] = true;
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !has_child[*i])
            .map(|(_, n)| n.name.as_str())
            .collect()
    }

    /// All concepts matching a predicate on their attributes.
    pub fn find_by_attr(&self, key: &str, pred: impl Fn(&str) -> bool) -> Vec<&TaxNode> {
        self.nodes
            .iter()
            .filter(|n| n.attributes.get(key).map(|v| pred(v)).unwrap_or(false))
            .collect()
    }

    /// GraphViz DOT rendering of the refinement DAG.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=BT;");
        for n in &self.nodes {
            let label = if n.attributes.is_empty() {
                n.name.clone()
            } else {
                let attrs: Vec<String> = n
                    .attributes
                    .iter()
                    .map(|(k, v)| format!("{k}: {v}"))
                    .collect();
                format!("{}\\n{}", n.name, attrs.join("\\n"))
            };
            let _ = writeln!(s, "  \"{}\" [label=\"{}\"];", n.name, label);
        }
        for n in &self.nodes {
            for &p in &n.refines {
                let _ = writeln!(s, "  \"{}\" -> \"{}\";", n.name, self.nodes[p].name);
            }
        }
        s.push_str("}\n");
        s
    }
}

/// The sequence-algorithm concept taxonomy (the STL-domain taxonomy of
/// Ref. 8), with complexity guarantees as attributes.
pub fn sequence_taxonomy() -> Taxonomy {
    let mut t = Taxonomy::new("sequence-algorithms");
    let add = |t: &mut Taxonomy, n: &str, d: &str, r: &[&str]| {
        t.add(n, d, r).expect("well-formed taxonomy");
    };
    add(
        &mut t,
        "sequence-algorithm",
        "any algorithm over cursor ranges",
        &[],
    );
    add(
        &mut t,
        "non-mutating",
        "reads only",
        &["sequence-algorithm"],
    );
    add(
        &mut t,
        "mutating",
        "writes through cursors or slices",
        &["sequence-algorithm"],
    );
    add(&mut t, "search", "locates elements", &["non-mutating"]);
    add(
        &mut t,
        "reduction",
        "folds a range to a value",
        &["non-mutating"],
    );
    add(
        &mut t,
        "linear-search",
        "single pass, Input Cursor",
        &["search"],
    );
    add(
        &mut t,
        "binary-search",
        "sorted ranges, Forward Cursor, O(log n) comparisons",
        &["search"],
    );
    add(&mut t, "find", "first match", &["linear-search"]);
    add(&mut t, "count", "matches in a range", &["linear-search"]);
    add(
        &mut t,
        "lower_bound",
        "first position not less than value",
        &["binary-search"],
    );
    add(
        &mut t,
        "binary_search",
        "membership on sorted ranges",
        &["binary-search"],
    );
    add(&mut t, "accumulate", "Monoid fold", &["reduction"]);
    add(
        &mut t,
        "max_element",
        "extremum; Forward Cursor (multipass)",
        &["reduction"],
    );
    add(
        &mut t,
        "sort",
        "permute into order (Strict Weak Order)",
        &["mutating"],
    );
    add(
        &mut t,
        "comparison-sort",
        "Ω(n log n) comparisons",
        &["sort"],
    );
    add(
        &mut t,
        "introsort",
        "random-access; in-place; unstable",
        &["comparison-sort"],
    );
    add(
        &mut t,
        "merge_sort",
        "forward-access; stable",
        &["comparison-sort"],
    );
    add(
        &mut t,
        "insertion_sort",
        "tiny/nearly-sorted inputs",
        &["comparison-sort"],
    );
    add(&mut t, "merge", "combine sorted ranges", &["mutating"]);
    add(&mut t, "partition", "split by predicate", &["mutating"]);
    add(
        &mut t,
        "selection",
        "order statistics without full sorting",
        &["mutating"],
    );
    add(
        &mut t,
        "nth_element",
        "expected O(n) quickselect",
        &["selection"],
    );
    add(
        &mut t,
        "partial_sort",
        "smallest k sorted, O(n log k)",
        &["selection"],
    );
    add(
        &mut t,
        "min_max_element",
        "both extrema, ~3n/2 comparisons",
        &["reduction"],
    );
    add(
        &mut t,
        "set-operation",
        "algebra of sorted ranges",
        &["non-mutating"],
    );
    add(
        &mut t,
        "set_union",
        "multiset union of sorted ranges",
        &["set-operation"],
    );
    add(
        &mut t,
        "set_intersection",
        "common elements of sorted ranges",
        &["set-operation"],
    );
    add(
        &mut t,
        "set_difference",
        "sorted-range subtraction",
        &["set-operation"],
    );
    add(
        &mut t,
        "includes",
        "multiset subset test",
        &["set-operation"],
    );
    add(
        &mut t,
        "subsequence_search",
        "first occurrence of a pattern range",
        &["search"],
    );

    for (name, c) in gp_sequences::concepts::algorithm_guarantees() {
        // Attach guarantees where the node exists in this taxonomy.
        let _ = t.attr(name, "comparisons", &c.to_string());
    }
    t.attr("find", "cursor", "InputCursor").unwrap();
    t.attr("lower_bound", "cursor", "ForwardCursor").unwrap();
    t.attr("lower_bound", "precondition", "sorted").unwrap();
    t.attr("binary_search", "precondition", "sorted").unwrap();
    t.attr("max_element", "cursor", "ForwardCursor (multipass)")
        .unwrap();
    t.attr("introsort", "cursor", "RandomAccessCursor").unwrap();
    t.attr("merge_sort", "cursor", "ForwardCursor").unwrap();
    t.attr("nth_element", "cursor", "RandomAccessCursor")
        .unwrap();
    t.attr("set_union", "precondition", "sorted").unwrap();
    t.attr("set_intersection", "precondition", "sorted")
        .unwrap();
    t.attr("set_difference", "precondition", "sorted").unwrap();
    t.attr("includes", "precondition", "sorted").unwrap();
    t
}

/// The graph-algorithm concept taxonomy (the BGL-domain taxonomy of
/// Ref. 8).
pub fn graph_taxonomy() -> Taxonomy {
    let mut t = Taxonomy::new("graph-algorithms");
    let add = |t: &mut Taxonomy, n: &str, d: &str, r: &[&str]| {
        t.add(n, d, r).expect("well-formed taxonomy");
    };
    add(
        &mut t,
        "graph-algorithm",
        "any algorithm over graph concepts",
        &[],
    );
    add(
        &mut t,
        "traversal",
        "visits vertices/edges systematically",
        &["graph-algorithm"],
    );
    add(
        &mut t,
        "shortest-paths",
        "single-source distances",
        &["graph-algorithm"],
    );
    add(
        &mut t,
        "spanning-tree",
        "minimum spanning forests",
        &["graph-algorithm"],
    );
    add(
        &mut t,
        "ordering",
        "vertex orders from structure",
        &["graph-algorithm"],
    );
    add(
        &mut t,
        "bfs",
        "breadth-first; hop distances",
        &["traversal"],
    );
    add(
        &mut t,
        "dfs",
        "depth-first; discover/finish times",
        &["traversal"],
    );
    add(
        &mut t,
        "dijkstra",
        "non-negative weights; heap",
        &["shortest-paths"],
    );
    add(
        &mut t,
        "bellman_ford",
        "arbitrary weights; detects negative cycles",
        &["shortest-paths"],
    );
    add(
        &mut t,
        "kruskal",
        "edge list + union-find",
        &["spanning-tree"],
    );
    add(
        &mut t,
        "prim",
        "incidence + indexed heap",
        &["spanning-tree"],
    );
    add(
        &mut t,
        "topological_sort",
        "DAGs only (checked)",
        &["ordering"],
    );
    add(
        &mut t,
        "connected_components",
        "undirected reachability classes",
        &["ordering"],
    );

    let attrs: &[(&str, &str, &str)] = &[
        ("bfs", "complexity", "O(V + E)"),
        ("dfs", "complexity", "O(V + E)"),
        ("dijkstra", "complexity", "O((V + E) log V)"),
        ("dijkstra", "requires", "weights >= 0 (checked)"),
        ("bellman_ford", "complexity", "O(V E)"),
        ("kruskal", "complexity", "O(E log E)"),
        ("prim", "complexity", "O(E log V)"),
        ("topological_sort", "complexity", "O(V + E)"),
        ("connected_components", "complexity", "O(V + E)"),
        ("bfs", "requires", "IncidenceGraph + VertexListGraph"),
        ("bellman_ford", "requires", "EdgeListGraph"),
    ];
    for (n, k, v) in attrs {
        t.attr(n, k, v).unwrap();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_is_reflexive_and_transitive() {
        let t = sequence_taxonomy();
        assert!(t.refines("find", "find"));
        assert!(t.refines("find", "linear-search"));
        assert!(t.refines("find", "search"));
        assert!(t.refines("find", "sequence-algorithm"));
        assert!(!t.refines("find", "binary-search"));
        assert!(!t.refines("search", "find"));
    }

    #[test]
    fn duplicate_and_unknown_parents_rejected() {
        let mut t = Taxonomy::new("t");
        t.add("a", "", &[]).unwrap();
        assert!(t.add("a", "", &[]).is_err());
        assert!(t.add("b", "", &["ghost"]).is_err());
    }

    #[test]
    fn sequence_taxonomy_distinguishes_search_costs() {
        // The paper's point: asymptotic attributes let the taxonomy make
        // "useful distinctions" between algorithms for the same problem.
        let t = sequence_taxonomy();
        assert_eq!(t.node("find").unwrap().attributes["comparisons"], "O(n)");
        assert_eq!(
            t.node("lower_bound").unwrap().attributes["comparisons"],
            "O(log n)"
        );
        assert_eq!(
            t.node("lower_bound").unwrap().attributes["precondition"],
            "sorted"
        );
    }

    #[test]
    fn leaves_are_concrete_algorithms() {
        let t = graph_taxonomy();
        let leaves = t.leaves();
        for alg in ["bfs", "dijkstra", "kruskal", "topological_sort"] {
            assert!(leaves.contains(&alg), "{alg} missing from {leaves:?}");
        }
        assert!(!leaves.contains(&"traversal"));
    }

    #[test]
    fn ancestors_walk_the_dag() {
        let t = graph_taxonomy();
        let anc = t.ancestors("dijkstra");
        assert!(anc.contains(&"shortest-paths"));
        assert!(anc.contains(&"graph-algorithm"));
        assert_eq!(t.ancestors("graph-algorithm"), Vec::<&str>::new());
    }

    #[test]
    fn find_by_attr_queries() {
        let t = sequence_taxonomy();
        let sorted_required = t.find_by_attr("precondition", |v| v == "sorted");
        let names: Vec<&str> = sorted_required.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"lower_bound"));
        assert!(names.contains(&"binary_search"));
        assert!(!names.contains(&"find"));
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let t = graph_taxonomy();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"dijkstra\" -> \"shortest-paths\""));
        assert!(dot.contains("O((V + E) log V)"));
        assert_eq!(dot.matches(" -> ").count(), t.len() - 1); // tree here
    }
}
