//! The seven orthogonal classification dimensions of the distributed
//! algorithm concept taxonomy (paper §4):
//!
//! 1. **Problem** solved.
//! 2. **Topology** of the underlying network (with refinement: "further
//!    refining this concept leads to some of the well known topologies
//!    like ring, completely connected graph, etc.").
//! 3. **Tolerance to component failures** (Byzantine / non-Byzantine …).
//! 4. **Method of information sharing** (message passing concentrated on).
//! 5. **Strategy** (centralized control, distributed control, randomized,
//!    compositional, heart beat, probe echo, …).
//! 6. **Timing** required of the network (synchronous, asynchronous,
//!    partially synchronous).
//! 7. **Process management** (static vs. dynamic membership).

/// Dimension 1: the problem an algorithm solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Elect a unique leader.
    LeaderElection,
    /// Deliver a message to all nodes (with termination detection).
    Broadcast,
    /// Build a spanning tree / hop distances.
    SpanningTree,
    /// Agree on a value.
    Consensus,
    /// Mutual exclusion.
    MutualExclusion,
    /// Detect crashed processes.
    FailureDetection,
}

/// Dimension 2: network topology classes, with refinement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Any connected network.
    Arbitrary,
    /// Ring (direction unspecified).
    Ring,
    /// Unidirectional ring.
    UniRing,
    /// Bidirectional ring.
    BiRing,
    /// Completely connected graph.
    Complete,
    /// Tree.
    Tree,
    /// Star (refines tree).
    Star,
    /// Grid/mesh.
    Grid,
}

impl Topology {
    /// True if `self` refines (is a special case of) `other`.
    pub fn refines(self, other: Topology) -> bool {
        use Topology::*;
        if self == other || other == Arbitrary {
            return true;
        }
        matches!(
            (self, other),
            (UniRing, Ring) | (BiRing, Ring) | (Star, Tree)
        )
    }
}

/// Dimension 3: fault classes an algorithm tolerates. **Partially**
/// ordered: crash-stop (a process dies) and omission (the network loses
/// messages) are *incomparable* failure modes — a retransmitting channel
/// masks omissions yet stalls the moment a peer crashes, and a
/// crash-tolerant flood assumes reliable links between live nodes. Only
/// Byzantine subsumes both, and everything covers a fault-free deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// No failures tolerated.
    None,
    /// Crash-stop failures.
    Crash,
    /// Message omission failures.
    Omission,
    /// Byzantine (arbitrary) failures.
    Byzantine,
}

impl Fault {
    /// True if tolerating `self` covers a deployment requiring `required`
    /// (reflexive; Byzantine covers everything; everything covers `None`;
    /// `Crash` and `Omission` do **not** cover each other).
    pub fn covers(self, required: Fault) -> bool {
        self == required || required == Fault::None || self == Fault::Byzantine
    }
}

/// Dimension 4: information-sharing mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// Message passing (the paper's focus).
    MessagePassing,
    /// Shared memory.
    SharedMemory,
}

/// Dimension 5: algorithmic strategy (classification labels from the
/// paper's list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Centralized control.
    CentralizedControl,
    /// Distributed control.
    DistributedControl,
    /// Randomized.
    Randomized,
    /// Compositional.
    Compositional,
    /// Heart beat.
    HeartBeat,
    /// Probe echo.
    ProbeEcho,
    /// Flooding.
    Flooding,
}

/// Dimension 6: timing model, ordered by strength of the assumption.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Timing {
    /// No timing assumptions.
    Asynchronous,
    /// Eventually bounded delays.
    PartiallySynchronous,
    /// Lockstep rounds.
    Synchronous,
}

impl Timing {
    /// True if a network providing `self` satisfies an algorithm requiring
    /// `required` (a synchronous network runs asynchronous algorithms, not
    /// vice versa).
    pub fn satisfies(self, required: Timing) -> bool {
        self >= required
    }
}

/// Dimension 7: process management.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessMgmt {
    /// Fixed membership.
    Static,
    /// Nodes may join/leave.
    Dynamic,
}

impl ProcessMgmt {
    /// Supporting dynamic membership covers static deployments.
    pub fn covers(self, required: ProcessMgmt) -> bool {
        self == required || (self == ProcessMgmt::Dynamic && required == ProcessMgmt::Static)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_refinement() {
        assert!(Topology::UniRing.refines(Topology::Ring));
        assert!(Topology::UniRing.refines(Topology::Arbitrary));
        assert!(Topology::Star.refines(Topology::Tree));
        assert!(Topology::Complete.refines(Topology::Arbitrary));
        assert!(!Topology::Ring.refines(Topology::UniRing));
        assert!(!Topology::Grid.refines(Topology::Tree));
        assert!(Topology::Ring.refines(Topology::Ring));
    }

    #[test]
    fn fault_coverage_is_a_partial_order() {
        assert!(Fault::Byzantine.covers(Fault::Crash));
        assert!(Fault::Byzantine.covers(Fault::Omission));
        assert!(Fault::Crash.covers(Fault::None));
        assert!(!Fault::None.covers(Fault::Crash));
        assert!(Fault::Omission.covers(Fault::Omission));
        // Crash and omission are incomparable: retransmission does not
        // survive dead peers, and crash tolerance assumes reliable links.
        assert!(!Fault::Omission.covers(Fault::Crash));
        assert!(!Fault::Crash.covers(Fault::Omission));
    }

    #[test]
    fn timing_satisfaction_goes_one_way() {
        assert!(Timing::Synchronous.satisfies(Timing::Asynchronous));
        assert!(Timing::Synchronous.satisfies(Timing::Synchronous));
        assert!(!Timing::Asynchronous.satisfies(Timing::Synchronous));
        assert!(Timing::PartiallySynchronous.satisfies(Timing::Asynchronous));
        assert!(!Timing::PartiallySynchronous.satisfies(Timing::Synchronous));
    }

    #[test]
    fn process_management_coverage() {
        assert!(ProcessMgmt::Dynamic.covers(ProcessMgmt::Static));
        assert!(!ProcessMgmt::Static.covers(ProcessMgmt::Dynamic));
        assert!(ProcessMgmt::Static.covers(ProcessMgmt::Static));
    }
}
