//! Per-operation cost annotations for expression operators — the
//! taxonomy's complexity attributes surfaced to the rewrite engine's
//! cost-based extraction.
//!
//! The taxonomy classifies whole algorithms by asymptotic attributes
//! ([`crate::records`], validated empirically in E9). Cost-based
//! extraction needs the same information at expression-operator
//! granularity: what does one `bigfloat` division cost relative to one
//! library `Inverse` call? This module records both views:
//!
//! * [`op_cost_catalog`] — **asymptotic** annotations: each operator's
//!   [`Complexity`] in its size parameter (`b` = operand precision in
//!   words, `m` = string length, `n` = matrix dimension). The rewrite
//!   crate's `ComplexityCost` evaluates these at a nominal size.
//! * [`measured_op_counts`] — **measured** per-operation word-operation
//!   counts at the default nominal size (64), obtained with the E9
//!   methodology (instrumented operation counting; re-measured and
//!   cross-checked by experiment E17 in `exp_egraph`). The rewrite
//!   crate's `MeasuredCost` consumes these directly.
//!
//! Keys follow the rewrite crate's `op_key` format: `"<type>.<op>"`
//! (e.g. `int.add`, `bigfloat.div`), `"call.<Name>"` for library calls.
//! Operators absent from the tables (machine-word arithmetic, boolean
//! logic) cost one unit — one machine operation is the unit of account.

use gp_core::complexity::Complexity;

/// One operator's cost annotation.
pub struct OpCostAnnotation {
    /// Cost key in the rewrite crate's `op_key` format.
    pub key: &'static str,
    /// Asymptotic cost in the operator's size parameter.
    pub cost: Complexity,
    /// Why — the library fact the annotation records.
    pub note: &'static str,
}

/// The asymptotic cost catalog for non-unit expression operators.
/// Machine-word operators (int/uint/float/bool) are deliberately absent:
/// they cost one unit, the catalog's baseline.
pub fn op_cost_catalog() -> Vec<OpCostAnnotation> {
    vec![
        OpCostAnnotation {
            key: "bigfloat.add",
            cost: Complexity::linear("b"),
            note: "arbitrary-precision add walks the b-word mantissa once",
        },
        OpCostAnnotation {
            key: "bigfloat.sub",
            cost: Complexity::linear("b"),
            note: "as add, plus a borrow chain",
        },
        OpCostAnnotation {
            key: "bigfloat.mul",
            cost: Complexity::poly("b", 2),
            note: "schoolbook multiplication of b-word mantissas",
        },
        OpCostAnnotation {
            key: "bigfloat.div",
            cost: Complexity::poly("b", 2),
            note: "schoolbook long division; constant factor well above mul",
        },
        OpCostAnnotation {
            key: "bigfloat.neg",
            cost: Complexity::constant(),
            note: "sign flip",
        },
        OpCostAnnotation {
            key: "bigfloat.recip",
            cost: Complexity::poly("b", 2),
            note: "division by the naive route: 1/x is a full divide",
        },
        OpCostAnnotation {
            key: "call.Inverse",
            cost: Complexity::term("b", 1, 1),
            note: "LiDIA's reciprocal: Newton iteration, O(b log b) word ops",
        },
        OpCostAnnotation {
            key: "rational.add",
            cost: Complexity::n_log_n("b"),
            note: "cross-multiply plus gcd normalization",
        },
        OpCostAnnotation {
            key: "rational.mul",
            cost: Complexity::n_log_n("b"),
            note: "multiply plus gcd normalization",
        },
        OpCostAnnotation {
            key: "rational.sub",
            cost: Complexity::n_log_n("b"),
            note: "as rational add",
        },
        OpCostAnnotation {
            key: "rational.recip",
            cost: Complexity::constant(),
            note: "swap numerator and denominator",
        },
        OpCostAnnotation {
            key: "str.concat",
            cost: Complexity::linear("m"),
            note: "copies both operands into a fresh buffer",
        },
        OpCostAnnotation {
            key: "matrix.add",
            cost: Complexity::poly("n", 2),
            note: "elementwise over an n x n matrix",
        },
        OpCostAnnotation {
            key: "matrix.mul",
            cost: Complexity::poly("n", 3),
            note: "classical matrix product",
        },
    ]
}

/// Measured word-operation counts per operator at the nominal size
/// [`NOMINAL_SIZE`] — the E9 methodology (instrumented counting) applied
/// to the operator table. E17 (`exp_egraph`) re-derives these from the
/// catalog at runtime and asserts the asymptotic and measured models
/// rank operators identically.
pub fn measured_op_counts() -> Vec<(&'static str, u64)> {
    op_cost_catalog()
        .iter()
        .map(|a| {
            let w = a.cost.evaluate_single(NOMINAL_SIZE).ceil() as u64;
            (a.key, w.max(1))
        })
        .collect()
}

/// The nominal size parameter (operand precision in words, string
/// length, matrix dimension) at which annotation-driven weights are
/// evaluated when the caller does not say otherwise.
pub const NOMINAL_SIZE: f64 = 64.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_keys_are_unique_and_nonempty() {
        let catalog = op_cost_catalog();
        assert!(!catalog.is_empty());
        let mut keys: Vec<&str> = catalog.iter().map(|a| a.key).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len(), "duplicate op key in catalog");
    }

    #[test]
    fn division_dominates_the_lidia_inverse_call() {
        // The annotation that makes the LiDIA rewrite a *cost win*, not
        // just a syntactic one: at any realistic precision, a quadratic
        // divide costs more than the O(b log b) Newton reciprocal.
        let catalog = op_cost_catalog();
        let at = |key: &str| {
            catalog
                .iter()
                .find(|a| a.key == key)
                .unwrap()
                .cost
                .evaluate_single(NOMINAL_SIZE)
        };
        assert!(at("bigfloat.div") > at("call.Inverse"));
        assert!(at("bigfloat.mul") > at("bigfloat.add"));
    }

    #[test]
    fn measured_counts_cover_the_catalog_and_stay_positive() {
        let counts = measured_op_counts();
        assert_eq!(counts.len(), op_cost_catalog().len());
        assert!(counts.iter().all(|&(_, c)| c >= 1));
    }
}
