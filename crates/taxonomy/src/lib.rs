//! # gp-taxonomy — algorithm concept taxonomies
//!
//! Reproduction of the paper's taxonomy program (§1, §4): "A major use of
//! such taxonomies is to provide a well-developed standard to refer to
//! while designing and implementing a generic algorithm library", and for
//! distributed algorithms they "aid in our understanding of algorithms,
//! help in the design of new ones …, and help a system designer to pick
//! the correct algorithm for a particular application."
//!
//! * [`taxonomy`] — the generic refinement-DAG structure with attributes
//!   and DOT export, plus the **sequential** taxonomies: sequence
//!   algorithms (STL-style) and graph algorithms (BGL-style), each carrying
//!   complexity guarantees as attributes (validated empirically in E9).
//! * [`dimensions`] — the paper's **seven orthogonal dimensions** for
//!   distributed algorithms: problem, topology, fault tolerance,
//!   information sharing, strategy, timing, process management — each with
//!   its own refinement structure.
//! * [`records`] — the distributed-algorithm catalog (LCR, HS, FloodMax,
//!   echo, synchronous BFS; all implemented in `gp-distsim`) classified on
//!   all seven dimensions with message/time/**local-computation**
//!   complexities, and the selection queries that "pick the correct
//!   algorithm".
//! * [`costs`] — the taxonomy's complexity attributes at expression-
//!   operator granularity: asymptotic annotations plus E9-style measured
//!   operation counts, feeding the rewrite engine's cost-based
//!   extraction (the `optimize` service kind).

pub mod costs;
pub mod dimensions;
pub mod records;
pub mod taxonomy;

pub use costs::{measured_op_counts, op_cost_catalog, OpCostAnnotation};
pub use dimensions::{Fault, Problem, ProcessMgmt, Sharing, Strategy, Timing, Topology};
pub use records::{catalog, select_best, DistAlgorithm, Requirement};
pub use taxonomy::{graph_taxonomy, sequence_taxonomy, Taxonomy};
