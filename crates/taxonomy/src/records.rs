//! The distributed-algorithm catalog and taxonomy-driven selection.
//!
//! Every record classifies one `gp-distsim` implementation on all seven
//! dimensions and carries **three** complexity attributes: messages, time,
//! and local computation per node — the last being what the paper says the
//! literature omits and "a designer should be aware of" when "local
//! computation is at a premium" (mobile and sensor networks).

use crate::dimensions::{Fault, Problem, ProcessMgmt, Sharing, Strategy, Timing, Topology};
use gp_core::complexity::Complexity;

/// One classified algorithm.
#[derive(Clone, Debug)]
pub struct DistAlgorithm {
    /// Algorithm name.
    pub name: &'static str,
    /// Dimension 1: problem.
    pub problem: Problem,
    /// Dimension 2: topology class the algorithm requires.
    pub topology: Topology,
    /// Dimension 3: faults tolerated.
    pub fault_tolerance: Fault,
    /// Dimension 4: information sharing.
    pub sharing: Sharing,
    /// Dimension 5: strategy.
    pub strategy: Strategy,
    /// Dimension 6: timing the algorithm requires.
    pub timing: Timing,
    /// Dimension 7: process management supported.
    pub process_mgmt: ProcessMgmt,
    /// Worst-case message complexity.
    pub messages: Complexity,
    /// Time (rounds / virtual time) complexity.
    pub time: Complexity,
    /// Local computation per node.
    pub local_computation: Complexity,
    /// Entry point in `gp-distsim` that regenerates the measurements.
    pub impl_id: &'static str,
}

/// The built-in catalog: every algorithm implemented in `gp-distsim`.
pub fn catalog() -> Vec<DistAlgorithm> {
    vec![
        DistAlgorithm {
            name: "LCR",
            problem: Problem::LeaderElection,
            topology: Topology::UniRing,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::DistributedControl,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::poly("n", 2),
            time: Complexity::linear("n"),
            local_computation: Complexity::linear("n"),
            impl_id: "gp_distsim::algorithms::lcr_nodes",
        },
        DistAlgorithm {
            name: "Hirschberg-Sinclair",
            problem: Problem::LeaderElection,
            topology: Topology::BiRing,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::ProbeEcho,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::n_log_n("n"),
            time: Complexity::linear("n"),
            local_computation: Complexity::log("n"),
            impl_id: "gp_distsim::algorithms::hs_nodes",
        },
        DistAlgorithm {
            name: "FloodMax",
            problem: Problem::LeaderElection,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::Flooding,
            timing: Timing::Synchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::product(&[("D", 1, 0), ("E", 1, 0)]),
            time: Complexity::linear("D"),
            local_computation: Complexity::product(&[("D", 1, 0)]),
            impl_id: "gp_distsim::algorithms::floodmax_nodes",
        },
        DistAlgorithm {
            name: "AsyncMax",
            problem: Problem::LeaderElection,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::Flooding,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::product(&[("n", 1, 0), ("E", 1, 0)]),
            time: Complexity::linear("D"),
            local_computation: Complexity::linear("n"),
            impl_id: "gp_distsim::algorithms::asyncmax_nodes",
        },
        DistAlgorithm {
            name: "Echo",
            problem: Problem::Broadcast,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::ProbeEcho,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::linear("E"),
            time: Complexity::linear("D"),
            local_computation: Complexity::constant(),
            impl_id: "gp_distsim::algorithms::echo_nodes",
        },
        DistAlgorithm {
            name: "Heartbeat",
            problem: Problem::FailureDetection,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::Crash,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::HeartBeat,
            timing: Timing::Synchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::product(&[("T", 1, 0), ("E", 1, 0)]),
            time: Complexity::linear("T"),
            local_computation: Complexity::linear("deg"),
            impl_id: "gp_distsim::algorithms::heartbeat_nodes",
        },
        DistAlgorithm {
            // Echo under the reliable channel: sequence numbers, acks, and
            // timeout retransmission (bounded by R attempts) mask message
            // omission. Honestly classified: Omission, *not* Crash — a dead
            // peer never acks, and the wrapper eventually gives up.
            name: "ReliableEcho",
            problem: Problem::Broadcast,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::Omission,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::ProbeEcho,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            // Each of the O(E) app messages costs up to R frames plus acks.
            messages: Complexity::product(&[("E", 1, 0), ("R", 1, 0)]),
            time: Complexity::product(&[("D", 1, 0), ("R", 1, 0)]),
            local_computation: Complexity::linear("deg"),
            impl_id: "gp_distsim::algorithms::reliable_echo_nodes",
        },
        DistAlgorithm {
            // LCR under the reliable channel. Needs the *bidirectional*
            // ring — acknowledgments travel the reverse links — unlike raw
            // LCR's unidirectional requirement.
            name: "RetransLCR",
            problem: Problem::LeaderElection,
            topology: Topology::BiRing,
            fault_tolerance: Fault::Omission,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::DistributedControl,
            timing: Timing::Asynchronous,
            process_mgmt: ProcessMgmt::Static,
            // LCR's O(n²) candidates, each retransmitted up to R times.
            messages: Complexity::product(&[("n", 2, 0), ("R", 1, 0)]),
            time: Complexity::product(&[("n", 1, 0), ("R", 1, 0)]),
            local_computation: Complexity::linear("n"),
            impl_id: "gp_distsim::algorithms::reliable_lcr_nodes",
        },
        DistAlgorithm {
            // Crash-tolerant max-consensus: flood improvements immediately
            // and re-flood the current maximum on a periodic timer, so no
            // value is stranded by the crash of its carrier. Survives any
            // f < n crash-stop failures on a complete graph; partially
            // synchronous because the quiet-period termination rule needs
            // delays bounded by the re-flood period.
            name: "FT-FloodMax",
            problem: Problem::Consensus,
            topology: Topology::Complete,
            fault_tolerance: Fault::Crash,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::Flooding,
            timing: Timing::PartiallySynchronous,
            process_mgmt: ProcessMgmt::Static,
            // n improvement floods plus K periodic re-floods over E links.
            messages: Complexity::product(&[("n", 1, 0), ("E", 1, 0)]),
            time: Complexity::linear("K"),
            local_computation: Complexity::linear("n"),
            impl_id: "gp_distsim::algorithms::ft_floodmax_nodes",
        },
        DistAlgorithm {
            name: "SyncBFS",
            problem: Problem::SpanningTree,
            topology: Topology::Arbitrary,
            fault_tolerance: Fault::None,
            sharing: Sharing::MessagePassing,
            strategy: Strategy::Flooding,
            timing: Timing::Synchronous,
            process_mgmt: ProcessMgmt::Static,
            messages: Complexity::linear("E"),
            time: Complexity::linear("D"),
            local_computation: Complexity::constant(),
            impl_id: "gp_distsim::algorithms::bfs_tree_nodes",
        },
    ]
}

/// A deployment's requirements — what the system designer knows.
#[derive(Clone, Debug)]
pub struct Requirement {
    /// Problem to solve.
    pub problem: Problem,
    /// The network's actual topology.
    pub topology: Topology,
    /// The network's timing guarantee.
    pub network_timing: Timing,
    /// Fault tolerance the deployment needs.
    pub fault_needed: Fault,
    /// Sharing mechanism available.
    pub sharing: Sharing,
    /// Process management needed.
    pub process_mgmt: ProcessMgmt,
}

impl Requirement {
    /// A common default: asynchronous message passing, no faults, static
    /// membership, over the given topology.
    pub fn basic(problem: Problem, topology: Topology, network_timing: Timing) -> Self {
        Requirement {
            problem,
            topology,
            network_timing,
            fault_needed: Fault::None,
            sharing: Sharing::MessagePassing,
            process_mgmt: ProcessMgmt::Static,
        }
    }
}

/// True if the algorithm can serve the deployment: problem matches, the
/// deployment's topology refines the algorithm's required class, the
/// network's timing satisfies the algorithm's assumption, and tolerance /
/// sharing / process-management cover the needs.
pub fn applicable(alg: &DistAlgorithm, req: &Requirement) -> bool {
    alg.problem == req.problem
        && req.topology.refines(alg.topology)
        && req.network_timing.satisfies(alg.timing)
        && alg.fault_tolerance.covers(req.fault_needed)
        && alg.sharing == req.sharing
        && alg.process_mgmt.covers(req.process_mgmt)
}

/// Select the best applicable algorithm: smallest asymptotic message
/// complexity, breaking ties by local computation ("when deciding between
/// algorithms, a designer should be aware of how much local computation is
/// involved").
pub fn select_best<'a>(
    algorithms: &'a [DistAlgorithm],
    req: &Requirement,
) -> Option<&'a DistAlgorithm> {
    let mut best: Option<&DistAlgorithm> = None;
    for alg in algorithms.iter().filter(|a| applicable(a, req)) {
        best = Some(match best {
            None => alg,
            Some(cur) => {
                use std::cmp::Ordering::*;
                match alg.messages.cmp_growth(&cur.messages) {
                    Some(Less) => alg,
                    Some(Greater) => cur,
                    // Equal or incomparable message growth: compare local
                    // computation.
                    _ => match alg.local_computation.cmp_growth(&cur.local_computation) {
                        Some(Less) => alg,
                        _ => cur,
                    },
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_ring_prefers_hirschberg_sinclair() {
        // The headline selection: on a bidirectional ring, HS's O(n log n)
        // messages beat LCR's O(n²) (LCR is inapplicable anyway: it needs a
        // unidirectional ring; FloodMax needs synchrony).
        let cat = catalog();
        let req = Requirement::basic(
            Problem::LeaderElection,
            Topology::BiRing,
            Timing::Asynchronous,
        );
        let best = select_best(&cat, &req).unwrap();
        assert_eq!(best.name, "Hirschberg-Sinclair");
    }

    #[test]
    fn unidirectional_ring_admits_lcr_and_the_generic_fallback() {
        let cat = catalog();
        let req = Requirement::basic(
            Problem::LeaderElection,
            Topology::UniRing,
            Timing::Asynchronous,
        );
        let names: Vec<&str> = cat
            .iter()
            .filter(|a| applicable(a, &req))
            .map(|a| a.name)
            .collect();
        // The ring specialist plus the arbitrary-topology fallback; HS does
        // not apply (it needs a *bidirectional* ring), nor does FloodMax
        // (synchrony).
        assert_eq!(names, vec!["LCR", "AsyncMax"]);
        // On a ring E = n, so both are Θ(n²) messages; the growth orders are
        // formally incomparable (different size variables) and the selector
        // keeps the specialist.
        assert_eq!(select_best(&cat, &req).unwrap().name, "LCR");
    }

    #[test]
    fn synchronous_arbitrary_network_admits_floodmax_and_asyncmax() {
        let cat = catalog();
        let req = Requirement::basic(Problem::LeaderElection, Topology::Grid, Timing::Synchronous);
        let names: Vec<&str> = cat
            .iter()
            .filter(|a| applicable(a, &req))
            .map(|a| a.name)
            .collect();
        // A synchronous network runs asynchronous algorithms too.
        assert_eq!(names, vec!["FloodMax", "AsyncMax"]);
    }

    #[test]
    fn asyncmax_fills_the_async_arbitrary_gap() {
        // The paper: taxonomies help "in the design of new ones (based on
        // situations where no known algorithms for a particular concept
        // refinement exist)". Without AsyncMax the cell is empty; with it,
        // selection succeeds — the gap drove the design.
        let req = Requirement::basic(
            Problem::LeaderElection,
            Topology::Grid,
            Timing::Asynchronous,
        );
        let without: Vec<DistAlgorithm> = catalog()
            .into_iter()
            .filter(|a| a.name != "AsyncMax")
            .collect();
        assert!(select_best(&without, &req).is_none(), "the historical gap");
        let full = catalog();
        assert_eq!(select_best(&full, &req).unwrap().name, "AsyncMax");
    }

    #[test]
    fn fault_requirements_filter_everything_out() {
        let cat = catalog();
        let mut req = Requirement::basic(
            Problem::Broadcast,
            Topology::Arbitrary,
            Timing::Asynchronous,
        );
        assert!(select_best(&cat, &req).is_some());
        req.fault_needed = Fault::Crash;
        assert!(
            select_best(&cat, &req).is_none(),
            "no broadcast algorithm tolerates crashes: retransmission \
             (ReliableEcho) masks omissions, not dead peers — and the \
             simulator's crash tests confirm it"
        );
    }

    #[test]
    fn omission_tolerant_broadcast_is_reliable_echo() {
        // Before the reliable channel this cell was empty; now the wrapper
        // fills it. Without the fault requirement, raw Echo still wins on
        // message complexity — the taxonomy records the retransmission
        // overhead honestly.
        let cat = catalog();
        let mut req = Requirement::basic(
            Problem::Broadcast,
            Topology::Arbitrary,
            Timing::Asynchronous,
        );
        req.fault_needed = Fault::Omission;
        assert_eq!(select_best(&cat, &req).unwrap().name, "ReliableEcho");
        req.fault_needed = Fault::None;
        assert_eq!(select_best(&cat, &req).unwrap().name, "Echo");
    }

    #[test]
    fn lossy_ring_election_needs_the_bidirectional_retransmitter() {
        // Omission-tolerant leader election exists only on the
        // bidirectional ring (acks need reverse links); the unidirectional
        // ring cell stays empty.
        let cat = catalog();
        let mut req = Requirement::basic(
            Problem::LeaderElection,
            Topology::BiRing,
            Timing::Asynchronous,
        );
        req.fault_needed = Fault::Omission;
        assert_eq!(select_best(&cat, &req).unwrap().name, "RetransLCR");
        req.topology = Topology::UniRing;
        assert!(select_best(&cat, &req).is_none());
    }

    #[test]
    fn crash_tolerant_consensus_is_ft_floodmax() {
        let cat = catalog();
        let mut req = Requirement::basic(
            Problem::Consensus,
            Topology::Complete,
            Timing::PartiallySynchronous,
        );
        req.fault_needed = Fault::Crash;
        assert_eq!(select_best(&cat, &req).unwrap().name, "FT-FloodMax");
        // But not under omission: periodic re-flooding assumes reliable
        // links between live nodes. Crash and omission stay incomparable.
        req.fault_needed = Fault::Omission;
        assert!(select_best(&cat, &req).is_none());
        // And not on a fully asynchronous network: the quiet-period
        // termination rule needs bounded delays.
        req.fault_needed = Fault::Crash;
        req.network_timing = Timing::Asynchronous;
        assert!(select_best(&cat, &req).is_none());
    }

    #[test]
    fn broadcast_and_spanning_tree_have_owners() {
        let cat = catalog();
        let req = Requirement::basic(Problem::Broadcast, Topology::Complete, Timing::Asynchronous);
        assert_eq!(select_best(&cat, &req).unwrap().name, "Echo");
        let req = Requirement::basic(Problem::SpanningTree, Topology::Grid, Timing::Synchronous);
        assert_eq!(select_best(&cat, &req).unwrap().name, "SyncBFS");
    }

    #[test]
    fn catalog_is_fully_classified() {
        for alg in catalog() {
            // Every record carries all three performance attributes.
            assert!(!alg.messages.to_string().is_empty());
            assert!(!alg.time.to_string().is_empty());
            assert!(!alg.local_computation.to_string().is_empty());
            assert!(alg.impl_id.contains("gp_distsim"));
        }
    }

    #[test]
    fn crash_tolerant_failure_detection_exists() {
        // The one catalog entry that covers Fault::Crash — and only for the
        // failure-detection problem, matching the simulator's crash tests.
        let cat = catalog();
        let mut req = Requirement::basic(
            Problem::FailureDetection,
            Topology::Complete,
            Timing::Synchronous,
        );
        req.fault_needed = Fault::Crash;
        assert_eq!(select_best(&cat, &req).unwrap().name, "Heartbeat");
        // But it needs synchrony (silence is only meaningful with bounds).
        req.network_timing = Timing::Asynchronous;
        assert!(select_best(&cat, &req).is_none());
    }
}
