//! Property tests: the parallel graph kernels agree with their
//! sequential counterparts on random graphs — both representations,
//! every thread count, sources inside and outside the reachable region.

use gp_graphs::algo::{
    bfs_distances, out_degrees, par_bfs_distances, par_out_degrees, par_triangle_count,
    triangle_count,
};
use gp_graphs::concepts::{EdgeListGraph, Vertex};
use gp_graphs::{AdjacencyList, CsrGraph};
use proptest::prelude::*;

fn build(n: usize, pairs: &[(u32, u32)]) -> (AdjacencyList, CsrGraph) {
    let edges: Vec<(Vertex, Vertex)> = pairs
        .iter()
        .map(|&(u, v)| (u % n as u32, v % n as u32))
        .collect();
    (
        AdjacencyList::from_edges(n, &edges),
        CsrGraph::from_edges(n, &edges),
    )
}

proptest! {
    #[test]
    fn par_bfs_matches_sequential(
        n in 1usize..120,
        pairs in prop::collection::vec((0u32..1000, 0u32..1000), 0..400),
        source in 0u32..1000,
    ) {
        let (adj, csr) = build(n, &pairs);
        let src = source % n as u32;
        let seq = bfs_distances(&csr, src);
        for threads in [1usize, 2, 3, 8] {
            let par = par_bfs_distances(&csr, src, threads);
            prop_assert_eq!(par.as_slice(), seq.as_slice());
        }
        // Identical generic source on the other representation.
        prop_assert_eq!(
            par_bfs_distances(&adj, src, 4).as_slice(),
            bfs_distances(&adj, src).as_slice()
        );
    }

    #[test]
    fn par_degrees_and_triangles_match_sequential(
        n in 1usize..100,
        pairs in prop::collection::vec((0u32..1000, 0u32..1000), 0..500),
    ) {
        let (_, csr) = build(n, &pairs);
        prop_assert_eq!(csr.num_edges(), pairs.len());
        let deg = out_degrees(&csr);
        let tri = triangle_count(&csr);
        for threads in [1usize, 2, 3, 8] {
            prop_assert_eq!(&par_out_degrees(&csr, threads), &deg);
            prop_assert_eq!(par_triangle_count(&csr, threads), tri);
        }
    }
}

#[test]
fn par_bfs_never_panics_on_degenerate_graphs() {
    let empty = CsrGraph::from_edges(0, &[]);
    assert!(par_bfs_distances(&empty, 0, 8).is_empty());
    let single = CsrGraph::from_edges(1, &[]);
    assert_eq!(par_bfs_distances(&single, 0, 8).as_slice(), &[Some(0)]);
    // Source beyond the vertex range: all-None, no panic.
    let few = CsrGraph::from_edges(3, &[(0, 1)]);
    assert!(par_bfs_distances(&few, 7, 8)
        .as_slice()
        .iter()
        .all(Option::is_none));
}
