//! Disjoint-set union-find with union by rank and path compression —
//! Kruskal's and connected-components' substrate, built from scratch.

/// Disjoint sets over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress the path.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already joined
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn path_compression_keeps_find_correct() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.set_count(), 1);
    }
}
