//! Graph generators: deterministic workloads for tests, benches, and
//! experiments.

use crate::adjacency::AdjacencyList;
use crate::concepts::Vertex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi-style G(n, m): `m` random directed edges over `n` vertices,
/// deterministic per seed.
pub fn random_directed(n: usize, m: usize, seed: u64) -> AdjacencyList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = AdjacencyList::directed(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as Vertex);
        let v = rng.gen_range(0..n as Vertex);
        g.add_edge(u, v);
    }
    g
}

/// A connected undirected graph: random spanning tree plus `extra` chords.
pub fn random_connected_undirected(n: usize, extra: usize, seed: u64) -> AdjacencyList {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = AdjacencyList::undirected(n);
    for v in 1..n as Vertex {
        let u = rng.gen_range(0..v);
        g.add_edge(u, v);
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n as Vertex);
        let v = rng.gen_range(0..n as Vertex);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// A random DAG: edges only from lower to higher indices.
pub fn random_dag(n: usize, m: usize, seed: u64) -> AdjacencyList {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = AdjacencyList::directed(n);
    for _ in 0..m {
        let u = rng.gen_range(0..(n - 1) as Vertex);
        let v = rng.gen_range(u + 1..n as Vertex);
        g.add_edge(u, v);
    }
    g
}

/// A layered DAG (a "pipeline" shape): `layers` layers of `width` vertices,
/// each vertex wired to `fanout` random vertices of the next layer.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> AdjacencyList {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * width;
    let mut g = AdjacencyList::directed(n);
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = (l * width + i) as Vertex;
            for _ in 0..fanout {
                let v = ((l + 1) * width + rng.gen_range(0..width)) as Vertex;
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Deterministic pseudo-random edge weights in `[1, max)` keyed by edge id.
pub fn hashed_weights(max: f64) -> impl Fn(crate::concepts::Edge) -> f64 {
    move |e| {
        1.0 + ((e.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1000) as f64 * (max - 1.0)
            / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{connected_components, strongly_connected_components, topological_sort};
    use crate::concepts::{EdgeListGraph, VertexListGraph};

    #[test]
    fn generators_are_deterministic() {
        let a = random_directed(50, 200, 9);
        let b = random_directed(50, 200, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().map(|e| (e.source, e.target)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.source, e.target)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected_undirected(40, 20, seed);
            let (count, _) = connected_components(&g);
            assert_eq!(count, 1, "seed {seed}");
        }
    }

    #[test]
    fn random_dag_is_acyclic() {
        for seed in 0..5 {
            let g = random_dag(30, 120, seed);
            assert!(topological_sort(&g).is_ok(), "seed {seed}");
            let scc = strongly_connected_components(&g);
            assert_eq!(scc.count, g.num_vertices());
        }
    }

    #[test]
    fn layered_dag_shape() {
        let g = layered_dag(4, 5, 2, 3);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 3 * 5 * 2);
        assert!(topological_sort(&g).is_ok());
        // Last layer has no out-edges.
        for v in 15..20 {
            assert_eq!(crate::concepts::IncidenceGraph::out_degree(&g, v), 0);
        }
    }

    #[test]
    fn hashed_weights_are_stable_and_bounded() {
        let w = hashed_weights(10.0);
        let e = crate::concepts::Edge {
            source: 0,
            target: 1,
            id: 42,
        };
        assert_eq!(w(e), w(e));
        for id in 0..100 {
            let e = crate::concepts::Edge {
                source: 0,
                target: 1,
                id,
            };
            assert!(w(e) >= 1.0 && w(e) < 10.0);
        }
    }
}
