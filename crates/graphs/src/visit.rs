//! Visitor concepts for graph traversals.
//!
//! BGL-style event-point customization: the traversal algorithms accept a
//! visitor whose hooks default to no-ops, so callers pay only for the
//! events they observe. The visitor is itself a concept — another instance
//! of the paper's interface-by-requirements design.

use crate::concepts::{Edge, Vertex};

/// Event hooks for breadth-first search.
pub trait BfsVisitor {
    /// First time `v` is seen.
    fn discover_vertex(&mut self, _v: Vertex) {}
    /// `v` is popped from the queue.
    fn examine_vertex(&mut self, _v: Vertex) {}
    /// Every out-edge of an examined vertex.
    fn examine_edge(&mut self, _e: Edge) {}
    /// Edge leading to a newly discovered vertex.
    fn tree_edge(&mut self, _e: Edge) {}
    /// Edge leading to an already-discovered vertex.
    fn non_tree_edge(&mut self, _e: Edge) {}
    /// All out-edges of `v` processed.
    fn finish_vertex(&mut self, _v: Vertex) {}
}

/// Event hooks for depth-first search.
pub trait DfsVisitor {
    /// First time `v` is seen.
    fn discover_vertex(&mut self, _v: Vertex) {}
    /// Every out-edge examined.
    fn examine_edge(&mut self, _e: Edge) {}
    /// Edge to an undiscovered vertex.
    fn tree_edge(&mut self, _e: Edge) {}
    /// Edge to a vertex on the current DFS stack (cycle witness).
    fn back_edge(&mut self, _e: Edge) {}
    /// Edge to a finished vertex.
    fn forward_or_cross_edge(&mut self, _e: Edge) {}
    /// `v`'s subtree is complete.
    fn finish_vertex(&mut self, _v: Vertex) {}
}

/// The do-nothing visitor (both concepts' trivial model).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullVisitor;

impl BfsVisitor for NullVisitor {}
impl DfsVisitor for NullVisitor {}

/// A visitor that records the order of discover/finish events — used by
/// tests and by topological sort.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// Vertices in discovery order.
    pub discovered: Vec<Vertex>,
    /// Vertices in finish order.
    pub finished: Vec<Vertex>,
    /// Tree edges in traversal order.
    pub tree_edges: Vec<Edge>,
    /// Back edges seen (DFS only; nonempty implies a cycle).
    pub back_edges: Vec<Edge>,
}

impl BfsVisitor for EventLog {
    fn discover_vertex(&mut self, v: Vertex) {
        self.discovered.push(v);
    }
    fn tree_edge(&mut self, e: Edge) {
        self.tree_edges.push(e);
    }
    fn finish_vertex(&mut self, v: Vertex) {
        self.finished.push(v);
    }
}

impl DfsVisitor for EventLog {
    fn discover_vertex(&mut self, v: Vertex) {
        self.discovered.push(v);
    }
    fn tree_edge(&mut self, e: Edge) {
        self.tree_edges.push(e);
    }
    fn back_edge(&mut self, e: Edge) {
        self.back_edges.push(e);
    }
    fn finish_vertex(&mut self, v: Vertex) {
        self.finished.push(v);
    }
}
