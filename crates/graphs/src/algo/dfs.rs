//! Depth-first search with discover/finish times and edge classification.
//! Requirements: Incidence Graph + Vertex List Graph. Complexity: `O(V+E)`.

use crate::concepts::{Edge, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph};
use crate::property::{Color, MutablePropertyMap, PropertyMap, VertexMap};
use crate::visit::DfsVisitor;

/// Outcome of a DFS over the whole graph.
#[derive(Clone, Debug)]
pub struct DfsResult {
    /// Discovery timestamps.
    pub discover_time: VertexMap<u32>,
    /// Finish timestamps.
    pub finish_time: VertexMap<u32>,
    /// DFS-forest parents.
    pub parent: VertexMap<Option<Vertex>>,
    /// True if any back edge was found (the graph has a cycle).
    pub has_cycle: bool,
}

struct DfsState<'a, V> {
    color: VertexMap<Color>,
    discover: VertexMap<u32>,
    finish: VertexMap<u32>,
    parent: VertexMap<Option<Vertex>>,
    clock: u32,
    has_cycle: bool,
    visitor: &'a mut V,
}

fn dfs_visit<G, V>(g: &G, u: Vertex, st: &mut DfsState<'_, V>)
where
    G: IncidenceGraph + Graph<Edge = Edge>,
    V: DfsVisitor,
{
    // Explicit stack to avoid recursion limits on deep graphs; entries are
    // (vertex, out-edge list position) pairs.
    let mut stack: Vec<(Vertex, Vec<Edge>, usize)> = Vec::new();
    st.color.set(u, Color::Gray);
    st.discover.set(u, st.clock);
    st.clock += 1;
    st.visitor.discover_vertex(u);
    stack.push((u, g.out_edges(u).collect(), 0));

    while let Some((v, edges, idx)) = stack.last_mut() {
        if *idx < edges.len() {
            let e = edges[*idx];
            *idx += 1;
            st.visitor.examine_edge(e);
            let w = e.target();
            match *st.color.get(w) {
                Color::White => {
                    st.visitor.tree_edge(e);
                    st.parent.set(w, Some(*v));
                    st.color.set(w, Color::Gray);
                    st.discover.set(w, st.clock);
                    st.clock += 1;
                    st.visitor.discover_vertex(w);
                    stack.push((w, g.out_edges(w).collect(), 0));
                }
                Color::Gray => {
                    st.has_cycle = true;
                    st.visitor.back_edge(e);
                }
                Color::Black => {
                    st.visitor.forward_or_cross_edge(e);
                }
            }
        } else {
            let v = *v;
            stack.pop();
            st.color.set(v, Color::Black);
            st.finish.set(v, st.clock);
            st.clock += 1;
            st.visitor.finish_vertex(v);
        }
    }
}

/// DFS over the whole graph (restarting from every undiscovered vertex).
pub fn dfs<G, V>(g: &G, visitor: &mut V) -> DfsResult
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
    V: DfsVisitor,
{
    let n = g.num_vertices();
    let mut st = DfsState {
        color: VertexMap::new(n, Color::White),
        discover: VertexMap::new(n, 0),
        finish: VertexMap::new(n, 0),
        parent: VertexMap::new(n, None),
        clock: 0,
        has_cycle: false,
        visitor,
    };
    for v in g.vertices() {
        if *st.color.get(v) == Color::White {
            dfs_visit(g, v, &mut st);
        }
    }
    DfsResult {
        discover_time: st.discover,
        finish_time: st.finish,
        parent: st.parent,
        has_cycle: st.has_cycle,
    }
}

/// DFS restricted to the component reachable from `source`.
pub fn dfs_from<G, V>(g: &G, source: Vertex, visitor: &mut V) -> DfsResult
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
    V: DfsVisitor,
{
    let n = g.num_vertices();
    let mut st = DfsState {
        color: VertexMap::new(n, Color::White),
        discover: VertexMap::new(n, 0),
        finish: VertexMap::new(n, 0),
        parent: VertexMap::new(n, None),
        clock: 0,
        has_cycle: false,
        visitor,
    };
    dfs_visit(g, source, &mut st);
    DfsResult {
        discover_time: st.discover,
        finish_time: st.finish,
        parent: st.parent,
        has_cycle: st.has_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::visit::{EventLog, NullVisitor};

    #[test]
    fn dag_has_no_cycle_and_nested_intervals() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let r = dfs(&g, &mut NullVisitor);
        assert!(!r.has_cycle);
        // Parenthesis theorem: child interval nested in parent interval.
        let (d, f) = (&r.discover_time, &r.finish_time);
        assert!(d.get(0) < d.get(1) && f.get(1) < f.get(0));
        assert!(d.get(1) < d.get(2) && f.get(2) < f.get(1));
    }

    #[test]
    fn cycle_is_detected_via_back_edge() {
        let g = AdjacencyList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut log = EventLog::default();
        let r = dfs(&g, &mut log);
        assert!(r.has_cycle);
        assert_eq!(log.back_edges.len(), 1);
        assert_eq!(log.back_edges[0].target, 0);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = AdjacencyList::from_edges(2, &[(0, 0)]);
        assert!(dfs(&g, &mut NullVisitor).has_cycle);
    }

    #[test]
    fn whole_graph_dfs_covers_disconnected_parts() {
        let g = AdjacencyList::from_edges(4, &[(0, 1)]); // 2, 3 isolated
        let mut log = EventLog::default();
        dfs(&g, &mut log);
        assert_eq!(log.discovered.len(), 4);
        assert_eq!(log.finished.len(), 4);
    }

    #[test]
    fn dfs_from_stays_in_component() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (2, 3)]);
        let mut log = EventLog::default();
        dfs_from(&g, 0, &mut log);
        assert_eq!(log.discovered, vec![0, 1]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-vertex path: must work because DFS is iterative.
        let n = 100_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = AdjacencyList::from_edges(n as usize, &edges);
        let r = dfs_from(&g, 0, &mut NullVisitor);
        assert!(!r.has_cycle);
        assert_eq!(*r.discover_time.get(n - 1), n - 1);
    }
}
