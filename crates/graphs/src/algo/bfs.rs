//! Breadth-first search. Requirements: Incidence Graph + Vertex List Graph.
//! Complexity guarantee: `O(V + E)`.

use crate::concepts::{Edge, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph};
use crate::property::{Color, MutablePropertyMap, PropertyMap, VertexMap};
use crate::visit::BfsVisitor;
use std::collections::VecDeque;

/// Outcome of a BFS from a source.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Hop distance from the source (`None` if unreachable).
    pub distance: VertexMap<Option<u32>>,
    /// BFS-tree parent (`None` for the source and unreachable vertices).
    pub parent: VertexMap<Option<Vertex>>,
}

impl BfsResult {
    /// Reconstruct the shortest hop path to `v` (source first), if reached.
    pub fn path_to(&self, v: Vertex) -> Option<Vec<Vertex>> {
        self.distance.get(v).as_ref()?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent.get(cur) {
            path.push(*p);
            cur = *p;
        }
        path.reverse();
        Some(path)
    }
}

/// Generic BFS with visitor event points.
pub fn bfs<G, V>(g: &G, source: Vertex, visitor: &mut V) -> BfsResult
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
    V: BfsVisitor,
{
    let n = g.num_vertices();
    let mut color = VertexMap::new(n, Color::White);
    let mut distance: VertexMap<Option<u32>> = VertexMap::new(n, None);
    let mut parent: VertexMap<Option<Vertex>> = VertexMap::new(n, None);
    let mut queue = VecDeque::new();

    color.set(source, Color::Gray);
    distance.set(source, Some(0));
    visitor.discover_vertex(source);
    queue.push_back(source);

    while let Some(u) = queue.pop_front() {
        visitor.examine_vertex(u);
        let du = distance.get(u).expect("queued vertices have distances");
        for e in g.out_edges(u) {
            visitor.examine_edge(e);
            let v = e.target();
            if *color.get(v) == Color::White {
                visitor.tree_edge(e);
                color.set(v, Color::Gray);
                distance.set(v, Some(du + 1));
                parent.set(v, Some(u));
                visitor.discover_vertex(v);
                queue.push_back(v);
            } else {
                visitor.non_tree_edge(e);
            }
        }
        color.set(u, Color::Black);
        visitor.finish_vertex(u);
    }

    BfsResult { distance, parent }
}

/// BFS distances only (no visitor).
pub fn bfs_distances<G>(g: &G, source: Vertex) -> VertexMap<Option<u32>>
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
{
    bfs(g, source, &mut crate::visit::NullVisitor).distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::csr::CsrGraph;
    use crate::visit::EventLog;

    fn sample_edges() -> Vec<(Vertex, Vertex)> {
        vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
    }

    #[test]
    fn distances_match_hand_computation() {
        let g = AdjacencyList::from_edges(6, &sample_edges());
        let d = bfs_distances(&g, 0);
        assert_eq!(*d.get(0), Some(0));
        assert_eq!(*d.get(1), Some(1));
        assert_eq!(*d.get(2), Some(1));
        assert_eq!(*d.get(3), Some(2));
        assert_eq!(*d.get(4), Some(3));
        assert_eq!(*d.get(5), None); // disconnected
    }

    #[test]
    fn same_generic_code_runs_on_csr() {
        // The generality claim: identical algorithm source, different model.
        let edges = sample_edges();
        let adj = AdjacencyList::from_edges(6, &edges);
        let csr = CsrGraph::from_edges(6, &edges);
        let da = bfs_distances(&adj, 0);
        let dc = bfs_distances(&csr, 0);
        assert_eq!(da.as_slice(), dc.as_slice());
    }

    #[test]
    fn path_reconstruction() {
        let g = AdjacencyList::from_edges(5, &sample_edges());
        let r = bfs(&g, 0, &mut crate::visit::NullVisitor);
        let p = r.path_to(4).unwrap();
        assert_eq!(p.len(), 4); // 0 -> {1|2} -> 3 -> 4
        assert_eq!(p[0], 0);
        assert_eq!(p[3], 4);
        assert!(r.path_to(4).is_some());
        let g2 = AdjacencyList::from_edges(6, &sample_edges());
        assert!(bfs(&g2, 0, &mut crate::visit::NullVisitor)
            .path_to(5)
            .is_none());
    }

    #[test]
    fn visitor_sees_each_vertex_once() {
        let g = AdjacencyList::from_edges(5, &sample_edges());
        let mut log = EventLog::default();
        bfs(&g, 0, &mut log);
        assert_eq!(log.discovered.len(), 5);
        assert_eq!(log.finished.len(), 5);
        assert_eq!(log.tree_edges.len(), 4); // spanning tree of 5 vertices
        let mut seen = log.discovered.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn bfs_discovery_is_level_ordered() {
        let g = AdjacencyList::from_edges(5, &sample_edges());
        let r = bfs(&g, 0, &mut crate::visit::NullVisitor);
        let mut log = EventLog::default();
        bfs(&g, 0, &mut log);
        // Discovery order never decreases in distance.
        let dists: Vec<u32> = log
            .discovered
            .iter()
            .map(|&v| r.distance.get(v).unwrap())
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }
}
