//! Minimum spanning trees: Kruskal (`O(E log E)`, Edge List Graph +
//! union-find) and Prim (`O(E log V)`, Incidence Graph + indexed heap).

use crate::concepts::{Edge, EdgeListGraph, Graph, GraphEdge, IncidenceGraph, VertexListGraph};
use crate::heap::IndexedMinHeap;
use crate::unionfind::UnionFind;

/// A spanning forest: chosen edges and their total weight.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// Edges of the forest.
    pub edges: Vec<Edge>,
    /// Sum of the chosen edges' weights.
    pub total_weight: f64,
}

/// Kruskal's algorithm on an undirected graph given as an edge list.
pub fn kruskal_mst<G>(g: &G, weight: impl Fn(Edge) -> f64) -> MstResult
where
    G: EdgeListGraph + VertexListGraph + Graph<Edge = Edge>,
{
    let mut edges: Vec<Edge> = g.edges().collect();
    edges.sort_by(|a, b| {
        weight(*a)
            .partial_cmp(&weight(*b))
            .expect("weights must be comparable (no NaN)")
    });
    let mut uf = UnionFind::new(g.num_vertices());
    let mut out = Vec::new();
    let mut total = 0.0;
    for e in edges {
        if uf.union(e.source(), e.target()) {
            total += weight(e);
            out.push(e);
        }
    }
    MstResult {
        edges: out,
        total_weight: total,
    }
}

/// Prim's algorithm from vertex 0 (or each component root in turn),
/// traversing out-edges — requires the undirected graph to expose each edge
/// from both endpoints (as [`crate::adjacency::AdjacencyList::undirected`]
/// does).
pub fn prim_mst<G>(g: &G, weight: impl Fn(Edge) -> f64) -> MstResult
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
{
    let n = g.num_vertices();
    let mut in_tree = vec![false; n];
    let mut best_edge: Vec<Option<Edge>> = vec![None; n];
    let mut out = Vec::new();
    let mut total = 0.0;

    for root in g.vertices() {
        if in_tree[root as usize] {
            continue;
        }
        let mut heap = IndexedMinHeap::new(n);
        heap.push(root, 0.0);
        while let Some((u, _)) = heap.pop() {
            if in_tree[u as usize] {
                continue;
            }
            in_tree[u as usize] = true;
            if let Some(e) = best_edge[u as usize].take() {
                total += weight(e);
                out.push(e);
            }
            for e in g.out_edges(u) {
                let v = e.target();
                if !in_tree[v as usize] && heap.push_or_decrease(v, weight(e)) {
                    best_edge[v as usize] = Some(e);
                }
            }
        }
    }

    MstResult {
        edges: out,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::property::{EdgeMap, PropertyMap};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> (AdjacencyList, EdgeMap<f64>) {
        let mut g = AdjacencyList::undirected(5);
        let mut w = Vec::new();
        for &(u, v, wt) in &[
            (0u32, 1u32, 2.0),
            (0, 3, 6.0),
            (1, 2, 3.0),
            (1, 3, 8.0),
            (1, 4, 5.0),
            (2, 4, 7.0),
            (3, 4, 9.0),
        ] {
            g.add_edge(u, v);
            w.push(wt);
        }
        (g, EdgeMap::from_values(w))
    }

    #[test]
    fn kruskal_finds_known_mst() {
        let (g, w) = sample();
        let mst = kruskal_mst(&g, |e| *w.get(e));
        assert_eq!(mst.edges.len(), 4);
        assert_eq!(mst.total_weight, 16.0); // 2+3+5+6
    }

    #[test]
    fn prim_agrees_with_kruskal_on_weight() {
        let (g, w) = sample();
        let k = kruskal_mst(&g, |e| *w.get(e));
        let p = prim_mst(&g, |e| *w.get(e));
        assert_eq!(p.edges.len(), k.edges.len());
        assert!((p.total_weight - k.total_weight).abs() < 1e-9);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut g = AdjacencyList::undirected(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let mst = kruskal_mst(&g, |_| 1.0);
        assert_eq!(mst.edges.len(), 2); // two trees
        let p = prim_mst(&g, |_| 1.0);
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn random_graphs_prim_equals_kruskal() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..5 {
            let n = 25u32;
            let mut g = AdjacencyList::undirected(n as usize);
            let mut w = Vec::new();
            // A spanning path to guarantee connectivity, plus random extras.
            for i in 0..n - 1 {
                g.add_edge(i, i + 1);
                w.push(rng.gen_range(1.0..10.0));
            }
            for _ in 0..60 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u, v);
                    w.push(rng.gen_range(1.0..10.0));
                }
            }
            let wm = EdgeMap::from_values(w);
            let k = kruskal_mst(&g, |e| *wm.get(e));
            let p = prim_mst(&g, |e| *wm.get(e));
            assert_eq!(k.edges.len(), (n - 1) as usize);
            assert!((k.total_weight - p.total_weight).abs() < 1e-9);
        }
    }
}
