//! Parallel graph kernels on the gp-parallel work-stealing executor.
//!
//! Same concept discipline as the sequential algorithms: every kernel is
//! written against [`IncidenceGraph`] + [`VertexListGraph`] (never a
//! concrete representation) and so runs unchanged on `AdjacencyList` and
//! `CsrGraph` — CSR's contiguous out-edge slices are where the
//! parallelism pays. Every kernel is **deterministic**: its output is
//! bit-for-bit the sequential algorithm's output for every thread count,
//! because the only cross-task communication is (a) idempotent CAS
//! claiming of level-labelled BFS vertices and (b) associative integer
//! sums.
//!
//! The `threads` parameter is the same parallelism-width hint as in
//! [`gp_parallel::par`]; `threads <= 1` runs the sequential loop
//! directly.

use crate::concepts::{Edge, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph};
use crate::property::VertexMap;
use gp_parallel::pool::{self, ThreadPool};
use std::sync::atomic::{AtomicU32, Ordering};

/// Distance sentinel for "not yet reached".
const UNREACHED: u32 = u32::MAX;

/// Sequential cutoff for vertex-range and frontier splitting: aim for ~8
/// stealable leaves per requested thread, floor 128 vertices.
fn grain(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 8)).max(128)
}

/// Level-synchronous parallel BFS distances.
///
/// Each level expands the current frontier in parallel: subranges of the
/// frontier are split across the executor (adaptive, work-stealing), and
/// an unreached neighbor is claimed for the next frontier by a single
/// winning `compare_exchange` on its distance slot. Distances are
/// bit-identical to [`super::bfs_distances`] regardless of claim order,
/// because a vertex first becomes reachable at exactly one level.
///
/// Never panics on empty or disconnected graphs: an out-of-range source
/// (including any source on the empty graph) yields the all-`None` map.
pub fn par_bfs_distances<G>(g: &G, source: Vertex, threads: usize) -> VertexMap<Option<u32>>
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge> + Sync,
{
    let n = g.num_vertices();
    if n == 0 || source as usize >= n {
        return VertexMap::new(n, None);
    }
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let pool = pool::global();
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        frontier = if threads <= 1 {
            expand_seq(g, &frontier, &dist, level)
        } else {
            expand_rec(
                pool,
                g,
                &frontier,
                &dist,
                level,
                grain(frontier.len(), threads),
            )
        };
    }
    VertexMap::from_fn(n, |v| {
        let d = dist[v].load(Ordering::Relaxed);
        (d != UNREACHED).then_some(d)
    })
}

/// Expand one frontier slice sequentially, claiming unreached neighbors.
fn expand_seq<G>(g: &G, frontier: &[Vertex], dist: &[AtomicU32], level: u32) -> Vec<Vertex>
where
    G: IncidenceGraph + Graph<Edge = Edge>,
{
    let mut next = Vec::new();
    for &u in frontier {
        for e in g.out_edges(u) {
            let v = e.target();
            if dist[v as usize]
                .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                next.push(v);
            }
        }
    }
    next
}

fn expand_rec<G>(
    pool: &ThreadPool,
    g: &G,
    frontier: &[Vertex],
    dist: &[AtomicU32],
    level: u32,
    grain: usize,
) -> Vec<Vertex>
where
    G: IncidenceGraph + Graph<Edge = Edge> + Sync,
{
    if frontier.len() <= grain {
        return expand_seq(g, frontier, dist, level);
    }
    let mid = frontier.len() / 2;
    let (l, r) = frontier.split_at(mid);
    let (mut a, b) = pool.join(
        || expand_rec(pool, g, l, dist, level, grain),
        || expand_rec(pool, g, r, dist, level, grain),
    );
    a.extend(b);
    a
}

/// Sequential out-degree map (baseline for [`par_out_degrees`]).
/// `O(V)` on CSR (offset subtraction), `O(V + E)` worst case.
pub fn out_degrees<G: IncidenceGraph + VertexListGraph>(g: &G) -> Vec<u32> {
    g.vertices().map(|v| g.out_degree(v) as u32).collect()
}

/// Parallel out-degree map: the vertex range is split adaptively and each
/// leaf writes its disjoint output slice directly.
pub fn par_out_degrees<G>(g: &G, threads: usize) -> Vec<u32>
where
    G: IncidenceGraph + VertexListGraph + Sync,
{
    let n = g.num_vertices();
    if threads <= 1 || n == 0 {
        return out_degrees(g);
    }
    let mut out = vec![0u32; n];
    degrees_rec(pool::global(), g, 0, &mut out, grain(n, threads));
    out
}

fn degrees_rec<G>(pool: &ThreadPool, g: &G, base: Vertex, out: &mut [u32], grain: usize)
where
    G: IncidenceGraph + Sync,
{
    if out.len() <= grain {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = g.out_degree(base + i as Vertex) as u32;
        }
        return;
    }
    let mid = out.len() / 2;
    let (l, r) = out.split_at_mut(mid);
    pool.join(
        || degrees_rec(pool, g, base, l, grain),
        || degrees_rec(pool, g, base + mid as Vertex, r, grain),
    );
}

/// Sorted higher-endpoint neighbor lists of the graph's undirected
/// support: `fwd[u]` holds every `w > u` adjacent to `u` in either
/// direction, sorted and deduplicated. The standard forward-adjacency
/// preprocessing for triangle counting.
fn forward_adjacency<G: IncidenceGraph + VertexListGraph>(g: &G) -> Vec<Vec<Vertex>> {
    let n = g.num_vertices();
    let mut fwd: Vec<Vec<Vertex>> = vec![Vec::new(); n];
    for u in g.vertices() {
        for e in g.out_edges(u) {
            let v = e.target();
            if u != v {
                let (lo, hi) = if u < v { (u, v) } else { (v, u) };
                fwd[lo as usize].push(hi);
            }
        }
    }
    for list in &mut fwd {
        list.sort_unstable();
        list.dedup();
    }
    fwd
}

/// Two-pointer intersection size of two sorted vertex lists.
fn sorted_intersection_len(a: &[Vertex], b: &[Vertex]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Triangles through the lowest-numbered vertex `u`.
fn triangles_at(fwd: &[Vec<Vertex>], u: usize) -> u64 {
    let mut c = 0;
    for &v in &fwd[u] {
        c += sorted_intersection_len(&fwd[u], &fwd[v as usize]);
    }
    c
}

/// Count triangles in the graph's undirected support (each triangle once,
/// self-loops and parallel/antiparallel edge pairs ignored). `O(E^{3/2})`
/// with the forward-adjacency + sorted-intersection scheme.
pub fn triangle_count<G: IncidenceGraph + VertexListGraph>(g: &G) -> u64 {
    let fwd = forward_adjacency(g);
    (0..fwd.len()).map(|u| triangles_at(&fwd, u)).sum()
}

/// Parallel triangle count: forward adjacency built once, then per-vertex
/// counts tree-reduced on the executor. Integer addition is associative
/// and exact, so the total is bit-identical to [`triangle_count`].
pub fn par_triangle_count<G>(g: &G, threads: usize) -> u64
where
    G: IncidenceGraph + VertexListGraph + Sync,
{
    let fwd = forward_adjacency(g);
    if threads <= 1 || fwd.is_empty() {
        return (0..fwd.len()).map(|u| triangles_at(&fwd, u)).sum();
    }
    triangles_rec(
        pool::global(),
        &fwd,
        0,
        fwd.len(),
        grain(fwd.len(), threads),
    )
}

fn triangles_rec(
    pool: &ThreadPool,
    fwd: &[Vec<Vertex>],
    lo: usize,
    hi: usize,
    grain: usize,
) -> u64 {
    if hi - lo <= grain {
        return (lo..hi).map(|u| triangles_at(fwd, u)).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = pool.join(
        || triangles_rec(pool, fwd, lo, mid, grain),
        || triangles_rec(pool, fwd, mid, hi, grain),
    );
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::algo::bfs_distances;
    use crate::concepts::EdgeListGraph;
    use crate::csr::CsrGraph;
    use crate::generators;

    fn to_csr(g: &AdjacencyList) -> CsrGraph {
        let edges: Vec<(Vertex, Vertex)> = g.edges().map(|e| (e.source, e.target)).collect();
        CsrGraph::from_edges(g.num_vertices(), &edges)
    }

    #[test]
    fn par_bfs_matches_sequential_on_random_graphs() {
        for seed in 0..4 {
            let adj = generators::random_directed(500, 1500, seed);
            let csr = to_csr(&adj);
            let seq = bfs_distances(&csr, 0);
            for threads in [1, 2, 4, 8] {
                let par = par_bfs_distances(&csr, 0, threads);
                assert_eq!(
                    par.as_slice(),
                    seq.as_slice(),
                    "seed={seed} threads={threads}"
                );
            }
            // Same generic source runs on the adjacency-list model too.
            assert_eq!(
                par_bfs_distances(&adj, 0, 4).as_slice(),
                bfs_distances(&adj, 0).as_slice()
            );
        }
    }

    #[test]
    fn par_bfs_handles_empty_and_disconnected_graphs() {
        let empty = CsrGraph::from_edges(0, &[]);
        assert!(par_bfs_distances(&empty, 0, 4).is_empty());
        // Fully disconnected: only the source is reached.
        let iso = CsrGraph::from_edges(10, &[]);
        let d = par_bfs_distances(&iso, 3, 4);
        for (v, dv) in d.iter() {
            assert_eq!(*dv, if v == 3 { Some(0) } else { None });
        }
        // Out-of-range source: all-None, no panic.
        let d = par_bfs_distances(&iso, 99, 4);
        assert!(d.iter().all(|(_, dv)| dv.is_none()));
    }

    #[test]
    fn par_out_degrees_matches_sequential() {
        let adj = generators::random_directed(2000, 8000, 7);
        let csr = to_csr(&adj);
        let seq = out_degrees(&csr);
        assert_eq!(seq.iter().map(|&d| d as usize).sum::<usize>(), 8000);
        for threads in [1, 2, 4, 16] {
            assert_eq!(par_out_degrees(&csr, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // A 4-clique has C(4,3) = 4 triangles.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(4, &edges);
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(par_triangle_count(&g, 4), 4);
        // A path has none; duplicate and reverse edges change nothing.
        let p = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (1, 2)]);
        assert_eq!(triangle_count(&p), 0);
        // Self-loops are ignored.
        let l = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&l), 1);
        assert_eq!(par_triangle_count(&l, 8), 1);
    }

    #[test]
    fn par_triangle_count_matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let adj = generators::random_connected_undirected(300, 900, seed);
            let csr = to_csr(&adj);
            let seq = triangle_count(&csr);
            assert!(seq > 0, "chord-heavy graph should have triangles");
            for threads in [1, 2, 4, 8] {
                assert_eq!(
                    par_triangle_count(&csr, threads),
                    seq,
                    "seed={seed} threads={threads}"
                );
            }
        }
    }
}
