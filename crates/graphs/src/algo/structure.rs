//! Structural algorithms: topological sort and connected components.

use crate::algo::dfs::dfs;
use crate::concepts::{Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph};
use crate::property::{MutablePropertyMap, PropertyMap, VertexMap};
use crate::visit::DfsVisitor;

/// The graph passed to [`topological_sort`] contains a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleError;

/// Topological order of a DAG (DFS finish-time order, reversed).
/// `O(V + E)`. Errors on cyclic input — the precondition is checked, not
/// assumed, matching the paper's stance that semantic requirements should
/// be verified mechanically.
pub fn topological_sort<G>(g: &G) -> Result<Vec<Vertex>, CycleError>
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = crate::concepts::Edge>,
{
    #[derive(Default)]
    struct FinishOrder {
        order: Vec<Vertex>,
    }
    impl DfsVisitor for FinishOrder {
        fn finish_vertex(&mut self, v: Vertex) {
            self.order.push(v);
        }
    }
    let mut vis = FinishOrder::default();
    let r = dfs(g, &mut vis);
    if r.has_cycle {
        return Err(CycleError);
    }
    vis.order.reverse();
    Ok(vis.order)
}

/// Connected components of an *undirected* graph (one that exposes each
/// edge from both endpoints). Returns `(component_count, component_id map)`.
/// `O(V + E)`.
pub fn connected_components<G>(g: &G) -> (usize, VertexMap<u32>)
where
    G: IncidenceGraph + VertexListGraph,
{
    let n = g.num_vertices();
    let mut comp = VertexMap::new(n, u32::MAX);
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in g.vertices() {
        if *comp.get(s) != u32::MAX {
            continue;
        }
        comp.set(s, count);
        stack.push(s);
        while let Some(u) = stack.pop() {
            for e in g.out_edges(u) {
                let v = e.target();
                if *comp.get(v) == u32::MAX {
                    comp.set(v, count);
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;

    #[test]
    fn topological_order_respects_all_edges() {
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4)];
        let g = AdjacencyList::from_edges(5, &edges);
        let order = topological_sort(&g).unwrap();
        let pos: std::collections::HashMap<Vertex, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (u, v) in edges {
            assert!(pos[&u] < pos[&v], "edge ({u},{v}) violated");
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let g = AdjacencyList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(topological_sort(&g), Err(CycleError));
    }

    #[test]
    fn empty_and_edgeless_graphs_sort() {
        let g = AdjacencyList::directed(0);
        assert_eq!(topological_sort(&g).unwrap(), Vec::<Vertex>::new());
        let g = AdjacencyList::directed(3);
        assert_eq!(topological_sort(&g).unwrap().len(), 3);
    }

    #[test]
    fn components_are_counted_and_labeled() {
        let g = AdjacencyList::from_edges_undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let (count, comp) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp.get(0), comp.get(2));
        assert_eq!(comp.get(3), comp.get(4));
        assert_ne!(comp.get(0), comp.get(3));
        assert_ne!(comp.get(0), comp.get(5));
    }

    #[test]
    fn single_component_when_connected() {
        let g = AdjacencyList::from_edges_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let (count, _) = connected_components(&g);
        assert_eq!(count, 1);
    }
}
