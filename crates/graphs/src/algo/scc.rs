//! Strongly connected components (iterative Tarjan). Requirements:
//! Incidence Graph + Vertex List Graph. Complexity guarantee: `O(V + E)`.

use crate::concepts::{Edge, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph};
use crate::property::{MutablePropertyMap, PropertyMap, VertexMap};

/// SCC decomposition: component ids in **reverse topological order** of the
/// condensation (Tarjan's emission order), i.e. if there is an edge from
/// component `a` to component `b` (a ≠ b) then `a > b`.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Number of components.
    pub count: usize,
    /// Component id per vertex.
    pub component: VertexMap<u32>,
}

impl SccResult {
    /// Group vertices by component id.
    pub fn groups(&self) -> Vec<Vec<Vertex>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter() {
            out[c as usize].push(v);
        }
        out
    }
}

/// Tarjan's algorithm, iterative (no recursion depth limits).
pub fn strongly_connected_components<G>(g: &G) -> SccResult
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
{
    const UNSET: u32 = u32::MAX;
    let n = g.num_vertices();
    let mut index = VertexMap::new(n, UNSET);
    let mut lowlink = VertexMap::new(n, 0u32);
    let mut on_stack = vec![false; n];
    let mut component = VertexMap::new(n, UNSET);
    let mut stack: Vec<Vertex> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (vertex, out-edges, cursor position).
    let mut frames: Vec<(Vertex, Vec<Edge>, usize)> = Vec::new();

    for root in g.vertices() {
        if *index.get(root) != UNSET {
            continue;
        }
        index.set(root, next_index);
        lowlink.set(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, g.out_edges(root).collect(), 0));

        while let Some((v, edges, pos)) = frames.last_mut() {
            if *pos < edges.len() {
                let e = edges[*pos];
                *pos += 1;
                let w = e.target();
                if *index.get(w) == UNSET {
                    index.set(w, next_index);
                    lowlink.set(w, next_index);
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, g.out_edges(w).collect(), 0));
                } else if on_stack[w as usize] {
                    let low = (*lowlink.get(*v)).min(*index.get(w));
                    lowlink.set(*v, low);
                }
            } else {
                let v = *v;
                frames.pop();
                if let Some((parent, _, _)) = frames.last() {
                    let low = (*lowlink.get(*parent)).min(*lowlink.get(v));
                    lowlink.set(*parent, low);
                }
                if lowlink.get(v) == index.get(v) {
                    // v roots a component: pop it off the Tarjan stack.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        component.set(w, count);
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }

    SccResult {
        count: count as usize,
        component,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;

    #[test]
    fn classic_two_cycles_and_a_bridge() {
        // 0→1→2→0 (SCC A), 3→4→3 (SCC B), bridge 2→3, tail 4→5.
        let g =
            AdjacencyList::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 3);
        let c = &scc.component;
        assert_eq!(c.get(0), c.get(1));
        assert_eq!(c.get(1), c.get(2));
        assert_eq!(c.get(3), c.get(4));
        assert_ne!(c.get(0), c.get(3));
        assert_ne!(c.get(3), c.get(5));
        // Reverse topological order of the condensation: edges point from
        // higher component ids to lower.
        assert!(c.get(0) > c.get(3), "A→B means id(A) > id(B)");
        assert!(c.get(3) > c.get(5));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 4);
    }

    #[test]
    fn one_big_cycle_is_one_component() {
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = AdjacencyList::from_edges(n as usize, &edges);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.groups()[0].len(), n as usize);
    }

    #[test]
    fn deep_chain_is_iterative_safe() {
        let n = 100_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = AdjacencyList::from_edges(n as usize, &edges);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, n as usize);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let g = AdjacencyList::from_edges(2, &[(0, 0), (0, 1)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
    }

    #[test]
    fn condensation_agrees_with_cycle_detection() {
        use crate::algo::dfs::dfs;
        use crate::visit::NullVisitor;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // A graph has a cycle iff some SCC has size > 1 or a self-loop.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = 25u32;
            let m = rng.gen_range(10..60);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let g = AdjacencyList::from_edges(n as usize, &edges);
            let scc = strongly_connected_components(&g);
            let has_big = scc.groups().iter().any(|grp| grp.len() > 1);
            let has_self = edges.iter().any(|(u, v)| u == v);
            let dfs_cycle = dfs(&g, &mut NullVisitor).has_cycle;
            assert_eq!(has_big || has_self, dfs_cycle);
        }
    }
}
