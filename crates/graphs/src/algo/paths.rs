//! Shortest paths: Dijkstra (Incidence Graph + non-negative weights,
//! `O((V+E) log V)`) and Bellman–Ford (Edge List Graph, arbitrary weights,
//! `O(V·E)`, detects negative cycles).
//!
//! The pair is a taxonomy case study: same *problem* concept, different
//! *requirement* concepts (weight positivity, traversal order), different
//! complexity guarantees — exactly the distinctions the paper's algorithm
//! concept taxonomies exist to record.

use crate::concepts::{
    Edge, EdgeListGraph, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph,
};
use crate::heap::IndexedMinHeap;
use crate::property::{MutablePropertyMap, PropertyMap, VertexMap};

/// Single-source shortest-path tree.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Distance from the source (`f64::INFINITY` if unreachable).
    pub distance: VertexMap<f64>,
    /// Tree parent (`None` for the source / unreachable vertices).
    pub parent: VertexMap<Option<Vertex>>,
}

impl ShortestPaths {
    /// Reconstruct the path to `v` (source first); `None` if unreachable.
    pub fn path_to(&self, v: Vertex) -> Option<Vec<Vertex>> {
        if self.distance.get(v).is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = *self.parent.get(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra's algorithm. Precondition (a semantic concept requirement):
/// every weight is non-negative — violations panic in debug form via the
/// assertion below, mirroring the checker's entry handler.
pub fn dijkstra<G>(g: &G, source: Vertex, weight: impl Fn(Edge) -> f64) -> ShortestPaths
where
    G: IncidenceGraph + VertexListGraph + Graph<Edge = Edge>,
{
    let n = g.num_vertices();
    let mut dist = VertexMap::new(n, f64::INFINITY);
    let mut parent: VertexMap<Option<Vertex>> = VertexMap::new(n, None);
    let mut heap = IndexedMinHeap::new(n);
    let mut done = vec![false; n];

    dist.set(source, 0.0);
    heap.push(source, 0.0);

    while let Some((u, du)) = heap.pop() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        for e in g.out_edges(u) {
            let w = weight(e);
            assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let v = e.target();
            let nd = du + w;
            if nd < *dist.get(v) {
                dist.set(v, nd);
                parent.set(v, Some(u));
                heap.push_or_decrease(v, nd);
            }
        }
    }

    ShortestPaths {
        distance: dist,
        parent,
    }
}

/// Witness that the graph contains a negative-weight cycle reachable from
/// the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NegativeCycle;

/// Bellman–Ford. Handles negative weights; returns `Err(NegativeCycle)` if
/// a reachable negative cycle exists.
pub fn bellman_ford<G>(
    g: &G,
    source: Vertex,
    weight: impl Fn(Edge) -> f64,
) -> Result<ShortestPaths, NegativeCycle>
where
    G: EdgeListGraph + VertexListGraph + Graph<Edge = Edge>,
{
    let n = g.num_vertices();
    let mut dist = VertexMap::new(n, f64::INFINITY);
    let mut parent: VertexMap<Option<Vertex>> = VertexMap::new(n, None);
    dist.set(source, 0.0);

    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for e in g.edges() {
            let (u, v) = (e.source(), e.target());
            let du = *dist.get(u);
            if du.is_finite() && du + weight(e) < *dist.get(v) {
                dist.set(v, du + weight(e));
                parent.set(v, Some(u));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // One more relaxation round: any improvement implies a negative cycle.
    for e in g.edges() {
        let (u, v) = (e.source(), e.target());
        let du = *dist.get(u);
        if du.is_finite() && du + weight(e) < *dist.get(v) {
            return Err(NegativeCycle);
        }
    }

    Ok(ShortestPaths {
        distance: dist,
        parent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::property::EdgeMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn weighted_graph() -> (AdjacencyList, EdgeMap<f64>) {
        // Classic CLRS-style example.
        let mut g = AdjacencyList::directed(5);
        let mut w = Vec::new();
        for &(u, v, wt) in &[
            (0u32, 1u32, 10.0),
            (0, 3, 5.0),
            (1, 2, 1.0),
            (3, 1, 3.0),
            (3, 2, 9.0),
            (3, 4, 2.0),
            (4, 2, 6.0),
            (4, 0, 7.0),
            (1, 3, 2.0),
        ] {
            g.add_edge(u, v);
            w.push(wt);
        }
        (g, EdgeMap::from_values(w))
    }

    #[test]
    fn dijkstra_matches_known_distances() {
        let (g, w) = weighted_graph();
        let sp = dijkstra(&g, 0, |e| *w.get(e));
        let d = sp.distance.as_slice();
        assert_eq!(d, &[0.0, 8.0, 9.0, 5.0, 7.0]);
        assert_eq!(sp.path_to(2).unwrap(), vec![0, 3, 1, 2]);
    }

    #[test]
    fn bellman_ford_agrees_with_dijkstra_on_nonnegative() {
        let (g, w) = weighted_graph();
        let a = dijkstra(&g, 0, |e| *w.get(e));
        let b = bellman_ford(&g, 0, |e| *w.get(e)).unwrap();
        assert_eq!(a.distance.as_slice(), b.distance.as_slice());
    }

    #[test]
    fn bellman_ford_handles_negative_edges() {
        let mut g = AdjacencyList::directed(4);
        let mut w = Vec::new();
        for &(u, v, wt) in &[(0u32, 1u32, 4.0), (0, 2, 3.0), (2, 1, -2.0), (1, 3, 1.0)] {
            g.add_edge(u, v);
            w.push(wt);
        }
        let wm = EdgeMap::from_values(w);
        let sp = bellman_ford(&g, 0, |e| *wm.get(e)).unwrap();
        assert_eq!(*sp.distance.get(1), 1.0); // via 0→2→1
        assert_eq!(*sp.distance.get(3), 2.0);
    }

    #[test]
    fn negative_cycle_is_detected() {
        let mut g = AdjacencyList::directed(3);
        let mut w = Vec::new();
        for &(u, v, wt) in &[(0u32, 1u32, 1.0), (1, 2, -3.0), (2, 1, 1.0)] {
            g.add_edge(u, v);
            w.push(wt);
        }
        let wm = EdgeMap::from_values(w);
        assert!(matches!(
            bellman_ford(&g, 0, |e| *wm.get(e)),
            Err(NegativeCycle)
        ));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn dijkstra_rejects_negative_weights() {
        let g = AdjacencyList::from_edges(2, &[(0, 1)]);
        dijkstra(&g, 0, |_| -1.0);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = AdjacencyList::from_edges(3, &[(0, 1)]);
        let sp = dijkstra(&g, 0, |_| 1.0);
        assert!(sp.distance.get(2).is_infinite());
        assert!(sp.path_to(2).is_none());
    }

    #[test]
    fn random_graphs_dijkstra_equals_bellman_ford() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let n = 30;
            let mut g = AdjacencyList::directed(n);
            let mut w = Vec::new();
            for _ in 0..120 {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                g.add_edge(u, v);
                w.push(rng.gen_range(0.0..10.0));
            }
            let wm = EdgeMap::from_values(w);
            let a = dijkstra(&g, 0, |e| *wm.get(e));
            let b = bellman_ford(&g, 0, |e| *wm.get(e)).unwrap();
            for (x, y) in a.distance.as_slice().iter().zip(b.distance.as_slice()) {
                assert!((x - y).abs() < 1e-9 || (x.is_infinite() && y.is_infinite()));
            }
        }
    }
}
