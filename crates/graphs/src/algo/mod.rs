//! Concept-generic graph algorithms.
//!
//! Every algorithm here is written against the concept traits of
//! [`crate::concepts`] (never against a concrete representation), carries
//! its complexity guarantee in its doc comment, and appears in the
//! `gp-taxonomy` graph-algorithm taxonomy with that guarantee.

mod bfs;
mod dfs;
mod mst;
mod parallel;
mod paths;
mod scc;
mod structure;

pub use bfs::{bfs, bfs_distances, BfsResult};
pub use dfs::{dfs, dfs_from, DfsResult};
pub use mst::{kruskal_mst, prim_mst, MstResult};
pub use parallel::{
    out_degrees, par_bfs_distances, par_out_degrees, par_triangle_count, triangle_count,
};
pub use paths::{bellman_ford, dijkstra, NegativeCycle, ShortestPaths};
pub use scc::{strongly_connected_components, SccResult};
pub use structure::{connected_components, topological_sort, CycleError};
