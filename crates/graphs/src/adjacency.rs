//! Mutable adjacency-list graph (directed or undirected).

use crate::concepts::{
    AdjacencyGraph, Edge, EdgeListGraph, Graph, IncidenceGraph, Vertex, VertexListGraph,
};

/// Edge directedness of an [`AdjacencyList`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directedness {
    /// Each added edge appears in one out-edge list.
    Directed,
    /// Each added edge appears in both endpoints' out-edge lists (with the
    /// same edge id, so property maps see one logical edge).
    Undirected,
}

#[derive(Clone, Copy, Debug)]
struct OutRecord {
    target: Vertex,
    id: u32,
}

/// An adjacency-list graph: per-vertex out-edge vectors, dense vertex and
/// edge ids. Models Incidence/VertexList/EdgeList/Adjacency Graph.
#[derive(Clone, Debug)]
pub struct AdjacencyList {
    out: Vec<Vec<OutRecord>>,
    /// Canonical endpoints per edge id (as added).
    edge_endpoints: Vec<(Vertex, Vertex)>,
    directedness: Directedness,
}

impl AdjacencyList {
    /// An empty graph with `n` vertices.
    pub fn new(n: usize, directedness: Directedness) -> Self {
        AdjacencyList {
            out: vec![Vec::new(); n],
            edge_endpoints: Vec::new(),
            directedness,
        }
    }

    /// Convenience: directed graph with `n` vertices.
    pub fn directed(n: usize) -> Self {
        AdjacencyList::new(n, Directedness::Directed)
    }

    /// Convenience: undirected graph with `n` vertices.
    pub fn undirected(n: usize) -> Self {
        AdjacencyList::new(n, Directedness::Undirected)
    }

    /// Build a directed graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = AdjacencyList::directed(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Build an undirected graph from an edge list.
    pub fn from_edges_undirected(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = AdjacencyList::undirected(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Add a vertex; returns its descriptor.
    pub fn add_vertex(&mut self) -> Vertex {
        self.out.push(Vec::new());
        (self.out.len() - 1) as Vertex
    }

    /// Add an edge; returns its dense id. For undirected graphs the edge is
    /// visible from both endpoints under the same id.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> u32 {
        assert!((u as usize) < self.out.len(), "source vertex out of range");
        assert!((v as usize) < self.out.len(), "target vertex out of range");
        let id = self.edge_endpoints.len() as u32;
        self.edge_endpoints.push((u, v));
        self.out[u as usize].push(OutRecord { target: v, id });
        if self.directedness == Directedness::Undirected && u != v {
            self.out[v as usize].push(OutRecord { target: u, id });
        }
        id
    }

    /// The graph's directedness.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// Endpoints of edge `id` as added.
    pub fn endpoints(&self, id: u32) -> (Vertex, Vertex) {
        self.edge_endpoints[id as usize]
    }
}

impl Graph for AdjacencyList {
    type Edge = Edge;
}

impl IncidenceGraph for AdjacencyList {
    fn out_edges(&self, v: Vertex) -> impl Iterator<Item = Edge> + '_ {
        self.out[v as usize].iter().map(move |r| Edge {
            source: v,
            target: r.target,
            id: r.id,
        })
    }

    fn out_degree(&self, v: Vertex) -> usize {
        self.out[v as usize].len()
    }
}

impl VertexListGraph for AdjacencyList {
    fn num_vertices(&self) -> usize {
        self.out.len()
    }

    fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.out.len() as Vertex
    }
}

impl EdgeListGraph for AdjacencyList {
    fn num_edges(&self) -> usize {
        self.edge_endpoints.len()
    }

    fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edge_endpoints
            .iter()
            .enumerate()
            .map(|(id, &(u, v))| Edge {
                source: u,
                target: v,
                id: id as u32,
            })
    }
}

impl AdjacencyGraph for AdjacencyList {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::GraphEdge;

    #[test]
    fn directed_graph_incidence() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 0);
        let targets: Vec<Vertex> = g.out_edges(0).map(|e| e.target()).collect();
        assert_eq!(targets, vec![1, 2]);
        // Fig. 1 operations through the concept interface.
        let e = g.out_edges(2).next().unwrap();
        assert_eq!((e.source(), e.target()), (2, 3));
    }

    #[test]
    fn undirected_edges_visible_from_both_sides_same_id() {
        let g = AdjacencyList::from_edges_undirected(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(1), 2);
        let from0: Vec<u32> = g.out_edges(0).map(|e| e.id).collect();
        let from1: Vec<u32> = g.out_edges(1).map(|e| e.id).collect();
        assert_eq!(from0, vec![0]);
        assert!(from1.contains(&0) && from1.contains(&1));
    }

    #[test]
    fn adjacency_graph_default_derives_from_incidence() {
        let g = AdjacencyList::from_edges(3, &[(0, 1), (0, 2)]);
        let n: Vec<Vertex> = g.adjacent_vertices(0).collect();
        assert_eq!(n, vec![1, 2]);
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = AdjacencyList::directed(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.add_edge(0, 1);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn self_loop_in_undirected_graph_counted_once() {
        let g = AdjacencyList::from_edges_undirected(2, &[(0, 0)]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = AdjacencyList::directed(2);
        g.add_edge(0, 5);
    }
}
