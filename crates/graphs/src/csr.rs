//! Immutable compressed-sparse-row graph storage.
//!
//! The high-performance representation: one offsets array, one targets
//! array, cache-friendly out-edge scans. Because the algorithms are written
//! against the Incidence Graph concept, they run unchanged on this
//! representation — the paper's generality-without-performance-loss claim
//! in miniature (the `bench/graph_reps` bench compares the two).

use crate::concepts::{
    AdjacencyGraph, Edge, EdgeListGraph, Graph, IncidenceGraph, Vertex, VertexListGraph,
};

/// A compressed-sparse-row directed graph. Build once from an edge list;
/// edge ids are positions in the sorted targets array.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<Vertex>,
}

impl CsrGraph {
    /// Build from a directed edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, _) in edges {
            assert!((u as usize) < n, "source vertex out of range");
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0 as Vertex; edges.len()];
        let mut next = offsets.clone();
        for &(u, v) in edges {
            assert!((v as usize) < n, "target vertex out of range");
            targets[next[u as usize] as usize] = v;
            next[u as usize] += 1;
        }
        CsrGraph { offsets, targets }
    }

    /// Out-neighbors of `v` as a contiguous slice (the representation's
    /// whole point).
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }
}

impl Graph for CsrGraph {
    type Edge = Edge;
}

impl IncidenceGraph for CsrGraph {
    fn out_edges(&self, v: Vertex) -> impl Iterator<Item = Edge> + '_ {
        let lo = self.offsets[v as usize];
        self.neighbors(v)
            .iter()
            .enumerate()
            .map(move |(k, &t)| Edge {
                source: v,
                target: t,
                id: lo + k as u32,
            })
    }

    fn out_degree(&self, v: Vertex) -> usize {
        self.neighbors(v).len()
    }
}

impl VertexListGraph for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..(self.offsets.len() - 1) as Vertex
    }
}

impl EdgeListGraph for CsrGraph {
    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |v| self.out_edges(v))
    }
}

impl AdjacencyGraph for CsrGraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyList;
    use crate::concepts::GraphEdge;

    #[test]
    fn csr_matches_adjacency_list_structure() {
        let edges = [(0, 1), (0, 2), (1, 2), (3, 0), (2, 3)];
        let adj = AdjacencyList::from_edges(4, &edges);
        let csr = CsrGraph::from_edges(4, &edges);
        assert_eq!(adj.num_vertices(), csr.num_vertices());
        assert_eq!(adj.num_edges(), csr.num_edges());
        for v in csr.vertices() {
            let mut a: Vec<Vertex> = adj.out_edges(v).map(|e| e.target()).collect();
            let mut c: Vec<Vertex> = csr.out_edges(v).map(|e| e.target()).collect();
            a.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, c, "v={v}");
        }
    }

    #[test]
    fn edge_ids_are_dense_and_unique() {
        let csr = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut ids: Vec<u32> = csr.edges().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn neighbors_slice_is_contiguous() {
        let csr = CsrGraph::from_edges(3, &[(1, 0), (1, 2)]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert!(csr.neighbors(0).is_empty());
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_edges(0, &[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
