//! # gp-graphs — generic graph library (BGL analog)
//!
//! The graph substrate of the reproduction. The concept vocabulary is the
//! paper's Figs. 1–2 — **Graph Edge** (associated `vertex_type`, `source`,
//! `target`) and **Incidence Graph** (associated `vertex_type`, `edge_type`,
//! `out_edge_iterator`, with the same-type constraints between them) — plus
//! the usual BGL companions (VertexListGraph, EdgeListGraph,
//! AdjacencyGraph). Algorithms are written against the concepts, so the
//! same BFS/DFS/Dijkstra source serves every representation.
//!
//! Modules:
//!
//! * [`concepts`] — the concept traits and their reflective registration.
//! * [`adjacency`] — [`adjacency::AdjacencyList`]: mutable, directed or
//!   undirected.
//! * [`csr`] — [`csr::CsrGraph`]: immutable compressed-sparse-row storage.
//! * [`property`] — vertex/edge property maps (the BGL property-map layer).
//! * [`visit`] — BFS/DFS visitor concepts (event-point customization).
//! * [`heap`] — indexed binary min-heap with decrease-key (Dijkstra's
//!   substrate).
//! * [`unionfind`] — disjoint sets with union by rank + path compression
//!   (Kruskal's substrate).
//! * [`algo`] — BFS, DFS, topological sort, connected components,
//!   strongly connected components (Tarjan), Dijkstra, Bellman–Ford,
//!   Kruskal, Prim.
//! * [`generators`] — deterministic random/layered graph workloads.

pub mod adjacency;
pub mod algo;
pub mod concepts;
pub mod csr;
pub mod generators;
pub mod heap;
pub mod property;
pub mod unionfind;
pub mod visit;

pub use adjacency::AdjacencyList;
pub use concepts::{
    AdjacencyGraph, Edge, EdgeListGraph, Graph, GraphEdge, IncidenceGraph, Vertex, VertexListGraph,
};
pub use csr::CsrGraph;
