//! Graph concepts (paper Figs. 1 and 2) as traits, plus their reflective
//! registration for the concept registry.
//!
//! The trait encoding uses return-position `impl Trait` for the associated
//! iterator requirements: `out_edges(v, g) -> out_edge_iterator` with the
//! Fig. 2 same-type constraint `out_edge_iterator::value_type == edge_type`
//! appearing as the `Item = Self::Edge` bound.

use gp_core::concept::{Concept, ConceptRef, ModelDecl, Registry, TypeExpr};

/// Vertex descriptor. Fixed to a compact integer (BGL's `vecS` vertex
/// storage); representation genericity lives in the graph types instead.
pub type Vertex = u32;

/// The **Graph Edge** concept (Fig. 1): an edge knows its endpoints through
/// the associated vertex type.
pub trait GraphEdge {
    /// `Edge::vertex_type` of Fig. 1.
    type Vertex;

    /// `source(e)`.
    fn source(&self) -> Self::Vertex;

    /// `target(e)`.
    fn target(&self) -> Self::Vertex;
}

/// An edge descriptor carrying its endpoints and a dense edge index
/// (the key into edge property maps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source vertex.
    pub source: Vertex,
    /// Target vertex.
    pub target: Vertex,
    /// Dense edge id (stable across traversals).
    pub id: u32,
}

impl GraphEdge for Edge {
    type Vertex = Vertex;

    fn source(&self) -> Vertex {
        self.source
    }

    fn target(&self) -> Vertex {
        self.target
    }
}

/// Base graph concept: fixes the edge type (which must model Graph Edge on
/// the same vertex type — the Fig. 2 constraint `Vertex == Edge::Vertex`).
pub trait Graph {
    /// The `edge_type` associated type.
    type Edge: GraphEdge<Vertex = Vertex> + Copy;
}

/// The **Incidence Graph** concept (Fig. 2): out-edge traversal.
pub trait IncidenceGraph: Graph {
    /// `out_edges(v, g)`. The iterator's item type is the graph's edge type
    /// — the `out_edge_iterator::value_type == edge_type` same-type
    /// constraint of Fig. 2.
    fn out_edges(&self, v: Vertex) -> impl Iterator<Item = Self::Edge> + '_;

    /// `out_degree(v, g)`.
    fn out_degree(&self, v: Vertex) -> usize;
}

/// Vertex enumeration concept.
pub trait VertexListGraph: Graph {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Iterate all vertex descriptors.
    fn vertices(&self) -> impl Iterator<Item = Vertex> + '_;
}

/// Edge enumeration concept.
pub trait EdgeListGraph: Graph {
    /// Number of edges.
    fn num_edges(&self) -> usize;

    /// Iterate all edge descriptors.
    fn edges(&self) -> impl Iterator<Item = Self::Edge> + '_;
}

/// Adjacency (neighbor) enumeration concept — derivable from
/// [`IncidenceGraph`] but a distinct concept in the taxonomy.
pub trait AdjacencyGraph: IncidenceGraph {
    /// Iterate the out-neighbors of `v`.
    fn adjacent_vertices(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.out_edges(v).map(|e| e.target())
    }
}

/// Register the Figs. 1–2 concepts in a reflective registry (the exact
/// tables of the paper, including the same-type constraints), and the
/// standard refinements.
pub fn define_graph_concepts(reg: &mut Registry) {
    reg.define(Concept::new("Iterator", ["I"]).assoc("value_type").op(
        "next",
        vec![TypeExpr::param("I")],
        TypeExpr::assoc(TypeExpr::param("I"), "value_type"),
    ))
    .expect("fresh registry");
    reg.define(
        Concept::new("GraphEdge", ["Edge"])
            .assoc("vertex_type")
            .op(
                "source",
                vec![TypeExpr::param("Edge")],
                TypeExpr::assoc(TypeExpr::param("Edge"), "vertex_type"),
            )
            .op(
                "target",
                vec![TypeExpr::param("Edge")],
                TypeExpr::assoc(TypeExpr::param("Edge"), "vertex_type"),
            ),
    )
    .expect("fresh registry");
    reg.define(
        Concept::new("IncidenceGraph", ["Graph"])
            .assoc("vertex_type")
            .assoc_bounded(
                "edge_type",
                vec![ConceptRef::new(
                    "GraphEdge",
                    vec![TypeExpr::assoc(TypeExpr::param("Graph"), "edge_type")],
                )],
            )
            .assoc_bounded(
                "out_edge_iterator",
                vec![ConceptRef::new(
                    "Iterator",
                    vec![TypeExpr::assoc(
                        TypeExpr::param("Graph"),
                        "out_edge_iterator",
                    )],
                )],
            )
            .same(
                TypeExpr::assoc(TypeExpr::param("Graph"), "vertex_type"),
                TypeExpr::assoc(
                    TypeExpr::assoc(TypeExpr::param("Graph"), "edge_type"),
                    "vertex_type",
                ),
            )
            .same(
                TypeExpr::assoc(
                    TypeExpr::assoc(TypeExpr::param("Graph"), "out_edge_iterator"),
                    "value_type",
                ),
                TypeExpr::assoc(TypeExpr::param("Graph"), "edge_type"),
            )
            .op(
                "out_edges",
                vec![
                    TypeExpr::assoc(TypeExpr::param("Graph"), "vertex_type"),
                    TypeExpr::param("Graph"),
                ],
                TypeExpr::assoc(TypeExpr::param("Graph"), "out_edge_iterator"),
            )
            .op(
                "out_degree",
                vec![
                    TypeExpr::assoc(TypeExpr::param("Graph"), "vertex_type"),
                    TypeExpr::param("Graph"),
                ],
                TypeExpr::named("usize"),
            ),
    )
    .expect("fresh registry");
    reg.define(
        Concept::new("VertexListGraph", ["Graph"])
            .assoc("vertex_type")
            .op(
                "vertices",
                vec![TypeExpr::param("Graph")],
                TypeExpr::named("VertexIter"),
            )
            .op(
                "num_vertices",
                vec![TypeExpr::param("Graph")],
                TypeExpr::named("usize"),
            ),
    )
    .expect("fresh registry");
    reg.define(
        Concept::new("EdgeListGraph", ["Graph"])
            .assoc("vertex_type")
            .op(
                "edges",
                vec![TypeExpr::param("Graph")],
                TypeExpr::named("EdgeIter"),
            )
            .op(
                "num_edges",
                vec![TypeExpr::param("Graph")],
                TypeExpr::named("usize"),
            ),
    )
    .expect("fresh registry");
    reg.define(
        Concept::new("AdjacencyGraph", ["Graph"])
            .refines(ConceptRef::unary("IncidenceGraph", "Graph"))
            .op(
                "adjacent_vertices",
                vec![
                    TypeExpr::assoc(TypeExpr::param("Graph"), "vertex_type"),
                    TypeExpr::param("Graph"),
                ],
                TypeExpr::named("VertexIter"),
            ),
    )
    .expect("fresh registry");
}

/// Declare the models for this crate's graph types (mirrors the trait
/// impls; lets the experiment binaries resolve overloads reflectively).
pub fn declare_graph_models(reg: &mut Registry) {
    reg.declare_model(
        ModelDecl::new("GraphEdge", ["Edge"])
            .bind("vertex_type", "u32")
            .provide_all(["source", "target"]),
    )
    .expect("Edge models GraphEdge");
    for g in ["AdjacencyList", "CsrGraph"] {
        reg.declare_model(
            ModelDecl::new("Iterator", [format!("{g}OutEdgeIter")])
                .bind("value_type", "Edge")
                .provide("next"),
        )
        .expect("out-edge iterators model Iterator");
        reg.declare_model(
            ModelDecl::new("IncidenceGraph", [g])
                .bind("vertex_type", "u32")
                .bind("edge_type", "Edge")
                .bind("out_edge_iterator", format!("{g}OutEdgeIter"))
                .provide_all(["out_edges", "out_degree"]),
        )
        .expect("graphs model IncidenceGraph");
        reg.declare_model(
            ModelDecl::new("VertexListGraph", [g])
                .bind("vertex_type", "u32")
                .provide_all(["vertices", "num_vertices"]),
        )
        .expect("graphs model VertexListGraph");
        reg.declare_model(
            ModelDecl::new("EdgeListGraph", [g])
                .bind("vertex_type", "u32")
                .provide_all(["edges", "num_edges"]),
        )
        .expect("graphs model EdgeListGraph");
        reg.declare_model(
            ModelDecl::new("AdjacencyGraph", [g])
                .bind("vertex_type", "u32")
                .provide("adjacent_vertices"),
        )
        .expect("graphs model AdjacencyGraph");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_models_graph_edge_statically() {
        let e = Edge {
            source: 1,
            target: 2,
            id: 0,
        };
        assert_eq!(e.source(), 1);
        assert_eq!(e.target(), 2);
    }

    #[test]
    fn reflective_registration_checks() {
        let mut reg = Registry::new();
        define_graph_concepts(&mut reg);
        declare_graph_models(&mut reg);
        assert!(reg.models_concept("IncidenceGraph", &["AdjacencyList"]));
        assert!(reg.models_concept("IncidenceGraph", &["CsrGraph"]));
        // AdjacencyGraph refines IncidenceGraph.
        assert!(reg.refines("AdjacencyGraph", "IncidenceGraph"));
    }

    #[test]
    fn fig2_same_type_constraints_are_enforced() {
        let mut reg = Registry::new();
        define_graph_concepts(&mut reg);
        // A bogus graph whose out_edge_iterator yields the wrong value type.
        reg.declare_model(
            ModelDecl::new("GraphEdge", ["Edge"])
                .bind("vertex_type", "u32")
                .provide_all(["source", "target"]),
        )
        .unwrap();
        reg.declare_model(
            ModelDecl::new("Iterator", ["WrongIter"])
                .bind("value_type", "u32") // should be Edge
                .provide("next"),
        )
        .unwrap();
        let err = reg
            .declare_model(
                ModelDecl::new("IncidenceGraph", ["BogusGraph"])
                    .bind("vertex_type", "u32")
                    .bind("edge_type", "Edge")
                    .bind("out_edge_iterator", "WrongIter")
                    .provide_all(["out_edges", "out_degree"]),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            gp_core::concept::ConceptError::SameTypeViolation { .. }
        ));
    }
}
