//! Indexed binary min-heap with decrease-key — Dijkstra's and Prim's
//! priority-queue substrate, built from scratch.

/// A binary min-heap over `(key, item)` pairs where `item` is a dense index
/// in `0..capacity`, supporting `O(log n)` decrease-key via a position map.
#[derive(Clone, Debug)]
pub struct IndexedMinHeap {
    /// Heap array of item indices.
    heap: Vec<u32>,
    /// `pos[item]` = index of item in `heap`, or `NONE`.
    pos: Vec<u32>,
    /// Current key of each item.
    keys: Vec<f64>,
}

const NONE: u32 = u32::MAX;

impl IndexedMinHeap {
    /// An empty heap over items `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedMinHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![NONE; capacity],
            keys: vec![f64::INFINITY; capacity],
        }
    }

    /// Number of items in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True if `item` is currently in the heap.
    pub fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != NONE
    }

    /// Current key of `item` (meaningful only if inserted at some point).
    pub fn key(&self, item: u32) -> f64 {
        self.keys[item as usize]
    }

    /// Insert `item` with `key`. Panics if already present.
    pub fn push(&mut self, item: u32, key: f64) {
        assert!(!self.contains(item), "item already in heap");
        self.keys[item as usize] = key;
        self.pos[item as usize] = self.heap.len() as u32;
        self.heap.push(item);
        self.sift_up(self.heap.len() - 1);
    }

    /// Lower `item`'s key. Panics if absent or if the new key is larger.
    pub fn decrease_key(&mut self, item: u32, key: f64) {
        assert!(self.contains(item), "item not in heap");
        assert!(
            key <= self.keys[item as usize],
            "decrease_key must not increase the key"
        );
        self.keys[item as usize] = key;
        self.sift_up(self.pos[item as usize] as usize);
    }

    /// Insert or decrease, whichever applies; returns true if it changed
    /// anything.
    pub fn push_or_decrease(&mut self, item: u32, key: f64) -> bool {
        if self.contains(item) {
            if key < self.keys[item as usize] {
                self.decrease_key(item, key);
                true
            } else {
                false
            }
        } else {
            self.push(item, key);
            true
        }
    }

    /// Remove and return the minimum `(item, key)`.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some((top, self.keys[top as usize]))
    }

    fn less(&self, a: usize, b: usize) -> bool {
        self.keys[self.heap[a] as usize] < self.keys[self.heap[b] as usize]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut smallest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && self.less(child, smallest) {
                    smallest = child;
                }
            }
            if smallest == i {
                return;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_key_order() {
        let mut h = IndexedMinHeap::new(5);
        h.push(0, 3.0);
        h.push(1, 1.0);
        h.push(2, 2.0);
        assert_eq!(h.pop(), Some((1, 1.0)));
        assert_eq!(h.pop(), Some((2, 2.0)));
        assert_eq!(h.pop(), Some((0, 3.0)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMinHeap::new(3);
        h.push(0, 10.0);
        h.push(1, 20.0);
        h.push(2, 30.0);
        h.decrease_key(2, 5.0);
        assert_eq!(h.pop(), Some((2, 5.0)));
        assert!(h.push_or_decrease(1, 1.0));
        assert!(!h.push_or_decrease(1, 50.0)); // would increase: ignored
        assert_eq!(h.pop(), Some((1, 1.0)));
    }

    #[test]
    fn random_stress_against_sorting() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200;
        let mut h = IndexedMinHeap::new(n);
        let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        for (i, &k) in keys.iter().enumerate() {
            h.push(i as u32, k);
        }
        // Random decreases.
        for _ in 0..100 {
            let i = rng.gen_range(0..n);
            let nk = keys[i] * rng.gen_range(0.1..1.0);
            h.decrease_key(i as u32, nk);
            keys[i] = nk;
        }
        let mut popped = Vec::new();
        while let Some((_, k)) = h.pop() {
            popped.push(k);
        }
        let mut expect = keys.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(popped.len(), n);
        for (a, b) in popped.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "already in heap")]
    fn double_push_panics() {
        let mut h = IndexedMinHeap::new(2);
        h.push(0, 1.0);
        h.push(0, 2.0);
    }
}
