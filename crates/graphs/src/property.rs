//! Property maps: external data attached to vertices and edges.
//!
//! The BGL property-map layer in miniature: algorithms take property maps
//! as parameters (weights, colors, distances) instead of baking data into
//! the graph representation — the associated-data counterpart of
//! concept-generic algorithms.

use crate::concepts::{Edge, Vertex};

/// Readable property map over keys `K`.
pub trait PropertyMap<K> {
    /// Stored value type.
    type Value;

    /// Read the property of `key`.
    fn get(&self, key: K) -> &Self::Value;
}

/// Writable property map.
pub trait MutablePropertyMap<K>: PropertyMap<K> {
    /// Write the property of `key`.
    fn set(&mut self, key: K, value: Self::Value);
}

/// Dense vertex-indexed storage.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexMap<T> {
    data: Vec<T>,
}

impl<T: Clone> VertexMap<T> {
    /// A map over `n` vertices, all set to `init`.
    pub fn new(n: usize, init: T) -> Self {
        VertexMap {
            data: vec![init; n],
        }
    }
}

impl<T> VertexMap<T> {
    /// Build from a generator.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> T) -> Self {
        VertexMap {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterate `(vertex, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, &T)> {
        self.data.iter().enumerate().map(|(i, v)| (i as Vertex, v))
    }

    /// Flat access to the stored values.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> PropertyMap<Vertex> for VertexMap<T> {
    type Value = T;

    fn get(&self, key: Vertex) -> &T {
        &self.data[key as usize]
    }
}

impl<T> MutablePropertyMap<Vertex> for VertexMap<T> {
    fn set(&mut self, key: Vertex, value: T) {
        self.data[key as usize] = value;
    }
}

/// Dense edge-id-indexed storage.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeMap<T> {
    data: Vec<T>,
}

impl<T: Clone> EdgeMap<T> {
    /// A map over `m` edges, all set to `init`.
    pub fn new(m: usize, init: T) -> Self {
        EdgeMap {
            data: vec![init; m],
        }
    }
}

impl<T> EdgeMap<T> {
    /// Build from per-edge values in edge-id order.
    pub fn from_values(values: Vec<T>) -> Self {
        EdgeMap { data: values }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<T> PropertyMap<Edge> for EdgeMap<T> {
    type Value = T;

    fn get(&self, key: Edge) -> &T {
        &self.data[key.id as usize]
    }
}

impl<T> MutablePropertyMap<Edge> for EdgeMap<T> {
    fn set(&mut self, key: Edge, value: T) {
        self.data[key.id as usize] = value;
    }
}

/// A weight function backed by a closure over edges — property-map-shaped
/// adapter for computed weights.
#[derive(Clone, Copy, Debug)]
pub struct FnWeight<F>(pub F);

impl<F: Fn(Edge) -> f64> FnWeight<F> {
    /// Evaluate the weight of an edge.
    pub fn weight(&self, e: Edge) -> f64 {
        (self.0)(e)
    }
}

/// Vertex colors used by the traversal algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Not yet discovered.
    White,
    /// Discovered, not finished.
    Gray,
    /// Finished.
    Black,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_map_get_set() {
        let mut m = VertexMap::new(3, 0i32);
        m.set(1, 42);
        assert_eq!(*m.get(1), 42);
        assert_eq!(*m.get(0), 0);
        assert_eq!(m.len(), 3);
        let pairs: Vec<(Vertex, i32)> = m.iter().map(|(v, x)| (v, *x)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 42), (2, 0)]);
    }

    #[test]
    fn edge_map_keyed_by_id() {
        let mut m = EdgeMap::new(2, 1.0f64);
        let e = Edge {
            source: 7,
            target: 9,
            id: 1,
        };
        m.set(e, 2.5);
        assert_eq!(*m.get(e), 2.5);
        // Same id, different (bogus) endpoints: still the same property.
        let e2 = Edge {
            source: 0,
            target: 0,
            id: 1,
        };
        assert_eq!(*m.get(e2), 2.5);
    }

    #[test]
    fn from_fn_and_from_values() {
        let m = VertexMap::from_fn(4, |i| i * i);
        assert_eq!(*m.get(3), 9);
        let em = EdgeMap::from_values(vec![10, 20]);
        assert_eq!(em.len(), 2);
    }
}
