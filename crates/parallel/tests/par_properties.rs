//! Property tests: every pooled data-parallel primitive agrees with its
//! sequential counterpart for every thread count — the §4 determinism
//! claim, checked over random inputs including empty, length-1, and
//! odd-length vectors.

use gp_core::algebra::{monoid_fold, AddOp, ConcatOp, MaxOp};
use gp_core::order::NaturalLess;
use gp_parallel::par::{par_map, par_map_static, par_reduce, par_scan, par_sort};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #[test]
    fn par_map_matches_sequential(v in prop::collection::vec(-10_000i64..10_000, 0..400)) {
        let expect: Vec<i64> = v.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for threads in THREADS {
            prop_assert_eq!(&par_map(&v, threads, |x| x.wrapping_mul(31) ^ 7), &expect);
            prop_assert_eq!(&par_map_static(&v, threads, |x| x.wrapping_mul(31) ^ 7), &expect);
        }
    }

    #[test]
    fn par_reduce_matches_sequential_fold(v in prop::collection::vec(-10_000i64..10_000, 0..400)) {
        let sum = monoid_fold(&AddOp, &v);
        let max = monoid_fold(&MaxOp, &v);
        for threads in THREADS {
            prop_assert_eq!(par_reduce(&v, threads, &AddOp), sum);
            prop_assert_eq!(par_reduce(&v, threads, &MaxOp), max);
        }
    }

    #[test]
    fn par_reduce_respects_non_commutative_monoids(v in prop::collection::vec(0u8..26, 0..200)) {
        // String concatenation is associative but NOT commutative: any
        // reordering (rather than re-association) of the combine would
        // scramble the letters. The tree reduction must preserve order.
        let words: Vec<String> = v.iter().map(|c| ((b'a' + c) as char).to_string()).collect();
        let expect = monoid_fold(&ConcatOp, &words);
        for threads in THREADS {
            prop_assert_eq!(&par_reduce(&words, threads, &ConcatOp), &expect);
        }
    }

    #[test]
    fn par_scan_matches_sequential_prefixes(v in prop::collection::vec(-10_000i64..10_000, 0..400)) {
        let mut acc = 0i64;
        let expect: Vec<i64> = v.iter().map(|x| { acc += x; acc }).collect();
        for threads in THREADS {
            prop_assert_eq!(&par_scan(&v, threads, &AddOp), &expect);
        }
    }

    #[test]
    fn par_scan_respects_non_commutative_monoids(v in prop::collection::vec(0u8..26, 0..120)) {
        let words: Vec<String> = v.iter().map(|c| ((b'a' + c) as char).to_string()).collect();
        let mut acc = String::new();
        let expect: Vec<String> = words.iter().map(|w| { acc.push_str(w); acc.clone() }).collect();
        for threads in THREADS {
            prop_assert_eq!(&par_scan(&words, threads, &ConcatOp), &expect);
        }
    }

    #[test]
    fn par_sort_matches_sequential_sort(v in prop::collection::vec(-10_000i64..10_000, 0..500)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        for threads in THREADS {
            let mut s = v.clone();
            par_sort(&mut s, threads, &NaturalLess);
            prop_assert_eq!(&s, &expect);
        }
    }
}
