//! Idle-behavior regression test for the work-stealing executor, driven
//! entirely through the telemetry counters (`pool.park` / `pool.unpark`).
//!
//! The seed pool's workers spun on their channel when idle; the PR 1
//! executor parks them on a condvar with a 1 ms timeout. This test pins
//! both halves of that contract:
//!
//! 1. an idle pool *parks* — the park counter keeps advancing while no
//!    work is queued (each timed-out condvar wait is one park), and
//! 2. a submit *wakes* a parked worker via notification rather than the
//!    timeout — the unpark counter (counted only for non-timed-out waits)
//!    advances when work arrives while workers are asleep.
//!
//! The counters are process-global and shared by every pool, so all
//! assertions are monotonic deltas (other tests can only push them up),
//! and the notification check retries: a worker mid-poll when `execute`
//! fires its notify loses the wakeup and times out instead, which is
//! legal — it just doesn't count as an unpark.

use gp_parallel::pool::ThreadPool;
use std::time::Duration;

#[test]
fn idle_workers_park_and_submits_unpark_them() {
    let pool = ThreadPool::new(4);

    // Warm the pool with a burst so every worker has run at least once.
    for _ in 0..64 {
        pool.execute(|| {
            std::hint::black_box(0u64);
        });
    }
    pool.wait_idle();

    // Phase 1: with the queue drained, workers must park rather than
    // spin. 50 ms of idle time at a 1 ms park timeout gives each of the
    // 4 workers dozens of park cycles; require a handful.
    let before = gp_telemetry::snapshot();
    std::thread::sleep(Duration::from_millis(50));
    let parks = gp_telemetry::snapshot().delta(&before).counter("pool.park");
    assert!(
        parks >= 4,
        "idle workers should park on the sleep condvar (saw {parks} parks in 50ms)"
    );

    // Phase 2: a submit while workers are parked must wake one by
    // notification (unpark counts only waits that did NOT time out).
    // Retried because the notify can race a worker that is between its
    // last poll and the condvar wait.
    let before = gp_telemetry::snapshot();
    let mut unparks = 0;
    for _ in 0..50 {
        // Let the workers reach the parked state, then hand them work.
        std::thread::sleep(Duration::from_millis(5));
        for _ in 0..8 {
            pool.execute(|| {
                std::hint::black_box(0u64);
            });
        }
        pool.wait_idle();
        unparks = gp_telemetry::snapshot()
            .delta(&before)
            .counter("pool.unpark");
        if unparks > 0 {
            break;
        }
    }
    assert!(
        unparks > 0,
        "a submit into a parked pool should end a wait by notification, not timeout"
    );
}
