//! # gp-parallel — a concept-constrained data-parallel library
//!
//! Reproduction of the paper's §4 program: "our concept-based library
//! approach leverages the capabilities of a mainstream base language …
//! while concentrating the desired new functionality into library modules.
//! … The programmer still thinks and programs in parallel, but more
//! abstractly."
//!
//! The concept discipline is what makes the parallelism *correct*:
//!
//! * [`par::par_reduce`] and [`par::par_scan`] demand a
//!   [`gp_core::algebra::Monoid`] witness — tree reduction reorders the
//!   combination, so **associativity is a semantic precondition**, and the
//!   identity element makes empty chunks harmless. The unchecked variant
//!   ([`par::par_reduce_unchecked`]) exists only to demonstrate (tests,
//!   ablation bench) what goes wrong when the concept requirement is
//!   ignored.
//! * [`par::par_sort`] demands a [`gp_core::order::StrictWeakOrder`] —
//!   the same Fig. 6 obligation as the sequential sorts, checked by the
//!   same axioms and proofs.
//!
//! Modules: [`pool`] (a work-stealing executor: per-worker LIFO deques, a
//! global injector, rayon-style [`pool::ThreadPool::join`], panic-safe
//! jobs), [`par`] (data-parallel primitives — map, reduce, scan, sort,
//! for-each — on the lazily initialized global pool via recursive
//! adaptive splitting), [`spawn`] (the seed's spawn-per-call baseline,
//! kept for benchmarks), [`dist`] (a block-distributed vector built on
//! the pooled primitives).

pub mod dist;
pub mod par;
pub mod pool;
pub mod spawn;

pub use dist::BlockVec;
pub use pool::ThreadPool;
