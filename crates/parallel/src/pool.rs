//! A from-scratch job-queue thread pool (crossbeam channel + condvar
//! idle-tracking). Used for task parallelism; the slice primitives in
//! [`crate::par`] use scoped threads instead so they can borrow.

use crossbeam::channel::{unbounded, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Pending {
    count: Mutex<usize>,
    zero: Condvar,
}

/// A fixed-size worker pool executing boxed jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    pending: Arc<Pending>,
}

impl ThreadPool {
    /// Spawn `n` workers (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let pending = Arc::new(Pending::default());
        let workers = (0..n)
            .map(|i| {
                let rx = receiver.clone();
                let pending = pending.clone();
                std::thread::Builder::new()
                    .name(format!("gp-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut c = pending.count.lock().expect("pool lock");
                            *c -= 1;
                            if *c == 0 {
                                pending.zero.notify_all();
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            pending,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut c = self.pending.count.lock().expect("pool lock");
            *c += 1;
        }
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut c = self.pending.count.lock().expect("pool lock");
        while *c > 0 {
            c = self.pending.zero.wait(c).expect("pool lock");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_idle_on_fresh_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn jobs_run_concurrently() {
        // With 4 workers, 4 jobs that each wait for the others must finish
        // (they would deadlock on a single thread).
        use std::sync::Barrier;
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(Barrier::new(4));
        for _ in 0..4 {
            let b = barrier.clone();
            pool.execute(move || {
                b.wait();
            });
        }
        pool.wait_idle();
    }
}
