//! A work-stealing executor: per-worker LIFO deques with a global FIFO
//! injector, an atomic pending counter (no mutex on the job hot path),
//! panic-safe job execution, and a blocking [`ThreadPool::join`] primitive
//! that lets callers recursively split work rayon-style while *helping*
//! run queued jobs instead of blocking a thread.
//!
//! This replaces the seed's single-channel pool, whose two costs the E11
//! experiment measures: every `par_*` call paid thread spawn/teardown, and
//! a panicking job killed its worker with the pending count stranded above
//! zero, deadlocking [`ThreadPool::wait_idle`]. Here jobs run under
//! `catch_unwind` with the decrement in the return path regardless of
//! outcome, and the executor is a process-wide singleton ([`global`])
//! reused by every data-parallel primitive.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use gp_telemetry::Counter;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Telemetry handles for the executor, resolved once per pool (name
/// lookup takes the registry lock; the increments themselves are relaxed
/// atomics). All pools share the same global counters — the registry
/// observes the process-wide executor layer, not one pool instance.
struct PoolMetrics {
    /// Jobs executed per worker, indexed by worker id
    /// (`pool.worker{i}.jobs`).
    worker_jobs: Vec<&'static Counter>,
    /// Jobs found in the worker's own LIFO deque.
    local_pop: &'static Counter,
    /// Jobs taken from the global FIFO injector.
    injector_pop: &'static Counter,
    /// Jobs stolen from a sibling worker's deque.
    steal_hit: &'static Counter,
    /// `Steal::Retry` collisions observed while stealing.
    steal_retry: &'static Counter,
    /// Times a worker parked on the sleep condvar.
    park: &'static Counter,
    /// Parked waits ended by a submit-side notification (as opposed to
    /// the parking timeout).
    unpark: &'static Counter,
    /// Jobs submitted to the current worker's own deque.
    submit_local: &'static Counter,
    /// Jobs submitted to the global injector.
    submit_injector: &'static Counter,
    /// `join` calls.
    joins: &'static Counter,
    /// Iterations of the join help loop (each either runs a stolen job or
    /// backs off).
    join_help_iters: &'static Counter,
    /// Jobs executed inside the help loop rather than by a worker.
    help_jobs: &'static Counter,
    /// Jobs whose closure panicked (mirrors `Shared::panicked`).
    panics: &'static Counter,
}

impl PoolMetrics {
    fn new(workers: usize) -> Self {
        let reg = gp_telemetry::global();
        PoolMetrics {
            worker_jobs: (0..workers)
                .map(|i| reg.counter(&format!("pool.worker{i}.jobs")))
                .collect(),
            local_pop: reg.counter("pool.local_pop"),
            injector_pop: reg.counter("pool.injector_pop"),
            steal_hit: reg.counter("pool.steal_hit"),
            steal_retry: reg.counter("pool.steal_retry"),
            park: reg.counter("pool.park"),
            unpark: reg.counter("pool.unpark"),
            submit_local: reg.counter("pool.submit_local"),
            submit_injector: reg.counter("pool.submit_injector"),
            joins: reg.counter("pool.joins"),
            join_help_iters: reg.counter("pool.join_help_iters"),
            help_jobs: reg.counter("pool.help_jobs"),
            panics: reg.counter("pool.panicked_jobs"),
        }
    }

    /// The per-worker jobs counter, shared `pool.helper` slot for jobs run
    /// by non-worker threads inside `help_until`.
    fn jobs_of(&self, index: usize) -> &'static Counter {
        self.worker_jobs
            .get(index)
            .copied()
            .unwrap_or(self.help_jobs)
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Jobs submitted but not yet finished. Incremented on submit,
    /// decremented after the job runs (or panics) — the only hot-path
    /// synchronization; the mutexes below are touched only to park/wake.
    pending: AtomicUsize,
    /// Jobs whose closure panicked (the panic is contained; the pool
    /// keeps running and `wait_idle` still terminates).
    panicked: AtomicUsize,
    shutdown: AtomicBool,
    /// Workers park here when they find no work.
    sleep_mutex: Mutex<()>,
    work_cond: Condvar,
    sleepers: AtomicUsize,
    /// `wait_idle` callers park here until `pending` reaches zero.
    idle_mutex: Mutex<()>,
    idle_cond: Condvar,
    /// Telemetry handles (see [`PoolMetrics`]); increments are relaxed
    /// atomics, resolution happened at pool construction.
    metrics: PoolMetrics,
}

/// Thread-local identity of a pool worker, so that jobs submitted from
/// inside a worker (recursive splits) go to its own LIFO deque instead of
/// the global injector.
#[derive(Clone, Copy)]
struct WorkerCtx {
    shared: *const Shared,
    local: *const Worker<Job>,
    index: usize,
}

thread_local! {
    static CURRENT: Cell<Option<WorkerCtx>> = const { Cell::new(None) };
}

/// A fixed-size work-stealing worker pool executing boxed jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `n` workers (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a pool needs at least one worker");
        let locals: Vec<Worker<Job>> = (0..n).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_mutex: Mutex::new(()),
            work_cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            idle_mutex: Mutex::new(()),
            idle_cond: Condvar::new(),
            metrics: PoolMetrics::new(n),
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gp-pool-{i}"))
                    .spawn(move || worker_loop(&shared, &local, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs so far whose closure panicked. The panics are
    /// contained: the worker survives and the pending count still reaches
    /// zero (the seed pool deadlocked `wait_idle` here).
    pub fn panicked_jobs(&self) -> usize {
        self.shared.panicked.load(Ordering::Acquire)
    }

    /// Submit a fire-and-forget job. If called from inside a pool worker,
    /// the job goes to that worker's own LIFO deque (cheap, cache-hot,
    /// stealable by idle workers); otherwise to the global injector.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(job));
    }

    fn submit(&self, job: Job) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let mut job = Some(job);
        let pushed_local = CURRENT.with(|c| match c.get() {
            Some(ctx) if std::ptr::eq(ctx.shared, Arc::as_ptr(&self.shared)) => {
                // SAFETY: `ctx.local` points at the deque owned by this
                // very thread's worker loop, which outlives the job run.
                unsafe { (*ctx.local).push(job.take().expect("job present")) };
                true
            }
            _ => false,
        });
        if pushed_local {
            self.shared.metrics.submit_local.incr();
        } else {
            self.shared.injector.push(job.take().expect("job present"));
            self.shared.metrics.submit_injector.incr();
        }
        // Wake a parked worker, if any. The 1 ms parking timeout below
        // makes a lost race here a latency blip, not a hang.
        if self.shared.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.shared.sleep_mutex.lock().expect("sleep lock");
            self.shared.work_cond.notify_one();
        }
    }

    /// Block until every submitted job has finished (even ones that
    /// panicked — see [`ThreadPool::panicked_jobs`]).
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mutex.lock().expect("idle lock");
        while self.shared.pending.load(Ordering::SeqCst) > 0 {
            guard = self.shared.idle_cond.wait(guard).expect("idle lock");
        }
    }

    /// Run both closures, potentially in parallel, and return both
    /// results — the rayon-style fork-join primitive behind the adaptive
    /// `par_*` splitting.
    ///
    /// `oper_b` is pushed onto the current worker's deque (or the
    /// injector from non-pool threads) where idle workers can steal it;
    /// `oper_a` runs inline. While waiting for `oper_b`, the caller
    /// *helps*: it pops/steals and runs other queued jobs, so nested
    /// joins cannot starve the pool. If either side panics, the panic is
    /// re-raised here — after both sides have finished, so borrowed data
    /// stays valid for the stolen half.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.shared.metrics.joins.incr();
        let done = AtomicBool::new(false);
        let mut slot_b: Option<std::thread::Result<RB>> = None;
        {
            let done_ref = &done;
            let slot_ref = &mut slot_b;
            let task = move || {
                let result = catch_unwind(AssertUnwindSafe(oper_b));
                *slot_ref = Some(result);
                done_ref.store(true, Ordering::Release);
            };
            let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(task);
            // SAFETY: the borrows captured by `task` (`done`, `slot_b`,
            // and everything borrowed by `oper_b`) live on this stack
            // frame, and we do not leave this function before observing
            // `done == true`, i.e. before the task has fully run. The
            // Release store / Acquire load pair on `done` orders the
            // task's writes before our reads.
            let boxed: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(boxed) };
            self.submit(boxed);
        }
        let result_a = catch_unwind(AssertUnwindSafe(oper_a));
        self.help_until(&done);
        let result_b = slot_b.take().expect("join task ran to completion");
        match (result_a, result_b) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(payload), _) => resume_unwind(payload),
            (_, Err(payload)) => resume_unwind(payload),
        }
    }

    /// Run queued jobs until `done` becomes true. Called by `join` while
    /// waiting for its spawned half; never blocks the thread for long, so
    /// a worker whose deque holds the awaited task will get to it.
    fn help_until(&self, done: &AtomicBool) {
        // Attribute help-run jobs to the worker doing the helping (or the
        // shared helper slot when `join` was called from outside the pool).
        let jobs_counter = CURRENT.with(|c| match c.get() {
            Some(ctx) if std::ptr::eq(ctx.shared, Arc::as_ptr(&self.shared)) => {
                self.shared.metrics.jobs_of(ctx.index)
            }
            _ => self.shared.metrics.help_jobs,
        });
        let mut idle_rounds = 0u32;
        while !done.load(Ordering::Acquire) {
            self.shared.metrics.join_help_iters.incr();
            if let Some(job) = self.find_job_any() {
                run_job(&self.shared, job);
                jobs_counter.incr();
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds < 16 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Find a job from anywhere in the pool: the current worker's deque
    /// first (when on a worker thread), then the injector, then steals.
    fn find_job_any(&self) -> Option<Job> {
        let local_job = CURRENT.with(|c| match c.get() {
            Some(ctx) if std::ptr::eq(ctx.shared, Arc::as_ptr(&self.shared)) => {
                // SAFETY: same invariant as in `submit`.
                unsafe { (*ctx.local).pop() }
            }
            _ => None,
        });
        if local_job.is_some() {
            self.shared.metrics.local_pop.incr();
            return local_job;
        }
        steal_from(&self.shared, usize::MAX)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep_mutex.lock().expect("sleep lock");
            self.shared.work_cond.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The process-wide executor the `par_*` primitives run on, sized to the
/// host's parallelism and created on first use.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n.clamp(1, 64))
    })
}

fn worker_loop(shared: &Arc<Shared>, local: &Worker<Job>, index: usize) {
    CURRENT.with(|c| {
        c.set(Some(WorkerCtx {
            shared: Arc::as_ptr(shared),
            local,
            index,
        }));
    });
    loop {
        let local_job = local.pop();
        if local_job.is_some() {
            shared.metrics.local_pop.incr();
        }
        if let Some(job) = local_job.or_else(|| steal_from(shared, index)) {
            run_job(shared, job);
            shared.metrics.worker_jobs[index].incr();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Park until new work is submitted. The re-check under the lock
        // plus the timeout close the submit/park race window.
        let guard = shared.sleep_mutex.lock().expect("sleep lock");
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if !shared.shutdown.load(Ordering::SeqCst) && !has_visible_work(shared, local) {
            shared.metrics.park.incr();
            let (_guard, timeout) = shared
                .work_cond
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("sleep lock");
            if !timeout.timed_out() {
                // Woken by a submit-side notify, not the parking timeout.
                shared.metrics.unpark.incr();
            }
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    CURRENT.with(|c| c.set(None));
}

fn has_visible_work(shared: &Shared, local: &Worker<Job>) -> bool {
    !local.is_empty()
        || !shared.injector.is_empty()
        || shared.stealers.iter().any(|s| !s.is_empty())
}

/// Steal one job: from the injector first (oldest external work), then
/// from sibling deques starting after `index` (pass `usize::MAX` when not
/// a worker).
fn steal_from(shared: &Shared, index: usize) -> Option<Job> {
    loop {
        match shared.injector.steal() {
            Steal::Success(job) => {
                shared.metrics.injector_pop.incr();
                return Some(job);
            }
            Steal::Empty => break,
            Steal::Retry => {
                shared.metrics.steal_retry.incr();
                continue;
            }
        }
    }
    let n = shared.stealers.len();
    let start = if index == usize::MAX { 0 } else { index + 1 };
    for k in 0..n {
        let stealer = &shared.stealers[(start + k) % n];
        loop {
            match stealer.steal() {
                Steal::Success(job) => {
                    shared.metrics.steal_hit.incr();
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => {
                    shared.metrics.steal_retry.incr();
                    continue;
                }
            }
        }
    }
    None
}

/// Execute one job panic-safely, then retire it from the pending count,
/// waking `wait_idle` on the transition to zero.
///
/// The telemetry span stack is restored to its pre-job depth after the
/// catch: a job that panics while holding span timers it leaked (or that
/// carries a timer into the discarded panic payload) would otherwise
/// leave its names on this worker's stack forever, corrupting
/// `current_span_path` for every job the worker runs afterwards.
fn run_job(shared: &Shared, job: Job) {
    let span_depth = gp_telemetry::span::span_depth();
    if catch_unwind(AssertUnwindSafe(job)).is_err() {
        shared.panicked.fetch_add(1, Ordering::SeqCst);
        shared.metrics.panics.incr();
    }
    gp_telemetry::span::truncate_span_stack(span_depth);
    if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        let _guard = shared.idle_mutex.lock().expect("idle lock");
        shared.idle_cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_idle_on_fresh_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn jobs_run_concurrently() {
        // With 4 workers, 4 jobs that each wait for the others must finish
        // (they would deadlock on a single thread).
        use std::sync::Barrier;
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(Barrier::new(4));
        for _ in 0..4 {
            let b = barrier.clone();
            pool.execute(move || {
                b.wait();
            });
        }
        pool.wait_idle();
    }

    #[test]
    fn panicking_job_cannot_corrupt_the_worker_span_stack() {
        // Regression: a job that panicked with a leaked span timer (the
        // timer forgotten, or riding in the discarded panic payload) left
        // its span name on the worker's thread-local stack — the catch in
        // run_job contained the panic but nothing restored the stack, so
        // every later job on that worker reported a bogus span path. One
        // worker makes the follow-up job land on the poisoned thread.
        let pool = ThreadPool::new(1);
        pool.execute(|| {
            let timer = gp_telemetry::span("pool_panic_leak");
            std::mem::forget(timer); // no drop will ever pop this
            panic!("panics with an open span");
        });
        pool.wait_idle();
        assert_eq!(pool.panicked_jobs(), 1);
        let seen = Arc::new(std::sync::Mutex::new(String::from("unset")));
        let out = seen.clone();
        pool.execute(move || {
            *out.lock().unwrap() = gp_telemetry::current_span_path();
        });
        pool.wait_idle();
        assert_eq!(
            *seen.lock().unwrap(),
            "",
            "worker span stack must be clean after a panicking job"
        );
    }

    #[test]
    fn panicking_job_does_not_hang_wait_idle() {
        // Regression: in the seed pool a panicking job killed its worker
        // before the pending decrement, so wait_idle blocked forever.
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..20 {
            let c = counter.clone();
            pool.execute(move || {
                if i % 4 == 0 {
                    panic!("job {i} panics");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle(); // must return despite 5 panicking jobs
        assert_eq!(counter.load(Ordering::Relaxed), 15);
        assert_eq!(pool.panicked_jobs(), 5);
        // The pool is still fully operational afterwards.
        let c = counter.clone();
        pool.execute(move || {
            c.fetch_add(100, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 115);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "forty-two".len());
        assert_eq!(a, 42);
        assert_eq!(b, 9);
    }

    #[test]
    fn join_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..10_000).collect();
        let (left, right) = data.split_at(5000);
        let (sl, sr) = pool.join(|| left.iter().sum::<u64>(), || right.iter().sum::<u64>());
        assert_eq!(sl + sr, data.iter().sum::<u64>());
    }

    #[test]
    fn nested_joins_recurse() {
        fn sum(pool: &ThreadPool, xs: &[u64]) -> u64 {
            if xs.len() <= 100 {
                return xs.iter().sum();
            }
            let (l, r) = xs.split_at(xs.len() / 2);
            let (a, b) = pool.join(|| sum(pool, l), || sum(pool, r));
            a + b
        }
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..100_000).collect();
        assert_eq!(sum(&pool, &xs), xs.iter().sum::<u64>());
        // And on a single-worker pool (the caller helps).
        let pool1 = ThreadPool::new(1);
        assert_eq!(sum(&pool1, &xs), xs.iter().sum::<u64>());
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || panic!("b side"));
        }));
        assert!(caught.is_err());
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| panic!("a side"), || 2);
        }));
        assert!(caught.is_err());
        // Pool still alive and well.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().workers() >= 1);
    }
}
