//! Scoped data-parallel primitives over slices.
//!
//! All primitives are deterministic: given the same input, operation
//! witness, and any thread count, they return exactly what the sequential
//! algorithm returns — that is the point of keying them on concepts whose
//! axioms license the reordering.

use gp_core::algebra::Monoid;
use gp_core::order::StrictWeakOrder;
use gp_sequences::sort::introsort;

fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// Parallel map preserving order: `out[i] = f(&input[i])`.
pub fn par_map<T, U, F>(input: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    let cl = chunk_len(input.len(), threads);
    let mut parts: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| s.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        parts = handles.into_iter().map(|h| h.join().expect("map worker")).collect();
    });
    let mut out = Vec::with_capacity(input.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Parallel in-place transform.
pub fn par_apply<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if data.is_empty() {
        return;
    }
    let cl = chunk_len(data.len(), threads);
    std::thread::scope(|s| {
        for chunk in data.chunks_mut(cl) {
            s.spawn(|| {
                for x in chunk {
                    f(x);
                }
            });
        }
    });
}

/// Parallel tree reduction under a [`Monoid`] witness.
///
/// **Concept obligation:** associativity licenses the chunked reordering;
/// the identity makes empty input (and empty chunks) well-defined. Both are
/// checkable ([`gp_core::algebra::check_associativity`]) and provable
/// (`gp_proofs::theories::monoid`). Result is bit-identical to the
/// sequential left fold for associative operations.
pub fn par_reduce<T, O>(input: &[T], threads: usize, op: &O) -> T
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.is_empty() {
        return op.identity();
    }
    let cl = chunk_len(input.len(), threads);
    let mut partials: Vec<T> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| {
                s.spawn(move || {
                    let mut acc = op.identity();
                    for x in chunk {
                        acc = op.op(&acc, x);
                    }
                    acc
                })
            })
            .collect();
        partials = handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker"))
            .collect();
    });
    let mut acc = op.identity();
    for p in &partials {
        acc = op.op(&acc, p);
    }
    acc
}

/// The ablation escape hatch: reduce with an **arbitrary closure** and no
/// concept obligation. Used by tests and the ablation benchmark to show
/// that dropping the Monoid requirement silently corrupts results for
/// non-associative operations. Not part of the supported API surface.
pub fn par_reduce_unchecked<T, F>(input: &[T], threads: usize, init: T, f: F) -> T
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    if input.is_empty() {
        return init;
    }
    let cl = chunk_len(input.len(), threads);
    let mut partials: Vec<T> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| {
                let init = init.clone();
                let f = &f;
                s.spawn(move || {
                    let mut acc = init;
                    for x in chunk {
                        acc = f(&acc, x);
                    }
                    acc
                })
            })
            .collect();
        partials = handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker"))
            .collect();
    });
    let mut acc = init;
    for p in &partials {
        acc = f(&acc, p);
    }
    acc
}

/// Parallel inclusive prefix scan under a [`Monoid`] (three-phase Blelloch
/// scheme: chunk totals → sequential exclusive scan of totals → offset
/// local scans). `out[i] = x0 ⊕ x1 ⊕ … ⊕ xi`.
pub fn par_scan<T, O>(input: &[T], threads: usize, op: &O) -> Vec<T>
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    let cl = chunk_len(input.len(), threads);

    // Phase 1: per-chunk totals, in parallel.
    let mut totals: Vec<T> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| {
                s.spawn(move || {
                    let mut acc = op.identity();
                    for x in chunk {
                        acc = op.op(&acc, x);
                    }
                    acc
                })
            })
            .collect();
        totals = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect();
    });

    // Phase 2: sequential exclusive scan of the totals (cheap: one element
    // per chunk).
    let mut offsets = Vec::with_capacity(totals.len());
    let mut acc = op.identity();
    for t in &totals {
        offsets.push(acc.clone());
        acc = op.op(&acc, t);
    }

    // Phase 3: local inclusive scans seeded with the chunk offset.
    let mut parts: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .zip(&offsets)
            .map(|(chunk, off)| {
                s.spawn(move || {
                    let mut acc = off.clone();
                    let mut out = Vec::with_capacity(chunk.len());
                    for x in chunk {
                        acc = op.op(&acc, x);
                        out.push(acc.clone());
                    }
                    out
                })
            })
            .collect();
        parts = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker"))
            .collect();
    });
    let mut out = Vec::with_capacity(input.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Parallel merge sort: chunk-local introsort (the concept-dispatched
/// random-access algorithm) followed by parallel pairwise merge rounds.
/// Stable across equal elements is **not** guaranteed (introsort is
/// unstable), matching the sequential `sort` contract.
pub fn par_sort<T, O>(data: &mut Vec<T>, threads: usize, ord: &O)
where
    T: Clone + Send + Sync,
    O: StrictWeakOrder<T> + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let cl = chunk_len(n, threads);

    // Phase 1: sort chunks in parallel.
    std::thread::scope(|s| {
        for chunk in data.chunks_mut(cl) {
            s.spawn(move || introsort(chunk, ord));
        }
    });

    // Phase 2: merge runs pairwise until one run remains.
    let mut runs: Vec<Vec<T>> = data.chunks(cl).map(|c| c.to_vec()).collect();
    while runs.len() > 1 {
        let mut next: Vec<Vec<T>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        let mut pairs: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::new();
        while let Some(a) = iter.next() {
            pairs.push((a, iter.next()));
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    s.spawn(move || match b {
                        None => a,
                        Some(b) => merge_two(&a, &b, ord),
                    })
                })
                .collect();
            next = handles
                .into_iter()
                .map(|h| h.join().expect("merge worker"))
                .collect();
        });
        runs = next;
    }
    *data = runs.pop().expect("one run remains");
}

fn merge_two<T: Clone, O: StrictWeakOrder<T>>(a: &[T], b: &[T], ord: &O) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if ord.less(&b[j], &a[i]) {
            out.push(b[j].clone());
            j += 1;
        } else {
            out.push(a[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::algebra::{monoid_fold, AddOp, MaxOp, MulOp};
    use gp_core::archetype::{ArchetypeElem, ArchetypeOp};
    use gp_core::order::NaturalLess;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    #[test]
    fn par_map_preserves_order() {
        let v = random(10_000, 1);
        for threads in [1, 2, 4, 7] {
            let out = par_map(&v, threads, |x| x * 2);
            let expect: Vec<i64> = v.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
        assert_eq!(par_map::<i64, i64, _>(&[], 4, |x| *x), Vec::<i64>::new());
    }

    #[test]
    fn par_apply_mutates_everything() {
        let mut v = random(5000, 2);
        let expect: Vec<i64> = v.iter().map(|x| x + 1).collect();
        par_apply(&mut v, 4, |x| *x += 1);
        assert_eq!(v, expect);
    }

    #[test]
    fn par_reduce_equals_sequential_for_any_thread_count() {
        let v = random(10_001, 3); // deliberately not divisible
        let seq = monoid_fold(&AddOp, &v);
        for threads in [1, 2, 3, 8, 33] {
            assert_eq!(par_reduce(&v, threads, &AddOp), seq, "threads={threads}");
        }
        assert_eq!(par_reduce(&v, 4, &MaxOp), monoid_fold(&MaxOp, &v));
        // Empty input yields the identity.
        assert_eq!(par_reduce::<i64, _>(&[], 4, &AddOp), 0);
        assert_eq!(par_reduce::<i64, _>(&[], 4, &MulOp), 1);
    }

    #[test]
    fn par_reduce_works_against_the_monoid_archetype() {
        // Compile-time proof that par_reduce needs only the Monoid concept.
        let items: Vec<ArchetypeElem> = (1..=100).map(ArchetypeElem::new).collect();
        let total = par_reduce(&items, 4, &ArchetypeOp);
        assert_eq!(total.get(), 5050);
    }

    #[test]
    fn unchecked_reduce_with_non_associative_op_corrupts_results() {
        // The ablation: subtraction is not associative; chunked reduction
        // disagrees with the sequential fold — exactly the failure the
        // Monoid concept constraint rules out at compile time.
        let v: Vec<i64> = (1..=1000).collect();
        let seq = v.iter().fold(0i64, |a, b| a - b);
        let par = par_reduce_unchecked(&v, 8, 0i64, |a, b| a - b);
        assert_ne!(par, seq, "non-associative op must break chunked reduce");
        // Whereas for an associative op the unchecked version agrees.
        let par_ok = par_reduce_unchecked(&v, 8, 0i64, |a, b| a + b);
        assert_eq!(par_ok, v.iter().sum::<i64>());
    }

    #[test]
    fn par_scan_matches_sequential_prefix_sums() {
        let v = random(4321, 4);
        let mut expect = Vec::with_capacity(v.len());
        let mut acc = 0i64;
        for x in &v {
            acc += x;
            expect.push(acc);
        }
        for threads in [1, 2, 5, 16] {
            assert_eq!(par_scan(&v, threads, &AddOp), expect, "threads={threads}");
        }
        assert_eq!(par_scan::<i64, _>(&[], 4, &AddOp), Vec::<i64>::new());
    }

    #[test]
    fn par_scan_works_for_non_commutative_monoids() {
        // Concatenation is associative but not commutative: the scan must
        // still be correct (associativity is the only requirement).
        use gp_core::algebra::ConcatOp;
        let words: Vec<String> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = par_scan(&words, 3, &ConcatOp);
        assert_eq!(out.last().unwrap(), "abcdefg");
        assert_eq!(out[2], "abc");
    }

    #[test]
    fn par_sort_sorts_like_sequential() {
        for seed in 0..3 {
            let orig = random(20_000, seed);
            let mut expect = orig.clone();
            expect.sort_unstable();
            for threads in [1, 2, 4, 6] {
                let mut v = orig.clone();
                par_sort(&mut v, threads, &NaturalLess);
                assert_eq!(v, expect, "seed={seed} threads={threads}");
            }
        }
        let mut empty: Vec<i64> = vec![];
        par_sort(&mut empty, 4, &NaturalLess);
        assert!(empty.is_empty());
    }
}
