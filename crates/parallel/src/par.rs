//! Data-parallel primitives over slices, running on the process-wide
//! work-stealing executor ([`crate::pool::global`]).
//!
//! All primitives are deterministic: given the same input, operation
//! witness, and any thread count, they return exactly what the sequential
//! algorithm returns — that is the point of keying them on concepts whose
//! axioms license the reordering.
//!
//! Work is split by **recursive adaptive splitting** (rayon-style
//! [`crate::pool::ThreadPool::join`]): a range is halved, one half is
//! pushed where idle workers can steal it, the other half is recursed on
//! inline, down to a sequential cutoff. Under load imbalance the idle
//! workers steal the *largest* outstanding subranges, so skewed workloads
//! balance without any static chunk tuning. The `threads` parameter is a
//! parallelism-width hint that sets the sequential cutoff (and, for the
//! chunk-structured `par_scan` / `par_reduce_unchecked`, the chunk
//! boundaries); `threads <= 1` runs the sequential algorithm directly.
//! The seed's spawn-per-call implementations survive in [`crate::spawn`]
//! as the benchmark baseline.

use crate::pool::{self, ThreadPool};
use gp_core::algebra::Monoid;
use gp_core::order::StrictWeakOrder;
use gp_sequences::sort::introsort;
use gp_telemetry::{Counter, Histogram};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::OnceLock;

/// Telemetry handles for the adaptive splitter, resolved once per process
/// (resolution takes the registry lock; the hot-path cost is one relaxed
/// increment per split / per leaf).
struct ParMetrics {
    /// Times an adaptive recursion split a range in two.
    splits: &'static Counter,
    /// Lengths of the sequential leaves the splitter bottomed out on.
    leaf_len: &'static Histogram,
}

fn par_metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ParMetrics {
        splits: gp_telemetry::counter("par.splits"),
        leaf_len: gp_telemetry::histogram("par.leaf_len"),
    })
}

/// Fixed even chunk length for the chunk-structured primitives.
pub(crate) fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// Smallest range worth a task of its own; below this, task bookkeeping
/// outweighs the work for cheap per-element operations.
const MIN_GRAIN: usize = 256;

/// Sequential cutoff for adaptive splitting: aim for ~8 stealable leaves
/// per requested thread, but never finer than [`MIN_GRAIN`].
fn grain(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 8)).max(MIN_GRAIN)
}

/// Reinterpret a fully initialized `Vec<MaybeUninit<U>>` as `Vec<U>`.
///
/// SAFETY (caller): every element must have been written.
unsafe fn assume_init_vec<U>(v: Vec<MaybeUninit<U>>) -> Vec<U> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: MaybeUninit<U> and U have the same layout; all elements are
    // initialized per the caller contract.
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), len, cap) }
}

/// An uninitialized output buffer of length `n`.
fn uninit_vec<U>(n: usize) -> Vec<MaybeUninit<U>> {
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit requires no initialization.
    unsafe { out.set_len(n) };
    out
}

/// Parallel map preserving order: `out[i] = f(&input[i])`.
///
/// Writes directly into a pre-sized output buffer — no per-chunk `Vec`
/// intermediates. If `f` panics, the panic propagates once all in-flight
/// subtasks finish (already-produced elements are leaked, not dropped).
pub fn par_map<T, U, F>(input: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    if threads <= 1 {
        return input.iter().map(&f).collect();
    }
    let _span = gp_telemetry::span("par_map");
    let mut out = uninit_vec::<U>(input.len());
    map_rec(
        pool::global(),
        input,
        &mut out,
        &f,
        grain(input.len(), threads),
    );
    // SAFETY: map_rec covers the full index range exactly once.
    unsafe { assume_init_vec(out) }
}

fn map_rec<T, U, F>(pool: &ThreadPool, input: &[T], out: &mut [MaybeUninit<U>], f: &F, grain: usize)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.len() <= grain {
        let m = par_metrics();
        m.leaf_len.record(input.len() as u64);
        for (slot, x) in out.iter_mut().zip(input) {
            slot.write(f(x));
        }
        return;
    }
    par_metrics().splits.incr();
    let mid = input.len() / 2;
    let (il, ir) = input.split_at(mid);
    let (ol, or_) = out.split_at_mut(mid);
    pool.join(
        || map_rec(pool, il, ol, f, grain),
        || map_rec(pool, ir, or_, f, grain),
    );
}

/// Crate-internal: parallel map with an explicit grain, for callers whose
/// elements are themselves coarse tasks (e.g. [`crate::dist::BlockVec`]
/// blocks, where grain 1 is right because each element is a whole block).
pub(crate) fn par_map_grain<T, U, F>(input: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    let mut out = uninit_vec::<U>(input.len());
    map_rec(pool::global(), input, &mut out, &f, grain.max(1));
    // SAFETY: map_rec covers the full index range exactly once.
    unsafe { assume_init_vec(out) }
}

/// Parallel map with **static even chunking**: exactly
/// `ceil(n / threads)`-sized chunks, one task per chunk, no splitting
/// below chunk granularity. Same output as [`par_map`]; exists so the
/// E11 benches can measure static vs. adaptive scheduling on skewed
/// workloads — use [`par_map`] otherwise.
pub fn par_map_static<T, U, F>(input: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    if threads <= 1 {
        return input.iter().map(&f).collect();
    }
    let cl = chunk_len(input.len(), threads);
    let mut out = uninit_vec::<U>(input.len());
    map_chunks_rec(pool::global(), input, &mut out, cl, &f);
    // SAFETY: map_chunks_rec covers the full index range exactly once.
    unsafe { assume_init_vec(out) }
}

/// Recurse over whole chunks (boundaries at multiples of `cl`); each leaf
/// is exactly one statically assigned chunk.
fn map_chunks_rec<T, U, F>(
    pool: &ThreadPool,
    input: &[T],
    out: &mut [MaybeUninit<U>],
    cl: usize,
    f: &F,
) where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.len() <= cl {
        for (slot, x) in out.iter_mut().zip(input) {
            slot.write(f(x));
        }
        return;
    }
    let chunks = input.len().div_ceil(cl);
    let mid = (chunks / 2) * cl;
    let (il, ir) = input.split_at(mid);
    let (ol, or_) = out.split_at_mut(mid);
    pool.join(
        || map_chunks_rec(pool, il, ol, cl, f),
        || map_chunks_rec(pool, ir, or_, cl, f),
    );
}

/// Parallel in-place transform.
pub fn par_apply<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if data.is_empty() {
        return;
    }
    if threads <= 1 {
        for x in data {
            f(x);
        }
        return;
    }
    let _span = gp_telemetry::span("par_apply");
    let g = grain(data.len(), threads);
    apply_rec(pool::global(), data, &f, g);
}

fn apply_rec<T, F>(pool: &ThreadPool, data: &mut [T], f: &F, grain: usize)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if data.len() <= grain {
        par_metrics().leaf_len.record(data.len() as u64);
        for x in data {
            f(x);
        }
        return;
    }
    par_metrics().splits.incr();
    let mid = data.len() / 2;
    let (l, r) = data.split_at_mut(mid);
    pool.join(
        || apply_rec(pool, l, f, grain),
        || apply_rec(pool, r, f, grain),
    );
}

/// Parallel tree reduction under a [`Monoid`] witness.
///
/// **Concept obligation:** associativity licenses the tree reordering;
/// the identity makes empty input (and leaf seeds) well-defined. Both are
/// checkable ([`gp_core::algebra::check_associativity`]) and provable
/// (`gp_proofs::theories::monoid`). Result is bit-identical to the
/// sequential left fold for associative operations, for every thread
/// count and every adaptive split.
pub fn par_reduce<T, O>(input: &[T], threads: usize, op: &O) -> T
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.is_empty() {
        return op.identity();
    }
    if threads <= 1 {
        return fold_chunk(input, op);
    }
    let _span = gp_telemetry::span("par_reduce");
    reduce_rec(pool::global(), input, op, grain(input.len(), threads))
}

fn fold_chunk<T: Clone, O: Monoid<T>>(chunk: &[T], op: &O) -> T {
    let mut acc = op.identity();
    for x in chunk {
        acc = op.op(&acc, x);
    }
    acc
}

fn reduce_rec<T, O>(pool: &ThreadPool, input: &[T], op: &O, grain: usize) -> T
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.len() <= grain {
        par_metrics().leaf_len.record(input.len() as u64);
        return fold_chunk(input, op);
    }
    par_metrics().splits.incr();
    let mid = input.len() / 2;
    let (l, r) = input.split_at(mid);
    let (a, b) = pool.join(
        || reduce_rec(pool, l, op, grain),
        || reduce_rec(pool, r, op, grain),
    );
    op.op(&a, &b)
}

/// The ablation escape hatch: reduce with an **arbitrary closure** and no
/// concept obligation. Used by tests and the ablation benchmark to show
/// that dropping the Monoid requirement silently corrupts results for
/// non-associative operations. Not part of the supported API surface.
///
/// Chunking is static (`ceil(n / threads)` even chunks, seed semantics):
/// each chunk folds from a clone of `init`, then the per-chunk partials
/// fold left-to-right — so for a given `threads` the corruption pattern
/// of a non-associative `f` is reproducible.
pub fn par_reduce_unchecked<T, F>(input: &[T], threads: usize, init: T, f: F) -> T
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    if input.is_empty() {
        return init;
    }
    let cl = chunk_len(input.len(), threads);
    let n_chunks = input.len().div_ceil(cl);
    let mut partials = uninit_vec::<T>(n_chunks);
    unchecked_totals_rec(pool::global(), input, &mut partials, cl, &init, &f);
    // SAFETY: one partial is written per chunk, covering all chunks.
    let partials = unsafe { assume_init_vec(partials) };
    let mut acc = init;
    for p in &partials {
        acc = f(&acc, p);
    }
    acc
}

fn unchecked_totals_rec<T, F>(
    pool: &ThreadPool,
    input: &[T],
    out: &mut [MaybeUninit<T>],
    cl: usize,
    init: &T,
    f: &F,
) where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    if out.len() == 1 {
        let mut acc = init.clone();
        for x in input {
            acc = f(&acc, x);
        }
        out[0].write(acc);
        return;
    }
    let mid_chunks = out.len() / 2;
    let (ol, or_) = out.split_at_mut(mid_chunks);
    let (il, ir) = input.split_at(mid_chunks * cl);
    pool.join(
        || unchecked_totals_rec(pool, il, ol, cl, init, f),
        || unchecked_totals_rec(pool, ir, or_, cl, init, f),
    );
}

/// Parallel inclusive prefix scan under a [`Monoid`] (three-phase Blelloch
/// scheme: chunk totals → sequential exclusive scan of totals → offset
/// local scans). `out[i] = x0 ⊕ x1 ⊕ … ⊕ xi`. Phases run on the pooled
/// executor; chunk boundaries are `ceil(n / threads)` so the phase-2
/// sequential scan stays one element per chunk.
pub fn par_scan<T, O>(input: &[T], threads: usize, op: &O) -> Vec<T>
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    if threads <= 1 {
        let mut acc = op.identity();
        return input
            .iter()
            .map(|x| {
                acc = op.op(&acc, x);
                acc.clone()
            })
            .collect();
    }
    let _span = gp_telemetry::span("par_scan");
    let pool = pool::global();
    let cl = chunk_len(input.len(), threads);
    let n_chunks = input.len().div_ceil(cl);

    // Phase 1: per-chunk totals, in parallel.
    let mut totals = uninit_vec::<T>(n_chunks);
    totals_rec(pool, input, &mut totals, cl, op);
    // SAFETY: one total is written per chunk.
    let totals = unsafe { assume_init_vec(totals) };

    // Phase 2: sequential exclusive scan of the totals (cheap: one
    // element per chunk).
    let mut offsets = Vec::with_capacity(totals.len());
    let mut acc = op.identity();
    for t in &totals {
        offsets.push(acc.clone());
        acc = op.op(&acc, t);
    }

    // Phase 3: local inclusive scans seeded with the chunk offset,
    // written straight into the pre-sized output.
    let mut out = uninit_vec::<T>(input.len());
    scan_chunks_rec(pool, input, &offsets, &mut out, cl, op);
    // SAFETY: phase 3 writes every output element exactly once.
    unsafe { assume_init_vec(out) }
}

fn totals_rec<T, O>(pool: &ThreadPool, input: &[T], out: &mut [MaybeUninit<T>], cl: usize, op: &O)
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if out.len() == 1 {
        out[0].write(fold_chunk(input, op));
        return;
    }
    let mid_chunks = out.len() / 2;
    let (ol, or_) = out.split_at_mut(mid_chunks);
    let (il, ir) = input.split_at(mid_chunks * cl);
    pool.join(
        || totals_rec(pool, il, ol, cl, op),
        || totals_rec(pool, ir, or_, cl, op),
    );
}

fn scan_chunks_rec<T, O>(
    pool: &ThreadPool,
    input: &[T],
    offsets: &[T],
    out: &mut [MaybeUninit<T>],
    cl: usize,
    op: &O,
) where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if offsets.len() == 1 {
        let mut acc = offsets[0].clone();
        for (slot, x) in out.iter_mut().zip(input) {
            acc = op.op(&acc, x);
            slot.write(acc.clone());
        }
        return;
    }
    let mid_chunks = offsets.len() / 2;
    let (fl, fr) = offsets.split_at(mid_chunks);
    let (il, ir) = input.split_at(mid_chunks * cl);
    let (ol, or_) = out.split_at_mut(mid_chunks * cl);
    pool.join(
        || scan_chunks_rec(pool, il, fl, ol, cl, op),
        || scan_chunks_rec(pool, ir, fr, or_, cl, op),
    );
}

/// Parallel merge sort: recursive adaptive splitting down to
/// introsort-sorted leaves (the concept-dispatched random-access
/// algorithm), merging halves on the way back up. Stability across equal
/// elements is **not** guaranteed (introsort leaves are unstable),
/// matching the sequential `sort` contract.
pub fn par_sort<T, O>(data: &mut [T], threads: usize, ord: &O)
where
    T: Clone + Send + Sync,
    O: StrictWeakOrder<T> + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if threads <= 1 {
        introsort(data, ord);
        return;
    }
    let _span = gp_telemetry::span("par_sort");
    let g = grain(n, threads).max(1024);
    sort_rec(pool::global(), data, ord, g);
}

fn sort_rec<T, O>(pool: &ThreadPool, data: &mut [T], ord: &O, grain: usize)
where
    T: Clone + Send + Sync,
    O: StrictWeakOrder<T> + Sync,
{
    if data.len() <= grain {
        par_metrics().leaf_len.record(data.len() as u64);
        introsort(data, ord);
        return;
    }
    par_metrics().splits.incr();
    let mid = data.len() / 2;
    {
        let (l, r) = data.split_at_mut(mid);
        pool.join(
            || sort_rec(pool, l, ord, grain),
            || sort_rec(pool, r, ord, grain),
        );
    }
    merge_in_place(data, mid, ord);
}

/// Merge `data[..mid]` and `data[mid..]` (each sorted) using a clone of
/// the left run as scratch. Writes never overtake unread right-run
/// elements: the write index trails the right read index whenever a left
/// element is chosen.
fn merge_in_place<T: Clone, O: StrictWeakOrder<T>>(data: &mut [T], mid: usize, ord: &O) {
    let left: Vec<T> = data[..mid].to_vec();
    let (mut i, mut j, mut k) = (0, mid, 0);
    while i < left.len() && j < data.len() {
        if ord.less(&data[j], &left[i]) {
            data[k] = data[j].clone();
            j += 1;
        } else {
            data[k] = left[i].clone();
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        data[k] = left[i].clone();
        i += 1;
        k += 1;
    }
    // Any remaining right-run elements are already in place.
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::algebra::{monoid_fold, AddOp, MaxOp, MulOp};
    use gp_core::archetype::{ArchetypeElem, ArchetypeOp};
    use gp_core::order::NaturalLess;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    #[test]
    fn par_map_preserves_order() {
        let v = random(10_000, 1);
        for threads in [1, 2, 4, 7] {
            let out = par_map(&v, threads, |x| x * 2);
            let expect: Vec<i64> = v.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
        assert_eq!(par_map::<i64, i64, _>(&[], 4, |x| *x), Vec::<i64>::new());
    }

    #[test]
    fn par_map_static_matches_adaptive() {
        let v = random(5000, 11);
        for threads in [1, 2, 4, 16] {
            assert_eq!(
                par_map_static(&v, threads, |x| x - 7),
                par_map(&v, threads, |x| x - 7),
                "threads={threads}"
            );
        }
        assert_eq!(
            par_map_static::<i64, i64, _>(&[], 4, |x| *x),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn par_apply_mutates_everything() {
        let mut v = random(5000, 2);
        let expect: Vec<i64> = v.iter().map(|x| x + 1).collect();
        par_apply(&mut v, 4, |x| *x += 1);
        assert_eq!(v, expect);
    }

    #[test]
    fn par_reduce_equals_sequential_for_any_thread_count() {
        let v = random(10_001, 3); // deliberately not divisible
        let seq = monoid_fold(&AddOp, &v);
        for threads in [1, 2, 3, 8, 33] {
            assert_eq!(par_reduce(&v, threads, &AddOp), seq, "threads={threads}");
        }
        assert_eq!(par_reduce(&v, 4, &MaxOp), monoid_fold(&MaxOp, &v));
        // Empty input yields the identity.
        assert_eq!(par_reduce::<i64, _>(&[], 4, &AddOp), 0);
        assert_eq!(par_reduce::<i64, _>(&[], 4, &MulOp), 1);
    }

    #[test]
    fn par_reduce_works_against_the_monoid_archetype() {
        // Compile-time proof that par_reduce needs only the Monoid concept.
        let items: Vec<ArchetypeElem> = (1..=100).map(ArchetypeElem::new).collect();
        let total = par_reduce(&items, 4, &ArchetypeOp);
        assert_eq!(total.get(), 5050);
    }

    #[test]
    fn unchecked_reduce_with_non_associative_op_corrupts_results() {
        // The ablation: subtraction is not associative; chunked reduction
        // disagrees with the sequential fold — exactly the failure the
        // Monoid concept constraint rules out at compile time.
        let v: Vec<i64> = (1..=1000).collect();
        let seq = v.iter().fold(0i64, |a, b| a - b);
        let par = par_reduce_unchecked(&v, 8, 0i64, |a, b| a - b);
        assert_ne!(par, seq, "non-associative op must break chunked reduce");
        // Whereas for an associative op the unchecked version agrees.
        let par_ok = par_reduce_unchecked(&v, 8, 0i64, |a, b| a + b);
        assert_eq!(par_ok, v.iter().sum::<i64>());
    }

    #[test]
    fn par_scan_matches_sequential_prefix_sums() {
        let v = random(4321, 4);
        let mut expect = Vec::with_capacity(v.len());
        let mut acc = 0i64;
        for x in &v {
            acc += x;
            expect.push(acc);
        }
        for threads in [1, 2, 5, 16] {
            assert_eq!(par_scan(&v, threads, &AddOp), expect, "threads={threads}");
        }
        assert_eq!(par_scan::<i64, _>(&[], 4, &AddOp), Vec::<i64>::new());
    }

    #[test]
    fn par_scan_works_for_non_commutative_monoids() {
        // Concatenation is associative but not commutative: the scan must
        // still be correct (associativity is the only requirement).
        use gp_core::algebra::ConcatOp;
        let words: Vec<String> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = par_scan(&words, 3, &ConcatOp);
        assert_eq!(out.last().unwrap(), "abcdefg");
        assert_eq!(out[2], "abc");
    }

    #[test]
    fn par_sort_sorts_like_sequential() {
        for seed in 0..3 {
            let orig = random(20_000, seed);
            let mut expect = orig.clone();
            expect.sort_unstable();
            for threads in [1, 2, 4, 6] {
                let mut v = orig.clone();
                par_sort(&mut v, threads, &NaturalLess);
                assert_eq!(v, expect, "seed={seed} threads={threads}");
            }
        }
        let mut empty: Vec<i64> = vec![];
        par_sort(&mut empty, 4, &NaturalLess);
        assert!(empty.is_empty());
    }

    #[test]
    fn tiny_and_odd_inputs_for_every_primitive() {
        for n in [0usize, 1, 2, 3, 7] {
            let v = random(n, 99);
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    par_map(&v, threads, |x| x * 5),
                    v.iter().map(|x| x * 5).collect::<Vec<_>>(),
                    "map n={n} threads={threads}"
                );
                assert_eq!(
                    par_reduce(&v, threads, &AddOp),
                    monoid_fold(&AddOp, &v),
                    "reduce n={n} threads={threads}"
                );
                let mut acc = 0i64;
                let expect: Vec<i64> = v
                    .iter()
                    .map(|x| {
                        acc += x;
                        acc
                    })
                    .collect();
                assert_eq!(
                    par_scan(&v, threads, &AddOp),
                    expect,
                    "scan n={n} threads={threads}"
                );
                let mut s = v.clone();
                par_sort(&mut s, threads, &NaturalLess);
                let mut e = v.clone();
                e.sort_unstable();
                assert_eq!(s, e, "sort n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_equals_spawn_baseline() {
        let v = random(30_000, 5);
        for threads in [2, 4, 8] {
            assert_eq!(
                par_map(&v, threads, |x| x ^ 3),
                crate::spawn::spawn_map(&v, threads, |x| x ^ 3)
            );
            assert_eq!(
                par_reduce(&v, threads, &AddOp),
                crate::spawn::spawn_reduce(&v, threads, &AddOp)
            );
        }
    }

    #[test]
    fn map_panic_propagates_cleanly() {
        let v: Vec<i64> = (0..10_000).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&v, 8, |x| {
                if *x == 7777 {
                    panic!("poison element");
                }
                x + 1
            })
        });
        assert!(result.is_err());
        // The executor survives for subsequent calls.
        assert_eq!(par_reduce(&v, 8, &AddOp), v.iter().sum::<i64>());
    }
}
