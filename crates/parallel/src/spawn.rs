//! The seed's spawn-per-call data-parallel primitives, kept verbatim as
//! the measured baseline for the pooled executor.
//!
//! Every call here spawns fresh OS threads via `std::thread::scope` and
//! uses static even chunking — the two costs the work-stealing executor
//! in [`crate::pool`] removes. The E11 benches (`gp-bench`
//! `benches/parallel.rs`, `exp_parallel`) compare these against the
//! pooled [`crate::par`] primitives; nothing else should use them.

use gp_core::algebra::Monoid;

pub(crate) fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

/// Spawn-per-call parallel map (seed implementation: fresh threads, a
/// `Vec<Vec<U>>` intermediate, then a re-extend into the output).
pub fn spawn_map<T, U, F>(input: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if input.is_empty() {
        return Vec::new();
    }
    let cl = chunk_len(input.len(), threads);
    let mut parts: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| s.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        parts = handles
            .into_iter()
            .map(|h| h.join().expect("map worker"))
            .collect();
    });
    let mut out = Vec::with_capacity(input.len());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Spawn-per-call parallel Monoid reduction (seed implementation).
pub fn spawn_reduce<T, O>(input: &[T], threads: usize, op: &O) -> T
where
    T: Clone + Send + Sync,
    O: Monoid<T> + Sync,
{
    if input.is_empty() {
        return op.identity();
    }
    let cl = chunk_len(input.len(), threads);
    let mut partials: Vec<T> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = input
            .chunks(cl)
            .map(|chunk| {
                s.spawn(move || {
                    let mut acc = op.identity();
                    for x in chunk {
                        acc = op.op(&acc, x);
                    }
                    acc
                })
            })
            .collect();
        partials = handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker"))
            .collect();
    });
    let mut acc = op.identity();
    for p in &partials {
        acc = op.op(&acc, p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::algebra::{monoid_fold, AddOp};

    #[test]
    fn spawn_baseline_matches_sequential() {
        let v: Vec<i64> = (1..=10_001).collect();
        assert_eq!(spawn_reduce(&v, 4, &AddOp), monoid_fold(&AddOp, &v));
        let out = spawn_map(&v, 4, |x| x * 3);
        assert_eq!(out, v.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(spawn_map::<i64, i64, _>(&[], 4, |x| *x), Vec::<i64>::new());
        assert_eq!(spawn_reduce::<i64, _>(&[], 4, &AddOp), 0);
    }
}
