//! A block-distributed vector: the data-parallel container abstraction.
//!
//! `BlockVec` partitions a sequence into owner blocks (the "ranks" of a
//! data-parallel program) and exposes whole-container operations — map,
//! reduce, scan, gather — that run block-parallel while the programmer
//! "thinks and programs in parallel, but more abstractly" (§4). Reductions
//! and scans carry the same Monoid concept obligation as the slice
//! primitives.

use crate::par;
use gp_core::algebra::Monoid;

/// A sequence partitioned into near-equal owner blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockVec<T> {
    blocks: Vec<Vec<T>>,
}

impl<T> BlockVec<T> {
    /// Partition `data` into `blocks` near-equal contiguous blocks.
    pub fn from_vec(data: Vec<T>, blocks: usize) -> Self {
        assert!(blocks >= 1, "need at least one block");
        let n = data.len();
        let base = n / blocks;
        let extra = n % blocks;
        let mut out = Vec::with_capacity(blocks);
        let mut iter = data.into_iter();
        for b in 0..blocks {
            let take = base + usize::from(b < extra);
            out.push(iter.by_ref().take(take).collect());
        }
        BlockVec { blocks: out }
    }

    /// Number of blocks (ranks).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// True if no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow a block.
    pub fn block(&self, b: usize) -> &[T] {
        &self.blocks[b]
    }

    /// Gather all elements into one vector (owner order).
    pub fn gather(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for b in self.blocks {
            out.extend(b);
        }
        out
    }
}

impl<T: Send + Sync> BlockVec<T> {
    /// Block-parallel map to a new distributed vector (same distribution).
    /// One pooled task per block (grain 1: a block is already coarse).
    pub fn map<U, F>(&self, f: F) -> BlockVec<U>
    where
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let blocks = par::par_map_grain(&self.blocks, 1, |b| b.iter().map(&f).collect::<Vec<U>>());
        BlockVec { blocks }
    }
}

impl<T: Clone + Send + Sync> BlockVec<T> {
    /// Block-parallel Monoid reduction: per-block partials on the pooled
    /// executor, then a left fold of the partials (owner order — sound by
    /// the Monoid associativity obligation).
    pub fn reduce<O: Monoid<T> + Sync>(&self, op: &O) -> T {
        let partials = par::par_map_grain(&self.blocks, 1, |b| {
            let mut acc = op.identity();
            for x in b.iter() {
                acc = op.op(&acc, x);
            }
            acc
        });
        let mut acc = op.identity();
        for p in &partials {
            acc = op.op(&acc, p);
        }
        acc
    }

    /// Inclusive prefix scan across the distribution (delegates to the
    /// slice primitive; result gathered then re-distributed identically).
    pub fn scan<O: Monoid<T> + Sync>(&self, op: &O) -> BlockVec<T> {
        let flat: Vec<T> = self.blocks.iter().flat_map(|b| b.iter().cloned()).collect();
        let scanned = par::par_scan(&flat, self.block_count(), op);
        let mut blocks = Vec::with_capacity(self.block_count());
        let mut iter = scanned.into_iter();
        for b in &self.blocks {
            blocks.push(iter.by_ref().take(b.len()).collect());
        }
        BlockVec { blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_core::algebra::{AddOp, MaxOp};

    #[test]
    fn partitioning_is_near_equal_and_order_preserving() {
        let v: Vec<i32> = (0..10).collect();
        let bv = BlockVec::from_vec(v.clone(), 3);
        assert_eq!(bv.block_count(), 3);
        assert_eq!(bv.block(0).len(), 4); // 4,3,3
        assert_eq!(bv.block(1).len(), 3);
        assert_eq!(bv.len(), 10);
        assert_eq!(bv.gather(), v);
    }

    #[test]
    fn map_reduce_scan_agree_with_sequential() {
        let v: Vec<i64> = (1..=1000).collect();
        let bv = BlockVec::from_vec(v.clone(), 4);
        let doubled = bv.map(|x| x * 2);
        assert_eq!(
            doubled.gather(),
            v.iter().map(|x| x * 2).collect::<Vec<_>>()
        );
        assert_eq!(bv.reduce(&AddOp), 500_500);
        assert_eq!(bv.reduce(&MaxOp), 1000);
        let scanned = bv.scan(&AddOp);
        let g = scanned.gather();
        assert_eq!(g[0], 1);
        assert_eq!(g[999], 500_500);
        assert_eq!(g[499], 125_250); // 500·501/2
    }

    #[test]
    fn more_blocks_than_elements_is_fine() {
        let bv = BlockVec::from_vec(vec![1i64, 2], 8);
        assert_eq!(bv.block_count(), 8);
        assert_eq!(bv.reduce(&AddOp), 3);
        assert!(bv.block(5).is_empty());
    }

    #[test]
    fn empty_distributed_vector() {
        let bv: BlockVec<i64> = BlockVec::from_vec(vec![], 4);
        assert!(bv.is_empty());
        assert_eq!(bv.reduce(&AddOp), 0);
        assert_eq!(bv.scan(&AddOp).gather(), Vec::<i64>::new());
    }
}
