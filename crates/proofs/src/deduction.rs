//! Deductions and their execution.
//!
//! "The proof language analog of *expression* is called a *deduction*. Like
//! expressions, deductions are *executed*. Proper deductions … produce
//! theorems and add them to the assumption base; improper deductions result
//! in an error condition." (§3.3)
//!
//! [`eval`] is the proof **checker**: it never searches, it only verifies
//! that each inference step is a correct use of a primitive method against
//! the current assumption base.

use crate::base::AssumptionBase;
use crate::logic::{CaptureError, Prop, Term};
use std::fmt;

/// Why a deduction is improper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// `claim` of a proposition not in the assumption base.
    NotInBase(String),
    /// An inference rule was applied to premises of the wrong shape.
    RuleMismatch {
        /// The rule.
        rule: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// Universal generalization over a variable free in the assumption
    /// base (eigenvariable violation).
    EigenvariableViolation {
        /// The offending variable or witness constant.
        name: String,
    },
    /// Substitution would capture a variable.
    Capture(String),
    /// An empty `Seq`.
    EmptySequence,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NotInBase(p) => {
                write!(f, "claimed proposition is not in the assumption base: {p}")
            }
            ProofError::RuleMismatch { rule, detail } => {
                write!(f, "improper use of `{rule}`: {detail}")
            }
            ProofError::EigenvariableViolation { name } => write!(
                f,
                "eigenvariable violation: `{name}` occurs in the assumption base"
            ),
            ProofError::Capture(v) => write!(f, "substitution would capture `{v}`"),
            ProofError::EmptySequence => write!(f, "empty deduction sequence"),
        }
    }
}

impl std::error::Error for ProofError {}

impl From<CaptureError> for ProofError {
    fn from(e: CaptureError) -> Self {
        ProofError::Capture(e.var)
    }
}

/// Deductions: the primitive methods of the proof language. Each variant is
/// a checked inference rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Ded {
    /// Reiterate a proposition already in the assumption base.
    Claim(Prop),
    /// Hypothetical reasoning: evaluate `body` with `hypothesis` assumed;
    /// yields `hypothesis → body-result` (conditional proof).
    Assume {
        /// The hypothesis.
        hypothesis: Prop,
        /// The sub-deduction under the hypothesis.
        body: Box<Ded>,
    },
    /// Modus ponens: from `p → q` and `p`, yield `q`.
    Mp {
        /// Proof of the implication.
        imp: Box<Ded>,
        /// Proof of the antecedent.
        ant: Box<Ded>,
    },
    /// Modus tollens: from `p → q` and `¬q`, yield `¬p`.
    Mt {
        /// Proof of the implication.
        imp: Box<Ded>,
        /// Proof of the negated consequent.
        neg: Box<Ded>,
    },
    /// Conjunction introduction.
    AndIntro(Box<Ded>, Box<Ded>),
    /// Left conjunct.
    AndElimL(Box<Ded>),
    /// Right conjunct.
    AndElimR(Box<Ded>),
    /// Disjunction introduction (proved left, stated right).
    OrIntroL(Box<Ded>, Prop),
    /// Disjunction introduction (stated left, proved right).
    OrIntroR(Prop, Box<Ded>),
    /// Case analysis: from `p ∨ q`, `p → r`, and `q → r`, yield `r`.
    Cases {
        /// Proof of the disjunction.
        disj: Box<Ded>,
        /// Proof of `p → r`.
        left: Box<Ded>,
        /// Proof of `q → r`.
        right: Box<Ded>,
    },
    /// Bi-implication introduction from the two directions.
    IffIntro {
        /// Proof of `p → q`.
        forward: Box<Ded>,
        /// Proof of `q → p`.
        backward: Box<Ded>,
    },
    /// From `p ↔ q`, yield `p → q`.
    IffElimF(Box<Ded>),
    /// From `p ↔ q`, yield `q → p`.
    IffElimB(Box<Ded>),
    /// From `p` and `¬p`, yield `⊥`.
    Absurd {
        /// Proof of `p`.
        pos: Box<Ded>,
        /// Proof of `¬p`.
        neg: Box<Ded>,
    },
    /// Proof by contradiction: if `body` derives `⊥` under `hypothesis`,
    /// yield `¬hypothesis`.
    ByContradiction {
        /// The refuted hypothesis.
        hypothesis: Prop,
        /// Derivation of absurdity under it.
        body: Box<Ded>,
    },
    /// From `¬¬p`, yield `p` (classical logic).
    DoubleNegElim(Box<Ded>),
    /// Universal generalization over `var` (eigenvariable condition: `var`
    /// must not occur free in the assumption base).
    Generalize {
        /// The generalized variable.
        var: String,
        /// Body proving the matrix with `var` arbitrary.
        body: Box<Ded>,
    },
    /// Universal instantiation with one term.
    Instantiate {
        /// Proof of `∀x. P`.
        forall: Box<Ded>,
        /// The instance term.
        term: Term,
    },
    /// Existential introduction: from a proof of `template[var := witness]`
    /// yield `∃var. template`.
    ExIntro {
        /// The witness term.
        witness: Term,
        /// The bound variable.
        var: String,
        /// The existential matrix.
        template: Prop,
        /// Proof of the instantiated matrix.
        proof: Box<Ded>,
    },
    /// Existential elimination: from `∃x. P`, assume `P[x := fresh]` for a
    /// fresh constant and derive `q` (which must not mention `fresh`).
    ExElim {
        /// Proof of the existential.
        existential: Box<Ded>,
        /// The fresh witness constant name.
        fresh: String,
        /// Derivation of the goal under the witness assumption.
        body: Box<Ded>,
    },
    /// Reflexivity of equality: `t = t`.
    Refl(Term),
    /// Symmetry of equality.
    Sym(Box<Ded>),
    /// Transitivity of equality.
    Trans(Box<Ded>, Box<Ded>),
    /// Leibniz substitution: from `a = b` and a proof of
    /// `template[var := a]`, yield `template[var := b]`.
    Subst {
        /// Proof of the equation `a = b`.
        eq: Box<Ded>,
        /// Proof of the template at `a`.
        proof: Box<Ded>,
        /// The template's hole variable.
        var: String,
        /// The template proposition.
        template: Prop,
    },
    /// Sequential composition (`dbegin`): each result joins the assumption
    /// base for the rest; the value is the last result.
    Seq(Vec<Ded>),
}

impl Ded {
    /// `Box`ed constructor sugar used by the theory modules.
    pub fn claim(p: Prop) -> Ded {
        Ded::Claim(p)
    }

    /// Modus-ponens sugar.
    pub fn mp(imp: Ded, ant: Ded) -> Ded {
        Ded::Mp {
            imp: Box::new(imp),
            ant: Box::new(ant),
        }
    }

    /// Assume sugar.
    pub fn assume(hypothesis: Prop, body: Ded) -> Ded {
        Ded::Assume {
            hypothesis,
            body: Box::new(body),
        }
    }

    /// Instantiate a universal with several terms in sequence.
    pub fn instantiate_all(forall: Ded, terms: Vec<Term>) -> Ded {
        terms.into_iter().fold(forall, |acc, t| Ded::Instantiate {
            forall: Box::new(acc),
            term: t,
        })
    }

    /// Generalize over several variables (innermost-last order).
    pub fn generalize_all(vars: &[&str], body: Ded) -> Ded {
        vars.iter().rev().fold(body, |acc, v| Ded::Generalize {
            var: v.to_string(),
            body: Box::new(acc),
        })
    }

    /// Congruence sugar: from `a = b`, yield
    /// `context[hole := a] = context[hole := b]` (derived via `Refl` +
    /// `Subst`, showing methods compose like the paper promises).
    pub fn cong(eq: Ded, hole: &str, context: Term, lhs: Term) -> Ded {
        let left_fixed = context.subst(hole, &lhs);
        Ded::Subst {
            eq: Box::new(eq),
            proof: Box::new(Ded::Refl(left_fixed.clone())),
            var: hole.to_string(),
            template: Prop::Eq(left_fixed, context),
        }
    }

    /// Rename every symbol in the deduction (the generic-proof
    /// instantiation device: rename axioms and proof together, re-check).
    pub fn rename(&self, map: &crate::logic::SymbolMap) -> Ded {
        match self {
            Ded::Claim(p) => Ded::Claim(p.rename(map)),
            Ded::Assume { hypothesis, body } => Ded::Assume {
                hypothesis: hypothesis.rename(map),
                body: Box::new(body.rename(map)),
            },
            Ded::Mp { imp, ant } => Ded::Mp {
                imp: Box::new(imp.rename(map)),
                ant: Box::new(ant.rename(map)),
            },
            Ded::Mt { imp, neg } => Ded::Mt {
                imp: Box::new(imp.rename(map)),
                neg: Box::new(neg.rename(map)),
            },
            Ded::AndIntro(l, r) => Ded::AndIntro(Box::new(l.rename(map)), Box::new(r.rename(map))),
            Ded::AndElimL(d) => Ded::AndElimL(Box::new(d.rename(map))),
            Ded::AndElimR(d) => Ded::AndElimR(Box::new(d.rename(map))),
            Ded::OrIntroL(d, p) => Ded::OrIntroL(Box::new(d.rename(map)), p.rename(map)),
            Ded::OrIntroR(p, d) => Ded::OrIntroR(p.rename(map), Box::new(d.rename(map))),
            Ded::Cases { disj, left, right } => Ded::Cases {
                disj: Box::new(disj.rename(map)),
                left: Box::new(left.rename(map)),
                right: Box::new(right.rename(map)),
            },
            Ded::IffIntro { forward, backward } => Ded::IffIntro {
                forward: Box::new(forward.rename(map)),
                backward: Box::new(backward.rename(map)),
            },
            Ded::IffElimF(d) => Ded::IffElimF(Box::new(d.rename(map))),
            Ded::IffElimB(d) => Ded::IffElimB(Box::new(d.rename(map))),
            Ded::Absurd { pos, neg } => Ded::Absurd {
                pos: Box::new(pos.rename(map)),
                neg: Box::new(neg.rename(map)),
            },
            Ded::ByContradiction { hypothesis, body } => Ded::ByContradiction {
                hypothesis: hypothesis.rename(map),
                body: Box::new(body.rename(map)),
            },
            Ded::DoubleNegElim(d) => Ded::DoubleNegElim(Box::new(d.rename(map))),
            Ded::Generalize { var, body } => Ded::Generalize {
                var: var.clone(),
                body: Box::new(body.rename(map)),
            },
            Ded::Instantiate { forall, term } => Ded::Instantiate {
                forall: Box::new(forall.rename(map)),
                term: term.rename(map),
            },
            Ded::ExIntro {
                witness,
                var,
                template,
                proof,
            } => Ded::ExIntro {
                witness: witness.rename(map),
                var: var.clone(),
                template: template.rename(map),
                proof: Box::new(proof.rename(map)),
            },
            Ded::ExElim {
                existential,
                fresh,
                body,
            } => Ded::ExElim {
                existential: Box::new(existential.rename(map)),
                fresh: map.apply(fresh),
                body: Box::new(body.rename(map)),
            },
            Ded::Refl(t) => Ded::Refl(t.rename(map)),
            Ded::Sym(d) => Ded::Sym(Box::new(d.rename(map))),
            Ded::Trans(a, b) => Ded::Trans(Box::new(a.rename(map)), Box::new(b.rename(map))),
            Ded::Subst {
                eq,
                proof,
                var,
                template,
            } => Ded::Subst {
                eq: Box::new(eq.rename(map)),
                proof: Box::new(proof.rename(map)),
                var: var.clone(),
                template: template.rename(map),
            },
            Ded::Seq(ds) => Ded::Seq(ds.iter().map(|d| d.rename(map)).collect()),
        }
    }
}

fn mismatch(rule: &'static str, detail: String) -> ProofError {
    ProofError::RuleMismatch { rule, detail }
}

/// Execute (check) a deduction against an assumption base, yielding the
/// proved theorem or the error that makes the deduction improper.
pub fn eval(d: &Ded, ab: &AssumptionBase) -> Result<Prop, ProofError> {
    match d {
        Ded::Claim(p) => {
            if ab.holds(p) {
                Ok(p.clone())
            } else {
                Err(ProofError::NotInBase(p.to_string()))
            }
        }
        Ded::Assume { hypothesis, body } => {
            let inner = ab.with(hypothesis.clone());
            let r = eval(body, &inner)?;
            Ok(Prop::implies(hypothesis.clone(), r))
        }
        Ded::Mp { imp, ant } => {
            let imp = eval(imp, ab)?;
            let ant = eval(ant, ab)?;
            match imp {
                Prop::Implies(p, q) if *p == ant => Ok(*q),
                other => Err(mismatch(
                    "modus-ponens",
                    format!("expected an implication whose antecedent is `{ant}`, got `{other}`"),
                )),
            }
        }
        Ded::Mt { imp, neg } => {
            let imp = eval(imp, ab)?;
            let neg = eval(neg, ab)?;
            match (imp, neg) {
                (Prop::Implies(p, q), Prop::Not(nq)) if *q == *nq => Ok(Prop::not(*p)),
                (i, n) => Err(mismatch(
                    "modus-tollens",
                    format!("premises do not match: `{i}` and `{n}`"),
                )),
            }
        }
        Ded::AndIntro(l, r) => Ok(Prop::and(eval(l, ab)?, eval(r, ab)?)),
        Ded::AndElimL(d) => match eval(d, ab)? {
            Prop::And(l, _) => Ok(*l),
            other => Err(mismatch(
                "and-elim-left",
                format!("not a conjunction: `{other}`"),
            )),
        },
        Ded::AndElimR(d) => match eval(d, ab)? {
            Prop::And(_, r) => Ok(*r),
            other => Err(mismatch(
                "and-elim-right",
                format!("not a conjunction: `{other}`"),
            )),
        },
        Ded::OrIntroL(d, right) => Ok(Prop::or(eval(d, ab)?, right.clone())),
        Ded::OrIntroR(left, d) => Ok(Prop::or(left.clone(), eval(d, ab)?)),
        Ded::Cases { disj, left, right } => {
            let disj = eval(disj, ab)?;
            let left = eval(left, ab)?;
            let right = eval(right, ab)?;
            match (disj, left, right) {
                (Prop::Or(p, q), Prop::Implies(lp, lr), Prop::Implies(rp, rr))
                    if *p == *lp && *q == *rp && lr == rr =>
                {
                    Ok(*lr)
                }
                (d_, l_, r_) => Err(mismatch(
                    "cases",
                    format!("case split does not cover `{d_}`: `{l_}`, `{r_}`"),
                )),
            }
        }
        Ded::IffIntro { forward, backward } => {
            let fw = eval(forward, ab)?;
            let bw = eval(backward, ab)?;
            match (fw, bw) {
                (Prop::Implies(p, q), Prop::Implies(q2, p2)) if p == p2 && q == q2 => {
                    Ok(Prop::Iff(p, q))
                }
                (f_, b_) => Err(mismatch(
                    "iff-intro",
                    format!("directions do not match: `{f_}` and `{b_}`"),
                )),
            }
        }
        Ded::IffElimF(d) => match eval(d, ab)? {
            Prop::Iff(p, q) => Ok(Prop::Implies(p, q)),
            other => Err(mismatch(
                "iff-elim",
                format!("not a bi-implication: `{other}`"),
            )),
        },
        Ded::IffElimB(d) => match eval(d, ab)? {
            Prop::Iff(p, q) => Ok(Prop::Implies(q, p)),
            other => Err(mismatch(
                "iff-elim",
                format!("not a bi-implication: `{other}`"),
            )),
        },
        Ded::Absurd { pos, neg } => {
            let p = eval(pos, ab)?;
            let n = eval(neg, ab)?;
            match n {
                Prop::Not(np) if *np == p => Ok(Prop::falsum()),
                other => Err(mismatch(
                    "absurd",
                    format!("`{other}` is not the negation of `{p}`"),
                )),
            }
        }
        Ded::ByContradiction { hypothesis, body } => {
            let inner = ab.with(hypothesis.clone());
            let r = eval(body, &inner)?;
            if r == Prop::falsum() {
                Ok(Prop::not(hypothesis.clone()))
            } else {
                Err(mismatch(
                    "by-contradiction",
                    format!("body derived `{r}`, not absurdity"),
                ))
            }
        }
        Ded::DoubleNegElim(d) => match eval(d, ab)? {
            Prop::Not(inner) => match *inner {
                Prop::Not(p) => Ok(*p),
                other => Err(mismatch(
                    "double-negation",
                    format!("`¬{other}` is not doubly negated"),
                )),
            },
            other => Err(mismatch(
                "double-negation",
                format!("not a negation: `{other}`"),
            )),
        },
        Ded::Generalize { var, body } => {
            // Eigenvariable condition: `var` arbitrary means it is free in
            // no standing assumption.
            for a in ab.iter() {
                if a.has_free(var) {
                    return Err(ProofError::EigenvariableViolation { name: var.clone() });
                }
            }
            let r = eval(body, ab)?;
            Ok(Prop::Forall(var.clone(), Box::new(r)))
        }
        Ded::Instantiate { forall, term } => match eval(forall, ab)? {
            Prop::Forall(v, body) => Ok(body.subst(&v, term)?),
            other => Err(mismatch(
                "instantiate",
                format!("not a universal: `{other}`"),
            )),
        },
        Ded::ExIntro {
            witness,
            var,
            template,
            proof,
        } => {
            let got = eval(proof, ab)?;
            let want = template.subst(var, witness)?;
            if got == want {
                Ok(Prop::Exists(var.clone(), Box::new(template.clone())))
            } else {
                Err(mismatch(
                    "exists-intro",
                    format!("proved `{got}` but the witness instance is `{want}`"),
                ))
            }
        }
        Ded::ExElim {
            existential,
            fresh,
            body,
        } => {
            let ex = eval(existential, ab)?;
            let Prop::Exists(v, matrix) = ex else {
                return Err(mismatch(
                    "exists-elim",
                    format!("not an existential: `{ex}`"),
                ));
            };
            // Freshness: the witness constant must be genuinely new.
            for a in ab.iter() {
                if a.contains_const(fresh) {
                    return Err(ProofError::EigenvariableViolation {
                        name: fresh.clone(),
                    });
                }
            }
            let witness_assumption = matrix.subst(&v, &Term::cst(fresh))?;
            let inner = ab.with(witness_assumption);
            let q = eval(body, &inner)?;
            if q.contains_const(fresh) {
                return Err(ProofError::EigenvariableViolation {
                    name: fresh.clone(),
                });
            }
            Ok(q)
        }
        Ded::Refl(t) => Ok(Prop::Eq(t.clone(), t.clone())),
        Ded::Sym(d) => match eval(d, ab)? {
            Prop::Eq(a, b) => Ok(Prop::Eq(b, a)),
            other => Err(mismatch("symmetry", format!("not an equation: `{other}`"))),
        },
        Ded::Trans(a, b) => {
            let ea = eval(a, ab)?;
            let eb = eval(b, ab)?;
            match (ea, eb) {
                (Prop::Eq(x, y1), Prop::Eq(y2, z)) if y1 == y2 => Ok(Prop::Eq(x, z)),
                (p, q) => Err(mismatch(
                    "transitivity",
                    format!("middle terms differ: `{p}` vs `{q}`"),
                )),
            }
        }
        Ded::Subst {
            eq,
            proof,
            var,
            template,
        } => {
            let eq = eval(eq, ab)?;
            let Prop::Eq(a, b) = eq else {
                return Err(mismatch("subst", format!("not an equation: `{eq}`")));
            };
            let got = eval(proof, ab)?;
            let want = template.subst(var, &a)?;
            if got != want {
                return Err(mismatch(
                    "subst",
                    format!("proved `{got}` but the template at the LHS is `{want}`"),
                ));
            }
            Ok(template.subst(var, &b)?)
        }
        Ded::Seq(ds) => {
            if ds.is_empty() {
                return Err(ProofError::EmptySequence);
            }
            let mut local = ab.clone();
            let mut last = None;
            for d in ds {
                let r = eval(d, &local)?;
                local.assert(r.clone());
                last = Some(r);
            }
            Ok(last.expect("non-empty"))
        }
    }
}

/// Check a deduction and assert its theorem into the base (the session
/// workflow: proper deductions extend the assumption base).
pub fn check_and_assert(d: &Ded, ab: &mut AssumptionBase) -> Result<Prop, ProofError> {
    let p = eval(d, ab)?;
    ab.assert(p.clone());
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::SymbolMap;

    fn p() -> Prop {
        Prop::atom("p", vec![])
    }
    fn q() -> Prop {
        Prop::atom("q", vec![])
    }

    #[test]
    fn claim_requires_membership() {
        let ab = AssumptionBase::from_axioms([p()]);
        assert_eq!(eval(&Ded::Claim(p()), &ab), Ok(p()));
        assert!(matches!(
            eval(&Ded::Claim(q()), &ab),
            Err(ProofError::NotInBase(_))
        ));
    }

    #[test]
    fn modus_ponens_checks_shapes() {
        let ab = AssumptionBase::from_axioms([Prop::implies(p(), q()), p()]);
        let d = Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(p()));
        assert_eq!(eval(&d, &ab), Ok(q()));
        // Wrong antecedent.
        let ab2 = AssumptionBase::from_axioms([Prop::implies(p(), q()), q()]);
        let d = Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(q()));
        assert!(matches!(
            eval(&d, &ab2),
            Err(ProofError::RuleMismatch {
                rule: "modus-ponens",
                ..
            })
        ));
    }

    #[test]
    fn conditional_proof_discharges_hypothesis() {
        // ⊢ p → p, from nothing.
        let d = Ded::assume(p(), Ded::Claim(p()));
        let ab = AssumptionBase::new();
        assert_eq!(eval(&d, &ab), Ok(Prop::implies(p(), p())));
        // The hypothesis does not leak into the outer base.
        assert!(!ab.holds(&p()));
    }

    #[test]
    fn hypothetical_syllogism_composes() {
        // From p→q and q→r derive p→r.
        let r = Prop::atom("r", vec![]);
        let ab =
            AssumptionBase::from_axioms([Prop::implies(p(), q()), Prop::implies(q(), r.clone())]);
        let d = Ded::assume(
            p(),
            Ded::mp(
                Ded::Claim(Prop::implies(q(), r.clone())),
                Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(p())),
            ),
        );
        assert_eq!(eval(&d, &ab), Ok(Prop::implies(p(), r)));
    }

    #[test]
    fn case_analysis() {
        let r = Prop::atom("r", vec![]);
        let ab = AssumptionBase::from_axioms([
            Prop::or(p(), q()),
            Prop::implies(p(), r.clone()),
            Prop::implies(q(), r.clone()),
        ]);
        let d = Ded::Cases {
            disj: Box::new(Ded::Claim(Prop::or(p(), q()))),
            left: Box::new(Ded::Claim(Prop::implies(p(), r.clone()))),
            right: Box::new(Ded::Claim(Prop::implies(q(), r.clone()))),
        };
        assert_eq!(eval(&d, &ab), Ok(r));
    }

    #[test]
    fn by_contradiction_yields_negation() {
        // From p, refute ¬p: assume ¬p, derive ⊥, conclude ¬¬p; then elim.
        let ab = AssumptionBase::from_axioms([p()]);
        let d = Ded::DoubleNegElim(Box::new(Ded::ByContradiction {
            hypothesis: Prop::not(p()),
            body: Box::new(Ded::Absurd {
                pos: Box::new(Ded::Claim(p())),
                neg: Box::new(Ded::Claim(Prop::not(p()))),
            }),
        }));
        assert_eq!(eval(&d, &ab), Ok(p()));
    }

    #[test]
    fn generalization_enforces_eigenvariable_condition() {
        let pa = Prop::atom("P", vec![Term::var("a")]);
        // With P(a) assumed, generalizing over `a` is unsound — rejected.
        let ab = AssumptionBase::from_axioms([pa.clone()]);
        let d = Ded::Generalize {
            var: "a".to_string(),
            body: Box::new(Ded::Claim(pa.clone())),
        };
        assert!(matches!(
            eval(&d, &ab),
            Err(ProofError::EigenvariableViolation { .. })
        ));
        // From ∀x. P(x), instantiate at `a` then re-generalize: fine, since
        // `a` is not free in the base.
        let all = Prop::Forall(
            "x".to_string(),
            Box::new(Prop::atom("P", vec![Term::var("x")])),
        );
        let ab = AssumptionBase::from_axioms([all.clone()]);
        let d = Ded::Generalize {
            var: "a".to_string(),
            body: Box::new(Ded::Instantiate {
                forall: Box::new(Ded::Claim(all)),
                term: Term::var("a"),
            }),
        };
        let r = eval(&d, &ab).unwrap();
        assert_eq!(r.to_string(), "∀a. P(a)");
    }

    #[test]
    fn equality_rules_chain() {
        let (a, b, c) = (Term::cst("a"), Term::cst("b"), Term::cst("c"));
        let ab = AssumptionBase::from_axioms([
            Prop::Eq(a.clone(), b.clone()),
            Prop::Eq(b.clone(), c.clone()),
        ]);
        let d = Ded::Trans(
            Box::new(Ded::Claim(Prop::Eq(a.clone(), b.clone()))),
            Box::new(Ded::Claim(Prop::Eq(b.clone(), c.clone()))),
        );
        assert_eq!(eval(&d, &ab), Ok(Prop::Eq(a.clone(), c.clone())));
        let d = Ded::Sym(Box::new(Ded::Claim(Prop::Eq(a.clone(), b.clone()))));
        assert_eq!(eval(&d, &ab), Ok(Prop::Eq(b, a)));
    }

    #[test]
    fn congruence_via_subst() {
        // From a = b conclude op(a, c) = op(b, c).
        let (a, b, c) = (Term::cst("a"), Term::cst("b"), Term::cst("c"));
        let ab = AssumptionBase::from_axioms([Prop::Eq(a.clone(), b.clone())]);
        let ctx = Term::app("op", vec![Term::var("hole"), c.clone()]);
        let d = Ded::cong(
            Ded::Claim(Prop::Eq(a.clone(), b.clone())),
            "hole",
            ctx,
            a.clone(),
        );
        let r = eval(&d, &ab).unwrap();
        assert_eq!(r.to_string(), "op(a, c) = op(b, c)");
    }

    #[test]
    fn existential_intro_and_elim() {
        let px = Prop::atom("P", vec![Term::var("x")]);
        let pa = Prop::atom("P", vec![Term::cst("a")]);
        let ab = AssumptionBase::from_axioms([
            pa.clone(),
            Prop::forall(&["x"], Prop::implies(px.clone(), q())),
        ]);
        // ∃x. P(x) from P(a).
        let ex = Ded::ExIntro {
            witness: Term::cst("a"),
            var: "x".to_string(),
            template: px.clone(),
            proof: Box::new(Ded::Claim(pa)),
        };
        let exp = eval(&ex, &ab).unwrap();
        assert_eq!(exp.to_string(), "∃x. P(x)");
        // Eliminate with a fresh witness `w`: P(w) → q by the axiom.
        let d = Ded::ExElim {
            existential: Box::new(ex),
            fresh: "w".to_string(),
            body: Box::new(Ded::mp(
                Ded::Instantiate {
                    forall: Box::new(Ded::Claim(Prop::forall(
                        &["x"],
                        Prop::implies(px.clone(), q()),
                    ))),
                    term: Term::cst("w"),
                },
                Ded::Claim(Prop::atom("P", vec![Term::cst("w")])),
            )),
        };
        assert_eq!(eval(&d, &ab), Ok(q()));
    }

    #[test]
    fn existential_elim_rejects_leaky_witness() {
        let px = Prop::atom("P", vec![Term::var("x")]);
        let pa = Prop::atom("P", vec![Term::cst("a")]);
        let ab = AssumptionBase::from_axioms([pa.clone()]);
        let ex = Ded::ExIntro {
            witness: Term::cst("a"),
            var: "x".to_string(),
            template: px.clone(),
            proof: Box::new(Ded::Claim(pa)),
        };
        // Body "concludes" P(w): mentions the fresh constant — rejected.
        let d = Ded::ExElim {
            existential: Box::new(ex),
            fresh: "w".to_string(),
            body: Box::new(Ded::Claim(Prop::atom("P", vec![Term::cst("w")]))),
        };
        assert!(matches!(
            eval(&d, &ab),
            Err(ProofError::EigenvariableViolation { .. })
        ));
    }

    #[test]
    fn seq_threads_intermediate_theorems() {
        let r = Prop::atom("r", vec![]);
        let ab = AssumptionBase::from_axioms([
            p(),
            Prop::implies(p(), q()),
            Prop::implies(q(), r.clone()),
        ]);
        let d = Ded::Seq(vec![
            Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(p())),
            // q is now available to claim:
            Ded::mp(Ded::Claim(Prop::implies(q(), r.clone())), Ded::Claim(q())),
        ]);
        assert_eq!(eval(&d, &ab), Ok(r));
        assert!(matches!(
            eval(&Ded::Seq(vec![]), &ab),
            Err(ProofError::EmptySequence)
        ));
    }

    #[test]
    fn renamed_deduction_checks_against_renamed_axioms() {
        // Generic: from P → Q and P derive Q; rename P↦Rain, Q↦Wet.
        let ab_gen = AssumptionBase::from_axioms([Prop::implies(p(), q()), p()]);
        let d = Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(p()));
        assert!(eval(&d, &ab_gen).is_ok());
        let map = SymbolMap::new([("p", "rain"), ("q", "wet")]);
        let ab_conc = AssumptionBase::from_axioms([
            Prop::implies(Prop::atom("rain", vec![]), Prop::atom("wet", vec![])),
            Prop::atom("rain", vec![]),
        ]);
        let d2 = d.rename(&map);
        assert_eq!(eval(&d2, &ab_conc), Ok(Prop::atom("wet", vec![])));
        // And the un-renamed proof fails against the concrete base.
        assert!(eval(&d, &ab_conc).is_err());
    }

    #[test]
    fn check_and_assert_grows_the_base() {
        let mut ab = AssumptionBase::from_axioms([p(), Prop::implies(p(), q())]);
        let d = Ded::mp(Ded::Claim(Prop::implies(p(), q())), Ded::Claim(p()));
        let t = check_and_assert(&d, &mut ab).unwrap();
        assert_eq!(t, q());
        assert!(ab.holds(&q()));
    }
}
