//! # gp-proofs — a Denotational Proof Language checker (Athena-style)
//!
//! Reproduction of the paper's §3.3. The design follows Arkoudas's DPL
//! architecture as the paper describes it:
//!
//! * an **assumption base** — "an associative memory of propositions that
//!   have been asserted or proved in a proof session; … all proof activity
//!   centers around it" ([`base::AssumptionBase`]);
//! * **deductions** that are *executed*: "proper deductions … produce
//!   theorems and add them to the assumption base; improper deductions
//!   result in an error condition" ([`deduction::Ded`],
//!   [`deduction::eval`]);
//! * **first-class methods**: proof-building functions are ordinary Rust
//!   functions returning [`deduction::Ded`] values, composable and
//!   parameterizable;
//! * **genericity without modules**: theories are "parameterized … by
//!   functions that carry operator mappings" — a generic proof over
//!   abstract symbols is *renamed* onto concrete symbols and re-checked
//!   ([`logic::SymbolMap`], [`theories`]). Proof **checking** is all the
//!   engine ever does; there is no proof search.
//!
//! The flagship content is [`theories::order`]: the Strict Weak Order
//! axioms of Fig. 6 with machine-checked derivations of the symmetry and
//! reflexivity of the induced equivalence — the paper's exact example —
//! plus monoid/group theories ([`theories::monoid`], [`theories::group`])
//! covering the algebraic concepts the optimizer keys on.

pub mod base;
pub mod deduction;
pub mod logic;
pub mod theories;

pub use base::AssumptionBase;
pub use deduction::{eval, Ded, ProofError};
pub use logic::{Prop, SymbolMap, Term};
