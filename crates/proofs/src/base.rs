//! The assumption base: "an associative memory of propositions that have
//! been asserted or proved in a proof session" (§3.3).

use crate::logic::Prop;
use std::collections::HashSet;

/// An assumption base. Insertion-ordered for display, hashed for lookup.
#[derive(Clone, Debug, Default)]
pub struct AssumptionBase {
    order: Vec<Prop>,
    set: HashSet<Prop>,
}

impl AssumptionBase {
    /// An empty base.
    pub fn new() -> Self {
        AssumptionBase::default()
    }

    /// Build from asserted axioms.
    pub fn from_axioms(axioms: impl IntoIterator<Item = Prop>) -> Self {
        let mut ab = AssumptionBase::new();
        for a in axioms {
            ab.assert(a);
        }
        ab
    }

    /// Assert a proposition (axiom or proved theorem).
    pub fn assert(&mut self, p: Prop) {
        if self.set.insert(p.clone()) {
            self.order.push(p);
        }
    }

    /// Membership test — the `claim` primitive's justification.
    pub fn holds(&self, p: &Prop) -> bool {
        self.set.contains(p)
    }

    /// Number of propositions held.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterate in assertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Prop> {
        self.order.iter()
    }

    /// A copy with one extra hypothesis (hypothetical reasoning).
    pub fn with(&self, p: Prop) -> AssumptionBase {
        let mut ab = self.clone();
        ab.assert(p);
        ab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{Prop, Term};

    #[test]
    fn assert_and_holds() {
        let p = Prop::atom("lt", vec![Term::var("a"), Term::var("b")]);
        let mut ab = AssumptionBase::new();
        assert!(!ab.holds(&p));
        ab.assert(p.clone());
        assert!(ab.holds(&p));
        assert_eq!(ab.len(), 1);
        // Re-assertion is idempotent.
        ab.assert(p.clone());
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn with_leaves_original_untouched() {
        let p = Prop::falsum();
        let ab = AssumptionBase::new();
        let ab2 = ab.with(p.clone());
        assert!(ab2.holds(&p));
        assert!(!ab.holds(&p));
    }

    #[test]
    fn iteration_preserves_order() {
        let mut ab = AssumptionBase::new();
        ab.assert(Prop::atom("p", vec![]));
        ab.assert(Prop::atom("q", vec![]));
        let names: Vec<String> = ab.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["p", "q"]);
    }
}
