//! Terms, propositions, substitution, and symbol renaming.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// First-order terms.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (bindable by quantifiers).
    Var(String),
    /// A constant symbol (e.g. the monoid identity `e`).
    Const(String),
    /// Function application, e.g. `op(a, b)`.
    App(String, Vec<Term>),
}

impl Term {
    /// Variable shorthand.
    pub fn var(n: &str) -> Term {
        Term::Var(n.to_string())
    }

    /// Constant shorthand.
    pub fn cst(n: &str) -> Term {
        Term::Const(n.to_string())
    }

    /// Application shorthand.
    pub fn app(f: &str, args: Vec<Term>) -> Term {
        Term::App(f.to_string(), args)
    }

    /// Substitute `var := t`.
    pub fn subst(&self, var: &str, t: &Term) -> Term {
        match self {
            Term::Var(v) if v == var => t.clone(),
            Term::Var(_) | Term::Const(_) => self.clone(),
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| a.subst(var, t)).collect())
            }
        }
    }

    /// Collect free variables.
    pub fn free_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Const(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// True if the constant symbol occurs anywhere in the term.
    pub fn contains_const(&self, name: &str) -> bool {
        match self {
            Term::Const(c) => c == name,
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().any(|a| a.contains_const(name)),
        }
    }

    /// Rename function and constant symbols (the operator-mapping engine of
    /// generic proofs).
    pub fn rename(&self, map: &SymbolMap) -> Term {
        match self {
            Term::Var(v) => Term::Var(v.clone()),
            Term::Const(c) => Term::Const(map.apply(c)),
            Term::App(f, args) => {
                Term::App(map.apply(f), args.iter().map(|a| a.rename(map)).collect())
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// First-order propositions.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prop {
    /// Relation application (`lt(a, b)`); zero-ary atoms are propositional
    /// constants, including the absurdity atom [`Prop::falsum`].
    Atom(String, Vec<Term>),
    /// Term equality.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Prop>),
    /// Conjunction.
    And(Box<Prop>, Box<Prop>),
    /// Disjunction.
    Or(Box<Prop>, Box<Prop>),
    /// Implication.
    Implies(Box<Prop>, Box<Prop>),
    /// Bi-implication.
    Iff(Box<Prop>, Box<Prop>),
    /// Universal quantification over one variable.
    Forall(String, Box<Prop>),
    /// Existential quantification over one variable.
    Exists(String, Box<Prop>),
}

/// Substitution failed because the substituted term would be captured by an
/// inner quantifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureError {
    /// The variable being substituted for.
    pub var: String,
    /// The capturing binder.
    pub binder: String,
}

impl Prop {
    /// Relation-application shorthand.
    pub fn atom(name: &str, args: Vec<Term>) -> Prop {
        Prop::Atom(name.to_string(), args)
    }

    /// The absurdity proposition `⊥`.
    pub fn falsum() -> Prop {
        Prop::Atom("false".to_string(), Vec::new())
    }

    /// Negation shorthand (a constructor, like `and`/`or`/`implies` — not
    /// the `std::ops::Not` trait, which takes `self`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Prop) -> Prop {
        Prop::Not(Box::new(p))
    }

    /// Conjunction shorthand.
    pub fn and(l: Prop, r: Prop) -> Prop {
        Prop::And(Box::new(l), Box::new(r))
    }

    /// Disjunction shorthand.
    pub fn or(l: Prop, r: Prop) -> Prop {
        Prop::Or(Box::new(l), Box::new(r))
    }

    /// Implication shorthand.
    pub fn implies(l: Prop, r: Prop) -> Prop {
        Prop::Implies(Box::new(l), Box::new(r))
    }

    /// Bi-implication shorthand.
    pub fn iff(l: Prop, r: Prop) -> Prop {
        Prop::Iff(Box::new(l), Box::new(r))
    }

    /// Nested universal quantification over several variables.
    pub fn forall(vars: &[&str], body: Prop) -> Prop {
        vars.iter()
            .rev()
            .fold(body, |acc, v| Prop::Forall(v.to_string(), Box::new(acc)))
    }

    /// Existential shorthand.
    pub fn exists(var: &str, body: Prop) -> Prop {
        Prop::Exists(var.to_string(), Box::new(body))
    }

    /// Capture-avoiding substitution `var := t` (errors instead of
    /// renaming on capture — in-tree proofs simply pick fresh names).
    pub fn subst(&self, var: &str, t: &Term) -> Result<Prop, CaptureError> {
        let mut t_vars = BTreeSet::new();
        t.free_vars(&mut t_vars);
        self.subst_inner(var, t, &t_vars)
    }

    fn subst_inner(
        &self,
        var: &str,
        t: &Term,
        t_vars: &BTreeSet<String>,
    ) -> Result<Prop, CaptureError> {
        Ok(match self {
            Prop::Atom(r, args) => {
                Prop::Atom(r.clone(), args.iter().map(|a| a.subst(var, t)).collect())
            }
            Prop::Eq(l, r) => Prop::Eq(l.subst(var, t), r.subst(var, t)),
            Prop::Not(p) => Prop::Not(Box::new(p.subst_inner(var, t, t_vars)?)),
            Prop::And(l, r) => Prop::And(
                Box::new(l.subst_inner(var, t, t_vars)?),
                Box::new(r.subst_inner(var, t, t_vars)?),
            ),
            Prop::Or(l, r) => Prop::Or(
                Box::new(l.subst_inner(var, t, t_vars)?),
                Box::new(r.subst_inner(var, t, t_vars)?),
            ),
            Prop::Implies(l, r) => Prop::Implies(
                Box::new(l.subst_inner(var, t, t_vars)?),
                Box::new(r.subst_inner(var, t, t_vars)?),
            ),
            Prop::Iff(l, r) => Prop::Iff(
                Box::new(l.subst_inner(var, t, t_vars)?),
                Box::new(r.subst_inner(var, t, t_vars)?),
            ),
            Prop::Forall(v, body) | Prop::Exists(v, body) => {
                let rebuild = |b: Box<Prop>| match self {
                    Prop::Forall(..) => Prop::Forall(v.clone(), b),
                    _ => Prop::Exists(v.clone(), b),
                };
                if v == var {
                    // Shadowed: substitution stops here.
                    return Ok(self.clone());
                }
                if t_vars.contains(v) {
                    // The substituted term mentions the binder's variable.
                    let mut free = BTreeSet::new();
                    self.free_vars(&mut free);
                    if free.contains(var) {
                        return Err(CaptureError {
                            var: var.to_string(),
                            binder: v.clone(),
                        });
                    }
                    return Ok(self.clone());
                }
                rebuild(Box::new(body.subst_inner(var, t, t_vars)?))
            }
        })
    }

    /// Collect free variables.
    pub fn free_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Prop::Atom(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Prop::Eq(l, r) => {
                l.free_vars(out);
                r.free_vars(out);
            }
            Prop::Not(p) => p.free_vars(out),
            Prop::And(l, r) | Prop::Or(l, r) | Prop::Implies(l, r) | Prop::Iff(l, r) => {
                l.free_vars(out);
                r.free_vars(out);
            }
            Prop::Forall(v, body) | Prop::Exists(v, body) => {
                let mut inner = BTreeSet::new();
                body.free_vars(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
        }
    }

    /// True if the variable occurs free.
    pub fn has_free(&self, var: &str) -> bool {
        let mut vars = BTreeSet::new();
        self.free_vars(&mut vars);
        vars.contains(var)
    }

    /// True if the constant symbol occurs anywhere.
    pub fn contains_const(&self, name: &str) -> bool {
        match self {
            Prop::Atom(_, args) => args.iter().any(|a| a.contains_const(name)),
            Prop::Eq(l, r) => l.contains_const(name) || r.contains_const(name),
            Prop::Not(p) => p.contains_const(name),
            Prop::And(l, r) | Prop::Or(l, r) | Prop::Implies(l, r) | Prop::Iff(l, r) => {
                l.contains_const(name) || r.contains_const(name)
            }
            Prop::Forall(_, body) | Prop::Exists(_, body) => body.contains_const(name),
        }
    }

    /// Rename relation, function, and constant symbols.
    pub fn rename(&self, map: &SymbolMap) -> Prop {
        match self {
            Prop::Atom(r, args) => {
                Prop::Atom(map.apply(r), args.iter().map(|a| a.rename(map)).collect())
            }
            Prop::Eq(l, r) => Prop::Eq(l.rename(map), r.rename(map)),
            Prop::Not(p) => Prop::Not(Box::new(p.rename(map))),
            Prop::And(l, r) => Prop::And(Box::new(l.rename(map)), Box::new(r.rename(map))),
            Prop::Or(l, r) => Prop::Or(Box::new(l.rename(map)), Box::new(r.rename(map))),
            Prop::Implies(l, r) => Prop::Implies(Box::new(l.rename(map)), Box::new(r.rename(map))),
            Prop::Iff(l, r) => Prop::Iff(Box::new(l.rename(map)), Box::new(r.rename(map))),
            Prop::Forall(v, body) => Prop::Forall(v.clone(), Box::new(body.rename(map))),
            Prop::Exists(v, body) => Prop::Exists(v.clone(), Box::new(body.rename(map))),
        }
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prop::Atom(r, args) if args.is_empty() => write!(f, "{r}"),
            Prop::Atom(r, args) => {
                write!(f, "{r}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Prop::Eq(l, r) => write!(f, "{l} = {r}"),
            Prop::Not(p) => write!(f, "¬{p}"),
            Prop::And(l, r) => write!(f, "({l} ∧ {r})"),
            Prop::Or(l, r) => write!(f, "({l} ∨ {r})"),
            Prop::Implies(l, r) => write!(f, "({l} → {r})"),
            Prop::Iff(l, r) => write!(f, "({l} ↔ {r})"),
            Prop::Forall(v, body) => write!(f, "∀{v}. {body}"),
            Prop::Exists(v, body) => write!(f, "∃{v}. {body}"),
        }
    }
}

/// An operator mapping: the generic-proof instantiation device. Symbols not
/// in the map pass through unchanged.
#[derive(Clone, Debug, Default)]
pub struct SymbolMap {
    map: BTreeMap<String, String>,
}

impl SymbolMap {
    /// Build from pairs `(abstract, concrete)`.
    pub fn new<S: Into<String>, T: Into<String>>(pairs: impl IntoIterator<Item = (S, T)>) -> Self {
        SymbolMap {
            map: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Apply to one symbol.
    pub fn apply(&self, sym: &str) -> String {
        self.map
            .get(sym)
            .cloned()
            .unwrap_or_else(|| sym.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(a: Term, b: Term) -> Prop {
        Prop::atom("lt", vec![a, b])
    }

    #[test]
    fn display_reads_like_logic() {
        let p = Prop::forall(
            &["a", "b"],
            Prop::implies(
                lt(Term::var("a"), Term::var("b")),
                Prop::not(lt(Term::var("b"), Term::var("a"))),
            ),
        );
        assert_eq!(p.to_string(), "∀a. ∀b. (lt(a, b) → ¬lt(b, a))");
    }

    #[test]
    fn substitution_replaces_free_occurrences_only() {
        let p = Prop::and(
            lt(Term::var("a"), Term::var("b")),
            Prop::Forall(
                "a".to_string(),
                Box::new(lt(Term::var("a"), Term::var("b"))),
            ),
        );
        let q = p.subst("a", &Term::cst("zero")).unwrap();
        assert_eq!(
            q.to_string(),
            "(lt(zero, b) ∧ ∀a. lt(a, b))" // bound `a` untouched
        );
    }

    #[test]
    fn capture_is_detected() {
        // Substituting b := a into ∀a. lt(a, b) would capture.
        let p = Prop::Forall(
            "a".to_string(),
            Box::new(lt(Term::var("a"), Term::var("b"))),
        );
        let err = p.subst("b", &Term::var("a")).unwrap_err();
        assert_eq!(err.binder, "a");
    }

    #[test]
    fn free_vars_respect_binders() {
        let p = Prop::forall(&["a"], lt(Term::var("a"), Term::var("b")));
        let mut fv = BTreeSet::new();
        p.free_vars(&mut fv);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["b"]);
        assert!(p.has_free("b"));
        assert!(!p.has_free("a"));
    }

    #[test]
    fn renaming_maps_all_symbol_kinds() {
        let p = Prop::Eq(
            Term::app("op", vec![Term::var("x"), Term::cst("e")]),
            Term::var("x"),
        );
        let map = SymbolMap::new([("op", "add"), ("e", "zero")]);
        assert_eq!(p.rename(&map).to_string(), "add(x, zero) = x");
        // Relation symbols too.
        let q = Prop::atom("lt", vec![Term::var("x"), Term::var("y")]);
        let map = SymbolMap::new([("lt", "int_lt")]);
        assert_eq!(q.rename(&map).to_string(), "int_lt(x, y)");
    }

    #[test]
    fn const_occurrence_check() {
        let p = Prop::Eq(
            Term::app("op", vec![Term::cst("c0"), Term::var("x")]),
            Term::var("x"),
        );
        assert!(p.contains_const("c0"));
        assert!(!p.contains_const("c1"));
    }

    #[test]
    fn nested_forall_builder_orders_binders() {
        let p = Prop::forall(&["a", "b", "c"], Prop::falsum());
        assert_eq!(p.to_string(), "∀a. ∀b. ∀c. false");
    }
}
