//! Generic theories: axioms packaged with machine-checked proofs that can
//! be instantiated per model.
//!
//! This realizes the paper's organization strategy: "we package up sets of
//! axioms into functions, pass them around … and we simulate
//! type-parameterization simply by parameterizing functions and methods by
//! functions that carry operator mappings." A [`Theory`] is checked once
//! over abstract symbols; [`Theory::instantiate`] renames axioms *and
//! proofs* onto a concrete model's symbols, and the renamed proofs re-check
//! — "one can express a proof once and subsequently instantiate it many
//! times", amortizing the proof effort over all instances.

pub mod group;
pub mod monoid;
pub mod order;
pub mod ring;

use crate::base::AssumptionBase;
use crate::deduction::{eval, Ded, ProofError};
use crate::logic::{Prop, SymbolMap};

/// A named theorem: a statement and the deduction that proves it.
#[derive(Clone, Debug)]
pub struct NamedTheorem {
    /// Theorem name.
    pub name: String,
    /// The statement the proof must yield.
    pub statement: Prop,
    /// The checked proof.
    pub proof: Ded,
}

/// A theory: axioms plus proved theorems.
#[derive(Clone, Debug)]
pub struct Theory {
    /// Theory name.
    pub name: String,
    /// Asserted axioms.
    pub axioms: Vec<Prop>,
    /// Theorems proved from them (earlier theorems usable by later proofs).
    pub theorems: Vec<NamedTheorem>,
}

/// A theorem's proof yielded a different proposition than its statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TheoryError {
    /// Which theorem failed.
    pub theorem: String,
    /// The underlying failure.
    pub error: TheoryErrorKind,
}

/// The ways a theory check fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryErrorKind {
    /// The deduction itself was improper.
    Proof(ProofError),
    /// The deduction proved something other than the stated theorem.
    WrongStatement {
        /// What it actually proved.
        proved: String,
        /// What was claimed.
        stated: String,
    },
}

impl Theory {
    /// Check every theorem in order (each proved theorem joins the base for
    /// the next). Returns the proved propositions.
    pub fn check(&self) -> Result<Vec<Prop>, TheoryError> {
        let mut ab = AssumptionBase::from_axioms(self.axioms.iter().cloned());
        let mut proved = Vec::new();
        for t in &self.theorems {
            let p = eval(&t.proof, &ab).map_err(|e| TheoryError {
                theorem: t.name.clone(),
                error: TheoryErrorKind::Proof(e),
            })?;
            if p != t.statement {
                return Err(TheoryError {
                    theorem: t.name.clone(),
                    error: TheoryErrorKind::WrongStatement {
                        proved: p.to_string(),
                        stated: t.statement.to_string(),
                    },
                });
            }
            ab.assert(p.clone());
            proved.push(p);
        }
        Ok(proved)
    }

    /// Instantiate the theory onto concrete symbols: axioms, statements, and
    /// proofs are all renamed. The result is checked like any other theory —
    /// the language processor "must only do proof checking, not proof
    /// search".
    pub fn instantiate(&self, instance_name: &str, map: &SymbolMap) -> Theory {
        Theory {
            name: format!("{}[{instance_name}]", self.name),
            axioms: self.axioms.iter().map(|a| a.rename(map)).collect(),
            theorems: self
                .theorems
                .iter()
                .map(|t| NamedTheorem {
                    name: format!("{}@{instance_name}", t.name),
                    statement: t.statement.rename(map),
                    proof: t.proof.rename(map),
                })
                .collect(),
        }
    }

    /// Total number of deduction nodes across all proofs (proof-size
    /// metric for the E8 amortization table).
    pub fn proof_size(&self) -> usize {
        fn size(d: &Ded) -> usize {
            match d {
                Ded::Claim(_) | Ded::Refl(_) => 1,
                Ded::Assume { body, .. }
                | Ded::ByContradiction { body, .. }
                | Ded::Generalize { body, .. } => 1 + size(body),
                Ded::Mp { imp, ant } => 1 + size(imp) + size(ant),
                Ded::Mt { imp, neg } => 1 + size(imp) + size(neg),
                Ded::AndIntro(a, b) | Ded::Trans(a, b) => 1 + size(a) + size(b),
                Ded::AndElimL(d)
                | Ded::AndElimR(d)
                | Ded::IffElimF(d)
                | Ded::IffElimB(d)
                | Ded::DoubleNegElim(d)
                | Ded::Sym(d) => 1 + size(d),
                Ded::OrIntroL(d, _) | Ded::OrIntroR(_, d) => 1 + size(d),
                Ded::Cases { disj, left, right } => 1 + size(disj) + size(left) + size(right),
                Ded::IffIntro { forward, backward } => 1 + size(forward) + size(backward),
                Ded::Absurd { pos, neg } => 1 + size(pos) + size(neg),
                Ded::Instantiate { forall, .. } => 1 + size(forall),
                Ded::ExIntro { proof, .. } => 1 + size(proof),
                Ded::ExElim {
                    existential, body, ..
                } => 1 + size(existential) + size(body),
                Ded::Subst { eq, proof, .. } => 1 + size(eq) + size(proof),
                Ded::Seq(ds) => 1 + ds.iter().map(size).sum::<usize>(),
            }
        }
        self.theorems.iter().map(|t| size(&t.proof)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Term;

    #[test]
    fn theory_check_rejects_wrong_statement() {
        let t = Theory {
            name: "bogus".into(),
            axioms: vec![Prop::atom("p", vec![])],
            theorems: vec![NamedTheorem {
                name: "lie".into(),
                statement: Prop::atom("q", vec![]),
                proof: Ded::Claim(Prop::atom("p", vec![])),
            }],
        };
        let err = t.check().unwrap_err();
        assert!(matches!(err.error, TheoryErrorKind::WrongStatement { .. }));
    }

    #[test]
    fn later_theorems_may_use_earlier_ones() {
        let p = Prop::atom("p", vec![]);
        let q = Prop::atom("q", vec![]);
        let t = Theory {
            name: "chain".into(),
            axioms: vec![p.clone(), Prop::implies(p.clone(), q.clone())],
            theorems: vec![
                NamedTheorem {
                    name: "q".into(),
                    statement: q.clone(),
                    proof: Ded::mp(
                        Ded::Claim(Prop::implies(p.clone(), q.clone())),
                        Ded::Claim(p.clone()),
                    ),
                },
                NamedTheorem {
                    name: "p-and-q".into(),
                    statement: Prop::and(p.clone(), q.clone()),
                    // q is claimable only because the previous theorem was
                    // asserted into the base.
                    proof: Ded::AndIntro(
                        Box::new(Ded::Claim(p.clone())),
                        Box::new(Ded::Claim(q.clone())),
                    ),
                },
            ],
        };
        assert_eq!(t.check().unwrap().len(), 2);
        assert!(t.proof_size() >= 5);
    }

    #[test]
    fn instantiation_renames_axioms_and_proofs_consistently() {
        let t = Theory {
            name: "tiny".into(),
            axioms: vec![Prop::Eq(Term::cst("e"), Term::cst("e"))],
            theorems: vec![NamedTheorem {
                name: "sym".into(),
                statement: Prop::Eq(Term::cst("e"), Term::cst("e")),
                proof: Ded::Sym(Box::new(Ded::Claim(Prop::Eq(
                    Term::cst("e"),
                    Term::cst("e"),
                )))),
            }],
        };
        let inst = t.instantiate("ints", &SymbolMap::new([("e", "zero")]));
        assert!(inst.check().is_ok());
        assert!(inst.axioms[0].to_string().contains("zero"));
        assert_eq!(inst.name, "tiny[ints]");
    }
}
