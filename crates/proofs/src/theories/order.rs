//! The Strict Weak Order theory (paper Fig. 6), with the machine-checked
//! derivations the paper calls for: "From these axioms two additional
//! properties of E, symmetry and reflexivity, can be derived as theorems,
//! showing that E is in fact an equivalence relation."
//!
//! Abstract symbols: relation `lt` (the order) and relation `eqv` (the
//! induced equivalence `E`). Instantiate with [`super::Theory::instantiate`]
//! — e.g. `lt ↦ int_lt` for `(i32, <)`, `lt ↦ ci_lt` for case-insensitive
//! string comparison — to amortize the proofs over every model of the
//! concept.

use super::{NamedTheorem, Theory};
use crate::deduction::Ded;
use crate::logic::{Prop, Term};

fn a() -> Term {
    Term::var("a")
}
fn b() -> Term {
    Term::var("b")
}
fn c() -> Term {
    Term::var("c")
}
// Axiom binders use x/y/z so that instantiating at the proof variables
// a/b (in any order, e.g. the swapped (b, a) instance in the symmetry
// proof) never captures.
fn x() -> Term {
    Term::var("x")
}
fn y() -> Term {
    Term::var("y")
}
fn z() -> Term {
    Term::var("z")
}

/// `lt(x, y)` — the strict comparison.
pub fn lt(x: Term, y: Term) -> Prop {
    Prop::atom("lt", vec![x, y])
}

/// `eqv(x, y)` — the induced equivalence `E`.
pub fn eqv(x: Term, y: Term) -> Prop {
    Prop::atom("eqv", vec![x, y])
}

/// Axiom 1 (Fig. 6): irreflexivity — `∀a. ¬lt(a, a)`.
pub fn ax_irreflexivity() -> Prop {
    Prop::forall(&["x"], Prop::not(lt(x(), x())))
}

/// Axiom 2 (Fig. 6): transitivity — `∀a b c. lt(a,b) ∧ lt(b,c) → lt(a,c)`.
pub fn ax_transitivity() -> Prop {
    Prop::forall(
        &["x", "y", "z"],
        Prop::implies(Prop::and(lt(x(), y()), lt(y(), z())), lt(x(), z())),
    )
}

/// Definition of the induced equivalence:
/// `∀a b. eqv(a,b) ↔ ¬lt(a,b) ∧ ¬lt(b,a)`.
pub fn ax_eqv_definition() -> Prop {
    Prop::forall(
        &["x", "y"],
        Prop::iff(
            eqv(x(), y()),
            Prop::and(Prop::not(lt(x(), y())), Prop::not(lt(y(), x()))),
        ),
    )
}

/// Axiom 3 (Fig. 6): transitivity of the equivalence —
/// `∀a b c. eqv(a,b) ∧ eqv(b,c) → eqv(a,c)`.
pub fn ax_eqv_transitivity() -> Prop {
    Prop::forall(
        &["x", "y", "z"],
        Prop::implies(Prop::and(eqv(x(), y()), eqv(y(), z())), eqv(x(), z())),
    )
}

/// The four asserted propositions of the theory.
pub fn axioms() -> Vec<Prop> {
    vec![
        ax_irreflexivity(),
        ax_transitivity(),
        ax_eqv_definition(),
        ax_eqv_transitivity(),
    ]
}

/// **Derived theorem** (Fig. 6): reflexivity of `E` — `∀a. eqv(a, a)`.
///
/// Proof: fix `a`. Irreflexivity gives `¬lt(a,a)`; conjoin it with itself;
/// the definition of `E` at `(a, a)` (right-to-left) yields `eqv(a,a)`.
pub fn thm_eqv_reflexivity() -> NamedTheorem {
    let not_ltaa = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_irreflexivity())),
        term: a(),
    };
    let def_aa = Ded::instantiate_all(Ded::Claim(ax_eqv_definition()), vec![a(), a()]);
    let proof = Ded::Generalize {
        var: "a".to_string(),
        body: Box::new(Ded::mp(
            Ded::IffElimB(Box::new(def_aa)),
            Ded::AndIntro(Box::new(not_ltaa.clone()), Box::new(not_ltaa)),
        )),
    };
    NamedTheorem {
        name: "eqv-reflexivity".to_string(),
        statement: Prop::forall(&["a"], eqv(a(), a())),
        proof,
    }
}

/// **Derived theorem** (Fig. 6): symmetry of `E` —
/// `∀a b. eqv(a,b) → eqv(b,a)`.
///
/// Proof: fix `a, b`; assume `eqv(a,b)`; unfold the definition to get the
/// conjunction, swap its conjuncts, and fold the definition at `(b, a)`.
pub fn thm_eqv_symmetry() -> NamedTheorem {
    let def_ab = Ded::instantiate_all(Ded::Claim(ax_eqv_definition()), vec![a(), b()]);
    let def_ba = Ded::instantiate_all(Ded::Claim(ax_eqv_definition()), vec![b(), a()]);
    let conj = Ded::mp(Ded::IffElimF(Box::new(def_ab)), Ded::Claim(eqv(a(), b())));
    let swapped = Ded::AndIntro(
        Box::new(Ded::AndElimR(Box::new(conj.clone()))),
        Box::new(Ded::AndElimL(Box::new(conj))),
    );
    let body = Ded::assume(
        eqv(a(), b()),
        Ded::mp(Ded::IffElimB(Box::new(def_ba)), swapped),
    );
    NamedTheorem {
        name: "eqv-symmetry".to_string(),
        statement: Prop::forall(&["a", "b"], Prop::implies(eqv(a(), b()), eqv(b(), a()))),
        proof: Ded::generalize_all(&["a", "b"], body),
    }
}

/// Bonus theorem: asymmetry of the order —
/// `∀a b. lt(a,b) → ¬lt(b,a)` (derivable from irreflexivity and
/// transitivity; the paper notes asymmetry follows from the SWO axioms).
pub fn thm_asymmetry() -> NamedTheorem {
    // Under hypotheses lt(a,b) and lt(b,a), transitivity at (a,b,a) gives
    // lt(a,a), contradicting irreflexivity.
    let trans_aba = Ded::instantiate_all(Ded::Claim(ax_transitivity()), vec![a(), b(), a()]);
    let lt_aa = Ded::mp(
        trans_aba,
        Ded::AndIntro(
            Box::new(Ded::Claim(lt(a(), b()))),
            Box::new(Ded::Claim(lt(b(), a()))),
        ),
    );
    let not_lt_aa = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_irreflexivity())),
        term: a(),
    };
    let refute = Ded::ByContradiction {
        hypothesis: lt(b(), a()),
        body: Box::new(Ded::Absurd {
            pos: Box::new(lt_aa),
            neg: Box::new(not_lt_aa),
        }),
    };
    let body = Ded::assume(lt(a(), b()), refute);
    NamedTheorem {
        name: "lt-asymmetry".to_string(),
        statement: Prop::forall(
            &["a", "b"],
            Prop::implies(lt(a(), b()), Prop::not(lt(b(), a()))),
        ),
        proof: Ded::generalize_all(&["a", "b"], body),
    }
}

/// Bonus theorem: equivalent elements are not ordered —
/// `∀a b. eqv(a,b) → ¬lt(a,b)` (the property `binary_search` relies on when
/// it tests `!(value < *pos)`).
pub fn thm_eqv_not_lt() -> NamedTheorem {
    let def_ab = Ded::instantiate_all(Ded::Claim(ax_eqv_definition()), vec![a(), b()]);
    let conj = Ded::mp(Ded::IffElimF(Box::new(def_ab)), Ded::Claim(eqv(a(), b())));
    let body = Ded::assume(eqv(a(), b()), Ded::AndElimL(Box::new(conj)));
    NamedTheorem {
        name: "eqv-not-lt".to_string(),
        statement: Prop::forall(
            &["a", "b"],
            Prop::implies(eqv(a(), b()), Prop::not(lt(a(), b()))),
        ),
        proof: Ded::generalize_all(&["a", "b"], body),
    }
}

/// **Derived theorem**: equivalent elements are interchangeable on the
/// right of `lt` — `∀x y z. lt(x,z) ∧ eqv(y,z) → lt(x,y)`.
///
/// This is the substitutivity property `binary_search` correctness rests
/// on (equivalent keys behave identically under comparison), and the paper
/// notes it is exactly what the SWO axioms must supply. The proof is the
/// most intricate in the theory: a double proof-by-contradiction.
///
/// Sketch: assume `lt(x,z) ∧ eqv(y,z)` and (towards `lt(x,y)`) suppose
/// `¬lt(x,y)`. First refute `lt(y,x)` (it would give `lt(y,z)` by
/// transitivity, contradicting `eqv(y,z)`). With `¬lt(x,y)` and `¬lt(y,x)`
/// we get `eqv(x,y)`; by transitivity of `eqv`, `eqv(x,z)` — whose
/// definition yields `¬lt(x,z)`, contradicting the assumption. Hence
/// `¬¬lt(x,y)`, and classically `lt(x,y)`.
pub fn thm_eqv_substitutive() -> NamedTheorem {
    let hyp = Prop::and(lt(a(), c()), eqv(b(), c()));
    let not_lt_yz = Prop::not(lt(b(), c()));
    let not_lt_zy = Prop::not(lt(c(), b()));
    let yz_conj = Prop::and(not_lt_yz.clone(), not_lt_zy);

    // Inner refutation: under ¬lt(x,y), suppose lt(y,x) → ⊥.
    let refute_lt_yx = Ded::ByContradiction {
        hypothesis: lt(b(), a()),
        body: Box::new(Ded::Absurd {
            // lt(y,x) ∧ lt(x,z) → lt(y,z) by transitivity at (y,x,z).
            pos: Box::new(Ded::mp(
                Ded::instantiate_all(Ded::Claim(ax_transitivity()), vec![b(), a(), c()]),
                Ded::AndIntro(
                    Box::new(Ded::Claim(lt(b(), a()))),
                    Box::new(Ded::Claim(lt(a(), c()))),
                ),
            )),
            neg: Box::new(Ded::Claim(not_lt_yz.clone())),
        }),
    };

    // Outer refutation: suppose ¬lt(x,y) → ⊥.
    let outer_body = Ded::Seq(vec![
        // ¬lt(y,x), via the inner refutation.
        refute_lt_yx,
        // eqv(x,y) from ¬lt(x,y) ∧ ¬lt(y,x) (definition, right-to-left).
        Ded::mp(
            Ded::IffElimB(Box::new(Ded::instantiate_all(
                Ded::Claim(ax_eqv_definition()),
                vec![a(), b()],
            ))),
            Ded::AndIntro(
                Box::new(Ded::Claim(Prop::not(lt(a(), b())))),
                Box::new(Ded::Claim(Prop::not(lt(b(), a())))),
            ),
        ),
        // eqv(x,z) by transitivity of eqv at (x,y,z).
        Ded::mp(
            Ded::instantiate_all(Ded::Claim(ax_eqv_transitivity()), vec![a(), b(), c()]),
            Ded::AndIntro(
                Box::new(Ded::Claim(eqv(a(), b()))),
                Box::new(Ded::Claim(eqv(b(), c()))),
            ),
        ),
        // ¬lt(x,z) ∧ ¬lt(z,x) by the definition at (x,z).
        Ded::mp(
            Ded::IffElimF(Box::new(Ded::instantiate_all(
                Ded::Claim(ax_eqv_definition()),
                vec![a(), c()],
            ))),
            Ded::Claim(eqv(a(), c())),
        ),
        // Contradiction with the assumed lt(x,z).
        Ded::Absurd {
            pos: Box::new(Ded::Claim(lt(a(), c()))),
            neg: Box::new(Ded::AndElimL(Box::new(Ded::Claim(Prop::and(
                Prop::not(lt(a(), c())),
                Prop::not(lt(c(), a())),
            ))))),
        },
    ]);

    let derive = Ded::Seq(vec![
        // Unpack the hypothesis into the assumption base.
        Ded::AndElimL(Box::new(Ded::Claim(hyp.clone()))), // lt(x,z)
        Ded::AndElimR(Box::new(Ded::Claim(hyp.clone()))), // eqv(y,z)
        // Unfold eqv(y,z) and keep ¬lt(y,z) at hand.
        Ded::mp(
            Ded::IffElimF(Box::new(Ded::instantiate_all(
                Ded::Claim(ax_eqv_definition()),
                vec![b(), c()],
            ))),
            Ded::Claim(eqv(b(), c())),
        ),
        Ded::AndElimL(Box::new(Ded::Claim(yz_conj))), // ¬lt(y,z)
        // Classical finish: ¬¬lt(x,y) ⇒ lt(x,y).
        Ded::DoubleNegElim(Box::new(Ded::ByContradiction {
            hypothesis: Prop::not(lt(a(), b())),
            body: Box::new(outer_body),
        })),
    ]);

    NamedTheorem {
        name: "eqv-substitutive".to_string(),
        statement: Prop::forall(&["a", "b", "c"], Prop::implies(hyp, lt(a(), b()))),
        proof: Ded::generalize_all(
            &["a", "b", "c"],
            Ded::assume(Prop::and(lt(a(), c()), eqv(b(), c())), derive),
        ),
    }
}

/// The complete Strict Weak Order theory with its derived theorems.
pub fn theory() -> Theory {
    Theory {
        name: "StrictWeakOrder".to_string(),
        axioms: axioms(),
        theorems: vec![
            thm_eqv_reflexivity(),
            thm_eqv_symmetry(),
            thm_asymmetry(),
            thm_eqv_not_lt(),
            thm_eqv_substitutive(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::SymbolMap;

    #[test]
    fn fig6_derived_theorems_check() {
        let t = theory();
        let proved = t.check().expect("all SWO proofs must check");
        assert_eq!(proved.len(), 5);
        assert_eq!(proved[0].to_string(), "∀a. eqv(a, a)");
        assert_eq!(proved[1].to_string(), "∀a. ∀b. (eqv(a, b) → eqv(b, a))");
    }

    #[test]
    fn proofs_are_genuinely_checked_not_rubber_stamped() {
        // Sabotage: claim symmetry's statement with reflexivity's proof.
        let mut t = theory();
        let refl_proof = t.theorems[0].proof.clone();
        t.theorems[1].proof = refl_proof;
        let err = t.check().unwrap_err();
        assert_eq!(err.theorem, "eqv-symmetry");
    }

    #[test]
    fn dropping_an_axiom_breaks_the_proofs() {
        let mut t = theory();
        t.axioms.retain(|ax| *ax != ax_irreflexivity());
        assert!(t.check().is_err(), "reflexivity depends on irreflexivity");
    }

    #[test]
    fn instantiation_to_integer_less_than_checks() {
        // The generic proof instantiated for (int, <): lt ↦ int_lt,
        // eqv ↦ int_eqv. One proof, many models.
        let t = theory();
        let map = SymbolMap::new([("lt", "int_lt"), ("eqv", "int_eqv")]);
        let inst = t.instantiate("i32", &map);
        let proved = inst.check().expect("instantiated proofs re-check");
        assert_eq!(proved[0].to_string(), "∀a. int_eqv(a, a)");
    }

    #[test]
    fn instantiation_to_case_insensitive_strings_checks() {
        let t = theory();
        let map = SymbolMap::new([("lt", "ci_lt"), ("eqv", "ci_eqv")]);
        assert!(t.instantiate("case-insensitive", &map).check().is_ok());
    }

    #[test]
    fn many_instances_amortize_one_proof() {
        // The §3.3 amortization claim in miniature: k instantiations of the
        // same checked proofs, no proof rewritten.
        let t = theory();
        let base_size = t.proof_size();
        for i in 0..10 {
            let map = SymbolMap::new([("lt", format!("lt_{i}")), ("eqv", format!("eqv_{i}"))]);
            let inst = t.instantiate(&format!("model-{i}"), &map);
            assert!(inst.check().is_ok());
            assert_eq!(inst.proof_size(), base_size); // same proof, renamed
        }
    }

    #[test]
    fn substitutivity_statement_and_dependencies() {
        let t = theory();
        let proved = t.check().unwrap();
        assert_eq!(
            proved[4].to_string(),
            "∀a. ∀b. ∀c. ((lt(a, c) ∧ eqv(b, c)) → lt(a, b))"
        );
        // It genuinely needs the transitivity-of-equivalence axiom.
        let mut broken = theory();
        broken.axioms.retain(|ax| *ax != ax_eqv_transitivity());
        assert!(broken.check().is_err());
        // And the executable side agrees on a concrete weak order.
        use gp_core::order::{ByKey, StrictWeakOrder};
        let ord = ByKey(|p: &(i32, i32)| p.0);
        let samples: Vec<(i32, i32)> = (0..6).flat_map(|k| [(k, 0), (k, 1)]).collect();
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    if ord.less(a, c) && ord.equiv(b, c) {
                        assert!(ord.less(a, b), "substitutivity violated");
                    }
                }
            }
        }
    }
}
