//! The Monoid theory: the semantic content behind the `x + 0 → x` rewrite
//! rule of Fig. 5 ("the concept-based rules are directly related to and
//! derivable from the axioms governing the Monoid and Group concepts").
//!
//! Abstract symbols: binary function `op`, identity constant `e`.

use super::{NamedTheorem, Theory};
use crate::deduction::Ded;
use crate::logic::{Prop, Term};

fn x() -> Term {
    Term::var("x")
}
fn y() -> Term {
    Term::var("y")
}
fn z() -> Term {
    Term::var("z")
}

/// `op(a, b)`.
pub fn op(a: Term, b: Term) -> Term {
    Term::app("op", vec![a, b])
}

/// The identity constant `e`.
pub fn e() -> Term {
    Term::cst("e")
}

/// Associativity: `∀x y z. op(op(x,y),z) = op(x,op(y,z))`.
pub fn ax_assoc() -> Prop {
    Prop::forall(
        &["x", "y", "z"],
        Prop::Eq(op(op(x(), y()), z()), op(x(), op(y(), z()))),
    )
}

/// Left identity: `∀x. op(e, x) = x`.
pub fn ax_left_id() -> Prop {
    Prop::forall(&["x"], Prop::Eq(op(e(), x()), x()))
}

/// Right identity: `∀x. op(x, e) = x` — the axiom that *justifies* the
/// `x + 0 → x` rewrite.
pub fn ax_right_id() -> Prop {
    Prop::forall(&["x"], Prop::Eq(op(x(), e()), x()))
}

/// The monoid axioms.
pub fn axioms() -> Vec<Prop> {
    vec![ax_assoc(), ax_left_id(), ax_right_id()]
}

/// Theorem: stacked identities collapse — `∀x. op(op(x,e),e) = x`.
/// (The soundness of applying the rewrite rule repeatedly.)
pub fn thm_double_right_identity() -> NamedTheorem {
    // op(op(x,e),e) = op(x,e)   [right-id at op(x,e)]
    let outer = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_right_id())),
        term: op(x(), e()),
    };
    // op(x,e) = x               [right-id at x]
    let inner = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_right_id())),
        term: x(),
    };
    NamedTheorem {
        name: "double-right-identity".to_string(),
        statement: Prop::forall(&["x"], Prop::Eq(op(op(x(), e()), e()), x())),
        proof: Ded::Generalize {
            var: "x".to_string(),
            body: Box::new(Ded::Trans(Box::new(outer), Box::new(inner))),
        },
    }
}

/// Theorem: the identity is unique. Stated over a second constant `e2`
/// assumed (as extra axioms) to be a two-sided identity; conclusion
/// `e2 = e`.
pub fn identity_uniqueness_theory() -> Theory {
    let e2 = Term::cst("e2");
    let ax_e2_right = Prop::forall(&["x"], Prop::Eq(op(x(), e2.clone()), x()));
    let ax_e2_left = Prop::forall(&["x"], Prop::Eq(op(e2.clone(), x()), x()));

    // op(e, e2) = e2   [left identity of e, at x := e2]
    let via_e = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_left_id())),
        term: e2.clone(),
    };
    // op(e, e2) = e    [right identity of e2, at x := e]
    let via_e2 = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_e2_right.clone())),
        term: e(),
    };
    // e2 = op(e, e2) = e
    let proof = Ded::Trans(Box::new(Ded::Sym(Box::new(via_e))), Box::new(via_e2));

    let mut axs = axioms();
    axs.push(ax_e2_right);
    axs.push(ax_e2_left);
    Theory {
        name: "Monoid+SecondIdentity".to_string(),
        axioms: axs,
        theorems: vec![NamedTheorem {
            name: "identity-uniqueness".to_string(),
            statement: Prop::Eq(e2, e()),
            proof,
        }],
    }
}

/// The monoid theory with its theorems.
pub fn theory() -> Theory {
    Theory {
        name: "Monoid".to_string(),
        axioms: axioms(),
        theorems: vec![thm_double_right_identity()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::SymbolMap;

    #[test]
    fn monoid_theorems_check() {
        assert!(theory().check().is_ok());
    }

    #[test]
    fn identity_uniqueness_checks() {
        let t = identity_uniqueness_theory();
        let proved = t.check().unwrap();
        assert_eq!(proved[0].to_string(), "e2 = e");
    }

    #[test]
    fn instantiations_cover_fig5_monoids() {
        // One generic proof; instances for (int,+,0), (float,*,1),
        // (string,concat,"").
        let t = theory();
        for (name, map) in [
            ("int-add", SymbolMap::new([("op", "add"), ("e", "zero")])),
            ("float-mul", SymbolMap::new([("op", "mul"), ("e", "one")])),
            (
                "string-concat",
                SymbolMap::new([("op", "concat"), ("e", "empty")]),
            ),
        ] {
            let inst = t.instantiate(name, &map);
            assert!(inst.check().is_ok(), "{name} failed");
        }
    }

    #[test]
    fn wrong_axiom_instantiation_fails_check() {
        // Renaming the proof but not the axioms must fail: checking is real.
        let t = theory();
        let map = SymbolMap::new([("op", "add"), ("e", "zero")]);
        let mut broken = t.clone();
        broken.theorems = t
            .theorems
            .iter()
            .map(|th| super::super::NamedTheorem {
                name: th.name.clone(),
                statement: th.statement.rename(&map),
                proof: th.proof.rename(&map),
            })
            .collect();
        // axioms still abstract (`op`, `e`): claims of renamed axioms fail.
        assert!(broken.check().is_err());
    }
}
