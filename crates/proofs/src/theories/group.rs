//! The Group theory: the semantic content behind the `x + (-x) → 0`
//! rewrite rule of Fig. 5.
//!
//! Abstract symbols: `op`, identity `e`, inverse function `inv`. Extends
//! the monoid axioms.

use super::{NamedTheorem, Theory};
use crate::deduction::Ded;
use crate::logic::{Prop, Term};
use crate::theories::monoid::{ax_assoc, ax_left_id, ax_right_id, e, op};

fn a() -> Term {
    Term::var("a")
}
fn b() -> Term {
    Term::var("b")
}

/// `inv(t)`.
pub fn inv(t: Term) -> Term {
    Term::app("inv", vec![t])
}

/// Left inverse: `∀a. op(inv(a), a) = e`.
pub fn ax_left_inv() -> Prop {
    Prop::forall(&["a"], Prop::Eq(op(inv(a()), a()), e()))
}

/// Right inverse: `∀a. op(a, inv(a)) = e` — the axiom justifying the
/// `x + (-x) → 0` rewrite.
pub fn ax_right_inv() -> Prop {
    Prop::forall(&["a"], Prop::Eq(op(a(), inv(a())), e()))
}

/// The group axioms (monoid + inverses).
pub fn axioms() -> Vec<Prop> {
    vec![
        ax_assoc(),
        ax_left_id(),
        ax_right_id(),
        ax_left_inv(),
        ax_right_inv(),
    ]
}

/// Theorem: left cancellation through the inverse —
/// `∀a b. op(inv(a), op(a, b)) = b`.
///
/// Proof: reassociate, rewrite `op(inv(a), a)` to `e` by congruence, and
/// collapse the left identity.
pub fn thm_left_cancellation() -> NamedTheorem {
    // assoc at (inv(a), a, b): op(op(inv(a),a), b) = op(inv(a), op(a,b))
    let assoc = Ded::instantiate_all(Ded::Claim(ax_assoc()), vec![inv(a()), a(), b()]);
    // Sym: op(inv(a), op(a,b)) = op(op(inv(a),a), b)
    let step1 = Ded::Sym(Box::new(assoc));
    // left-inv at a: op(inv(a), a) = e; congruence in context op(hole, b):
    // op(op(inv(a),a), b) = op(e, b)
    let linv = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_left_inv())),
        term: a(),
    };
    let step2 = Ded::cong(linv, "hole", op(Term::var("hole"), b()), op(inv(a()), a()));
    // left-id at b: op(e, b) = b
    let step3 = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_left_id())),
        term: b(),
    };
    let chain = Ded::Trans(
        Box::new(Ded::Trans(Box::new(step1), Box::new(step2))),
        Box::new(step3),
    );
    NamedTheorem {
        name: "left-cancellation".to_string(),
        statement: Prop::forall(&["a", "b"], Prop::Eq(op(inv(a()), op(a(), b())), b())),
        proof: Ded::generalize_all(&["a", "b"], chain),
    }
}

/// Theorem: the identity is its own inverse — `inv(e) = e`.
pub fn thm_identity_self_inverse() -> NamedTheorem {
    // left-id at inv(e): op(e, inv(e)) = inv(e); Sym.
    let lid = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_left_id())),
        term: inv(e()),
    };
    // right-inv at e: op(e, inv(e)) = e.
    let rinv = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_right_inv())),
        term: e(),
    };
    NamedTheorem {
        name: "identity-self-inverse".to_string(),
        statement: Prop::Eq(inv(e()), e()),
        proof: Ded::Trans(Box::new(Ded::Sym(Box::new(lid))), Box::new(rinv)),
    }
}

/// The group theory with its theorems.
pub fn theory() -> Theory {
    Theory {
        name: "Group".to_string(),
        axioms: axioms(),
        theorems: vec![thm_left_cancellation(), thm_identity_self_inverse()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::SymbolMap;

    #[test]
    fn group_theorems_check() {
        let proved = theory().check().unwrap();
        assert_eq!(proved[0].to_string(), "∀a. ∀b. op(inv(a), op(a, b)) = b");
        assert_eq!(proved[1].to_string(), "inv(e) = e");
    }

    #[test]
    fn fig5_group_instances_recheck() {
        // (int, +, -, 0) and (rational, *, recip, 1).
        let t = theory();
        for (name, map) in [
            (
                "int-add",
                SymbolMap::new([("op", "add"), ("e", "zero"), ("inv", "neg")]),
            ),
            (
                "rat-mul",
                SymbolMap::new([("op", "mul"), ("e", "one"), ("inv", "recip")]),
            ),
        ] {
            assert!(t.instantiate(name, &map).check().is_ok(), "{name}");
        }
    }

    #[test]
    fn cancellation_fails_without_associativity() {
        let mut t = theory();
        t.axioms.retain(|ax| *ax != ax_assoc());
        assert!(t.check().is_err());
    }
}
