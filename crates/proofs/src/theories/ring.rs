//! The Ring theory, culminating in the **annihilation theorem**
//! `∀a. 0·a = 0` — the formal justification for the optimizer's
//! `x * 0 → 0` Annihilator rule, closing the paper's loop between §3.2
//! ("rules … derivable from the axioms") and §3.3 (checking the
//! derivations).
//!
//! Abstract symbols: `add`, `mul`, constants `zero`, `one`, additive
//! inverse `neg`.

use super::{NamedTheorem, Theory};
use crate::deduction::Ded;
use crate::logic::{Prop, Term};

fn a() -> Term {
    Term::var("a")
}
fn x() -> Term {
    Term::var("x")
}
fn y() -> Term {
    Term::var("y")
}
fn z() -> Term {
    Term::var("z")
}

/// `add(s, t)`.
pub fn add(s: Term, t: Term) -> Term {
    Term::app("add", vec![s, t])
}

/// `mul(s, t)`.
pub fn mul(s: Term, t: Term) -> Term {
    Term::app("mul", vec![s, t])
}

/// `neg(t)`.
pub fn neg(t: Term) -> Term {
    Term::app("neg", vec![t])
}

/// The additive identity constant.
pub fn zero() -> Term {
    Term::cst("zero")
}

/// The multiplicative identity constant.
pub fn one() -> Term {
    Term::cst("one")
}

/// Additive associativity.
pub fn ax_add_assoc() -> Prop {
    Prop::forall(
        &["x", "y", "z"],
        Prop::Eq(add(add(x(), y()), z()), add(x(), add(y(), z()))),
    )
}

/// Additive left identity.
pub fn ax_add_left_id() -> Prop {
    Prop::forall(&["x"], Prop::Eq(add(zero(), x()), x()))
}

/// Additive right identity.
pub fn ax_add_right_id() -> Prop {
    Prop::forall(&["x"], Prop::Eq(add(x(), zero()), x()))
}

/// Additive left inverse.
pub fn ax_add_left_inv() -> Prop {
    Prop::forall(&["x"], Prop::Eq(add(neg(x()), x()), zero()))
}

/// Multiplicative left identity.
pub fn ax_mul_left_id() -> Prop {
    Prop::forall(&["x"], Prop::Eq(mul(one(), x()), x()))
}

/// Right distributivity: `(x + y)·z = x·z + y·z`.
pub fn ax_right_distrib() -> Prop {
    Prop::forall(
        &["x", "y", "z"],
        Prop::Eq(mul(add(x(), y()), z()), add(mul(x(), z()), mul(y(), z()))),
    )
}

/// The ring axioms used by the annihilation proof.
pub fn axioms() -> Vec<Prop> {
    vec![
        ax_add_assoc(),
        ax_add_left_id(),
        ax_add_right_id(),
        ax_add_left_inv(),
        ax_mul_left_id(),
        ax_right_distrib(),
    ]
}

/// Helper lemma (proved first, then used by name): additive left
/// cancellation in the functional form
/// `∀a b. add(neg(a), add(a, b)) = b`.
pub fn thm_add_left_cancel() -> NamedTheorem {
    let b = || Term::var("b");
    // assoc at (neg(a), a, b), reversed.
    let assoc = Ded::instantiate_all(Ded::Claim(ax_add_assoc()), vec![neg(a()), a(), b()]);
    let step1 = Ded::Sym(Box::new(assoc));
    // left-inv at a, congruence in context add(hole, b).
    let linv = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_add_left_inv())),
        term: a(),
    };
    let step2 = Ded::cong(
        linv,
        "hole",
        add(Term::var("hole"), b()),
        add(neg(a()), a()),
    );
    // left-id at b.
    let step3 = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_add_left_id())),
        term: b(),
    };
    let chain = Ded::Trans(
        Box::new(Ded::Trans(Box::new(step1), Box::new(step2))),
        Box::new(step3),
    );
    NamedTheorem {
        name: "add-left-cancel".to_string(),
        statement: Prop::forall(&["a", "b"], Prop::Eq(add(neg(a()), add(a(), b())), b())),
        proof: Ded::generalize_all(&["a", "b"], chain),
    }
}

/// **Annihilation**: `∀a. mul(zero, a) = zero`.
///
/// Proof sketch (each step a checked equation):
/// 1. `0·a = (0+0)·a`             (congruence on `0 = 0+0`)
/// 2. `(0+0)·a = 0·a + 0·a`       (right distributivity), so
///    `0·a = 0·a + 0·a`           (transitivity)
/// 3. add `neg(0·a)` on the left of both sides by congruence:
///    `neg(0·a) + 0·a = neg(0·a) + (0·a + 0·a)`
/// 4. the left side is `0` (left inverse); the right side is `0·a`
///    (cancellation lemma) — chaining gives `0 = 0·a`, then flip.
pub fn thm_zero_annihilates() -> NamedTheorem {
    let za = || mul(zero(), a());

    // (1) 0 = 0 + 0 : symmetric right-identity instance at 0.
    let zero_split = Ded::Sym(Box::new(Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_add_right_id())),
        term: zero(),
    }));
    // (1') congruence in context mul(hole, a): 0·a = (0+0)·a.
    let step1 = Ded::cong(zero_split, "hole", mul(Term::var("hole"), a()), zero());
    // (2) distributivity at (0, 0, a): (0+0)·a = 0·a + 0·a.
    let step2 = Ded::instantiate_all(Ded::Claim(ax_right_distrib()), vec![zero(), zero(), a()]);
    // 0·a = 0·a + 0·a.
    let doubled = Ded::Trans(Box::new(step1), Box::new(step2));

    // (3) congruence in context add(neg(0·a), hole):
    //     neg(0·a) + 0·a = neg(0·a) + (0·a + 0·a).
    let step3 = Ded::cong(doubled, "hole", add(neg(za()), Term::var("hole")), za());

    // (4a) LHS: neg(0·a) + 0·a = 0 (left inverse at 0·a).
    let lhs_zero = Ded::Instantiate {
        forall: Box::new(Ded::Claim(ax_add_left_inv())),
        term: za(),
    };
    // (4b) RHS: neg(0·a) + (0·a + 0·a) = 0·a (left cancel at (0·a, 0·a)).
    let rhs_cancel = Ded::instantiate_all(
        Ded::Claim(thm_add_left_cancel().statement),
        vec![za(), za()],
    );

    // Chain: 0 = LHS = RHS = 0·a, then flip.
    let chain = Ded::Trans(
        Box::new(Ded::Trans(
            Box::new(Ded::Sym(Box::new(lhs_zero))),
            Box::new(step3),
        )),
        Box::new(rhs_cancel),
    );
    NamedTheorem {
        name: "zero-annihilates".to_string(),
        statement: Prop::forall(&["a"], Prop::Eq(mul(zero(), a()), zero())),
        proof: Ded::Generalize {
            var: "a".to_string(),
            body: Box::new(Ded::Sym(Box::new(chain))),
        },
    }
}

/// The ring theory: cancellation lemma first, annihilation second (the
/// second proof *claims* the first's statement from the assumption base —
/// theorems compose).
pub fn theory() -> Theory {
    Theory {
        name: "Ring".to_string(),
        axioms: axioms(),
        theorems: vec![thm_add_left_cancel(), thm_zero_annihilates()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::SymbolMap;

    #[test]
    fn annihilation_checks() {
        let proved = theory().check().expect("ring proofs check");
        assert_eq!(proved[1].to_string(), "∀a. mul(zero, a) = zero");
    }

    #[test]
    fn annihilation_depends_on_the_cancellation_lemma() {
        // Removing the lemma breaks the annihilation proof: the claim of
        // its statement no longer resolves.
        let mut t = theory();
        t.theorems.remove(0);
        assert!(t.check().is_err());
    }

    #[test]
    fn annihilation_requires_distributivity() {
        let mut t = theory();
        t.axioms.retain(|ax| *ax != ax_right_distrib());
        assert!(t.check().is_err());
    }

    #[test]
    fn instantiates_to_integer_and_matrix_rings() {
        // One proof; instances justify `i * 0 → 0` and `A · 0 → 0`.
        let t = theory();
        for (name, map) in [
            (
                "i64",
                SymbolMap::new([
                    ("add", "int_add"),
                    ("mul", "int_mul"),
                    ("neg", "int_neg"),
                    ("zero", "int_zero"),
                    ("one", "int_one"),
                ]),
            ),
            (
                "matrix",
                SymbolMap::new([
                    ("add", "mat_add"),
                    ("mul", "mat_mul"),
                    ("neg", "mat_neg"),
                    ("zero", "mat_zero"),
                    ("one", "mat_id"),
                ]),
            ),
        ] {
            assert!(t.instantiate(name, &map).check().is_ok(), "{name}");
        }
    }

    #[test]
    #[allow(clippy::erasing_op)] // 0·a == 0 is exactly the theorem under test
    fn executable_counterpart_on_the_numeric_substrate() {
        // The theorem's instances hold concretely: 0·a == 0 for i64 and
        // the rational field (the same models the rewrite rule fires on).
        use gp_core::numeric::Rational;
        for a in [-5i64, 0, 7, 123456] {
            assert_eq!(0 * a, 0);
        }
        for a in [Rational::new(3, 7), Rational::from_int(-2)] {
            assert_eq!(Rational::from_int(0) * a, Rational::from_int(0));
        }
    }
}
