//! The concept environment: which `(type, operation)` pairs model which
//! algebraic concepts, with their identity and annihilator elements.
//!
//! This is the compiler-side view of the registry: rewrite rules consult it
//! instead of hard-coding types, which is precisely what turns ten
//! type-specific rewrites into two concept-based ones (Fig. 5). Adding a
//! new data type means *declaring its models here* — after which "optimiza-
//! tion via concept-based rewrite rules comes essentially for free".

use crate::expr::{BinOp, Type, UnOp, Value};
use std::collections::{HashMap, HashSet};

/// Algebraic concepts the rewriter distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgConcept {
    /// Associative operation.
    Semigroup,
    /// Semigroup with two-sided identity.
    Monoid,
    /// Monoid with inverses.
    Group,
    /// Operation is commutative.
    Commutative,
    /// `x op x == x`.
    Idempotent,
}

/// The concept environment for one compilation.
#[derive(Clone, Debug, Default)]
pub struct ConceptEnv {
    models: HashSet<(Type, BinOp, AlgConcept)>,
    identities: HashMap<(Type, BinOp), Value>,
    annihilators: HashMap<(Type, BinOp), Value>,
    inverse_ops: HashMap<(Type, BinOp), UnOp>,
}

impl ConceptEnv {
    /// An empty environment (no models — no rewrites fire).
    pub fn empty() -> Self {
        ConceptEnv::default()
    }

    /// Declare that `(ty, op)` models `concept`. Declaring `Monoid` or
    /// `Group` implies the weaker concepts.
    pub fn declare(&mut self, ty: Type, op: BinOp, concept: AlgConcept) -> &mut Self {
        self.models.insert((ty, op, concept));
        match concept {
            AlgConcept::Monoid => {
                self.models.insert((ty, op, AlgConcept::Semigroup));
            }
            AlgConcept::Group => {
                self.models.insert((ty, op, AlgConcept::Monoid));
                self.models.insert((ty, op, AlgConcept::Semigroup));
            }
            _ => {}
        }
        self
    }

    /// Record the identity element of `(ty, op)`.
    pub fn set_identity(&mut self, ty: Type, op: BinOp, id: Value) -> &mut Self {
        self.identities.insert((ty, op), id);
        self
    }

    /// Record an annihilator (`x op a == a`), e.g. `x * 0 → 0`.
    pub fn set_annihilator(&mut self, ty: Type, op: BinOp, a: Value) -> &mut Self {
        self.annihilators.insert((ty, op), a);
        self
    }

    /// Record the unary operator that builds inverses for `(ty, op)`
    /// (e.g. `Neg` for additive groups, `Recip` for multiplicative ones).
    pub fn set_inverse_op(&mut self, ty: Type, op: BinOp, un: UnOp) -> &mut Self {
        self.inverse_ops.insert((ty, op), un);
        self
    }

    /// Does `(ty, op)` model `concept`?
    pub fn models(&self, ty: Type, op: BinOp, concept: AlgConcept) -> bool {
        self.models.contains(&(ty, op, concept))
    }

    /// Identity element of `(ty, op)`, if declared.
    pub fn identity(&self, ty: Type, op: BinOp) -> Option<&Value> {
        self.identities.get(&(ty, op))
    }

    /// Annihilator of `(ty, op)`, if declared.
    pub fn annihilator(&self, ty: Type, op: BinOp) -> Option<&Value> {
        self.annihilators.get(&(ty, op))
    }

    /// Inverse-building unary operator of `(ty, op)`, if declared.
    pub fn inverse_op(&self, ty: Type, op: BinOp) -> Option<UnOp> {
        self.inverse_ops.get(&(ty, op)).copied()
    }

    // --- declaration iterators (rule-index construction) ----------------
    //
    // The indexed dispatch of `simplify` precomputes, per rule, the
    // `(Type, head)` keys the rule can possibly fire on *given this
    // environment*. These iterators expose the declarations read-only;
    // iteration order is arbitrary (hash order) — index construction
    // dedups per rule and keeps rule order, so dispatch stays
    // deterministic.

    /// Iterate every declared `(type, op) models concept` triple.
    pub fn declared_models(&self) -> impl Iterator<Item = (Type, BinOp, AlgConcept)> + '_ {
        self.models.iter().copied()
    }

    /// Iterate every declared identity element.
    pub fn declared_identities(&self) -> impl Iterator<Item = (Type, BinOp, &Value)> + '_ {
        self.identities.iter().map(|(&(t, o), v)| (t, o, v))
    }

    /// Iterate every declared annihilator element.
    pub fn declared_annihilators(&self) -> impl Iterator<Item = (Type, BinOp, &Value)> + '_ {
        self.annihilators.iter().map(|(&(t, o), v)| (t, o, v))
    }

    /// Iterate every declared inverse-building operator.
    pub fn declared_inverse_ops(&self) -> impl Iterator<Item = (Type, BinOp, UnOp)> + '_ {
        self.inverse_ops.iter().map(|(&(t, o), &u)| (t, o, u))
    }

    /// The standard environment covering the instances of Fig. 5:
    ///
    /// | `(x, op)` | concepts |
    /// |---|---|
    /// | `(Int, +)` | commutative Group, identity 0 |
    /// | `(Int, *)` | commutative Monoid, identity 1, annihilator 0 |
    /// | `(Float, +)` | commutative Group, identity 0.0 |
    /// | `(Float, *)` | commutative Group (inverse `1/x`), identity 1.0 |
    /// | `(BigFloat, *)` | commutative Group, identity 1.0 |
    /// | `(Bool, ∧)` | commutative idempotent Monoid, identity `true`, annihilator `false` |
    /// | `(Bool, ∨)` | commutative idempotent Monoid, identity `false`, annihilator `true` |
    /// | `(UInt, &)` | commutative idempotent Monoid, identity `0xFF…F` |
    /// | `(Str, ++)` | Monoid (non-commutative), identity `""` |
    /// | `(Rational, *)` | commutative Group, identity 1 |
    /// | `(Matrix, *)` | Monoid (non-commutative), identity `I` (symbolic) |
    ///
    /// The environment is **built once per process** and cached behind
    /// [`ConceptEnv::standard_ref`]; this constructor clones the cached
    /// copy (a handful of small hash tables) instead of re-running the
    /// declarations. Concurrent request handlers (`gp-service`) that only
    /// need shared read access should hold the `&'static` reference and
    /// skip even the clone.
    pub fn standard() -> Self {
        Self::standard_ref().clone()
    }

    /// The shared, lazily-built standard environment. Safe to read from
    /// any thread; the build happens exactly once per process (mirrored to
    /// the telemetry counter `rewrite.env.standard_builds`, which a
    /// regression test pins at ≤ 1).
    pub fn standard_ref() -> &'static ConceptEnv {
        static STANDARD: std::sync::OnceLock<ConceptEnv> = std::sync::OnceLock::new();
        STANDARD.get_or_init(|| {
            gp_telemetry::counter("rewrite.env.standard_builds").incr();
            Self::build_standard()
        })
    }

    /// Run the Fig. 5 declarations from scratch (the body behind the
    /// cached [`ConceptEnv::standard_ref`]).
    fn build_standard() -> Self {
        use AlgConcept::*;
        use BinOp::*;
        let mut env = ConceptEnv::default();

        env.declare(Type::Int, Add, Group)
            .declare(Type::Int, Add, Commutative)
            .set_identity(Type::Int, Add, Value::Int(0))
            .set_inverse_op(Type::Int, Add, UnOp::Neg);
        env.declare(Type::Int, Mul, Monoid)
            .declare(Type::Int, Mul, Commutative)
            .set_identity(Type::Int, Mul, Value::Int(1))
            .set_annihilator(Type::Int, Mul, Value::Int(0));

        env.declare(Type::Float, Add, Group)
            .declare(Type::Float, Add, Commutative)
            .set_identity(Type::Float, Add, Value::Float(0.0))
            .set_inverse_op(Type::Float, Add, UnOp::Neg);
        env.declare(Type::Float, Mul, Group)
            .declare(Type::Float, Mul, Commutative)
            .set_identity(Type::Float, Mul, Value::Float(1.0))
            .set_inverse_op(Type::Float, Mul, UnOp::Recip);

        env.declare(Type::BigFloat, Add, Group)
            .declare(Type::BigFloat, Add, Commutative)
            .set_identity(Type::BigFloat, Add, Value::BigFloat(0.0))
            .set_inverse_op(Type::BigFloat, Add, UnOp::Neg);
        env.declare(Type::BigFloat, Mul, Group)
            .declare(Type::BigFloat, Mul, Commutative)
            .set_identity(Type::BigFloat, Mul, Value::BigFloat(1.0))
            .set_inverse_op(Type::BigFloat, Mul, UnOp::Recip);

        env.declare(Type::Bool, And, Monoid)
            .declare(Type::Bool, And, Commutative)
            .declare(Type::Bool, And, Idempotent)
            .set_identity(Type::Bool, And, Value::Bool(true))
            .set_annihilator(Type::Bool, And, Value::Bool(false));
        env.declare(Type::Bool, Or, Monoid)
            .declare(Type::Bool, Or, Commutative)
            .declare(Type::Bool, Or, Idempotent)
            .set_identity(Type::Bool, Or, Value::Bool(false))
            .set_annihilator(Type::Bool, Or, Value::Bool(true));

        env.declare(Type::UInt, BitAnd, Monoid)
            .declare(Type::UInt, BitAnd, Commutative)
            .declare(Type::UInt, BitAnd, Idempotent)
            .set_identity(Type::UInt, BitAnd, Value::UInt(u64::MAX))
            .set_annihilator(Type::UInt, BitAnd, Value::UInt(0));

        env.declare(Type::Str, BinOp::Concat, Monoid).set_identity(
            Type::Str,
            BinOp::Concat,
            Value::Str(String::new()),
        );

        env.declare(Type::Rational, Mul, Group)
            .declare(Type::Rational, Mul, Commutative)
            .set_identity(
                Type::Rational,
                Mul,
                Value::Rational(gp_core::numeric::Rational::from_int(1)),
            )
            .set_inverse_op(Type::Rational, Mul, UnOp::Recip);
        env.declare(Type::Rational, Add, Group)
            .declare(Type::Rational, Add, Commutative)
            .set_identity(
                Type::Rational,
                Add,
                Value::Rational(gp_core::numeric::Rational::from_int(0)),
            )
            .set_inverse_op(Type::Rational, Add, UnOp::Neg);

        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_declaration_implies_monoid_and_semigroup() {
        let mut env = ConceptEnv::empty();
        env.declare(Type::Int, BinOp::Add, AlgConcept::Group);
        assert!(env.models(Type::Int, BinOp::Add, AlgConcept::Group));
        assert!(env.models(Type::Int, BinOp::Add, AlgConcept::Monoid));
        assert!(env.models(Type::Int, BinOp::Add, AlgConcept::Semigroup));
        assert!(!env.models(Type::Int, BinOp::Add, AlgConcept::Commutative));
    }

    #[test]
    fn standard_env_covers_fig5_pairs() {
        let env = ConceptEnv::standard();
        // Monoid identity instances of Fig. 5 row 1.
        assert_eq!(env.identity(Type::Int, BinOp::Mul), Some(&Value::Int(1)));
        assert_eq!(
            env.identity(Type::Float, BinOp::Mul),
            Some(&Value::Float(1.0))
        );
        assert_eq!(
            env.identity(Type::Bool, BinOp::And),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            env.identity(Type::UInt, BinOp::BitAnd),
            Some(&Value::UInt(u64::MAX))
        );
        assert_eq!(
            env.identity(Type::Str, BinOp::Concat),
            Some(&Value::Str(String::new()))
        );
        // Group instances of Fig. 5 row 2.
        assert!(env.models(Type::Int, BinOp::Add, AlgConcept::Group));
        assert!(env.models(Type::Float, BinOp::Mul, AlgConcept::Group));
        assert!(env.models(Type::Rational, BinOp::Mul, AlgConcept::Group));
        // Integer multiplication is NOT a group.
        assert!(!env.models(Type::Int, BinOp::Mul, AlgConcept::Group));
        // String concatenation is NOT commutative.
        assert!(!env.models(Type::Str, BinOp::Concat, AlgConcept::Commutative));
    }

    #[test]
    fn standard_env_is_shared_not_rebuilt_per_request() {
        // Regression for the gp-service hot path: concurrent handlers each
        // construct a `Simplifier::standard()`; the concept environment
        // behind them must be built once per process, not once per
        // request. Force the one allowed build, then prove 8 threads x 4
        // requests add zero further builds and all see the same statics.
        let first = ConceptEnv::standard_ref();
        let before = gp_telemetry::snapshot();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..4 {
                        let env = ConceptEnv::standard();
                        assert_eq!(env.identity(Type::Int, BinOp::Mul), Some(&Value::Int(1)));
                    }
                    ConceptEnv::standard_ref() as *const ConceptEnv as usize
                })
            })
            .collect();
        for h in handles {
            let ptr = h.join().unwrap();
            assert_eq!(ptr, first as *const ConceptEnv as usize);
        }
        let delta = gp_telemetry::snapshot().delta(&before);
        assert_eq!(
            delta.counter("rewrite.env.standard_builds"),
            0,
            "standard env was rebuilt after first use"
        );
    }

    #[test]
    fn inverse_ops_match_operation_kind() {
        let env = ConceptEnv::standard();
        assert_eq!(env.inverse_op(Type::Int, BinOp::Add), Some(UnOp::Neg));
        assert_eq!(env.inverse_op(Type::Float, BinOp::Mul), Some(UnOp::Recip));
        assert_eq!(env.inverse_op(Type::Int, BinOp::Mul), None);
    }
}
