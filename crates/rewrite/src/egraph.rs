//! Equality saturation over the hash-consed term store: the concept
//! superoptimizer.
//!
//! The directed engine ([`crate::simplify::Session::simplify`]) applies
//! the first matching rule and commits — a local optimum. This module
//! layers the machinery DESIGN §5 originally left out on top of the same
//! [`TermStore`]: a union-find of **e-classes** over the interned ids,
//! congruence closure on rebuild, e-matching of the *same* concept-gated
//! rule objects the directed engine dispatches, and **cost-based
//! extraction** of the cheapest representative. Rules still fire only
//! when the concept environment models their requirements, so every
//! union is justified by a declared algebraic law (or by congruence).
//!
//! Two things make this tractable rather than explosive:
//!
//! * **Bounded saturation.** Node / class / iteration budgets stop the
//!   loop deterministically; hitting one sets a flag in
//!   [`OptimizeStats`], never panics, and extraction still returns a
//!   no-worse-cost term (the input's class always contains the input).
//! * **Canonical rebuilding as cheap e-matching.** Representatives are
//!   chosen by a fixed preference (literals, then variables, then the
//!   oldest id), so rebuilding a node with its children's
//!   representatives tends to expose the literal/shared forms the rules
//!   pattern-match on. This is not complete e-matching — a rule sees one
//!   member per child class — but it is deterministic, cheap, and enough
//!   to reach the re-association/cancellation forms the directed engine
//!   cannot.
//!
//! Costs come through the [`CostModel`] concept with two library models:
//! [`ComplexityCost`] (weights derived from the taxonomy's asymptotic
//! complexity annotations, evaluated at a nominal size) and
//! [`MeasuredCost`] (weights from measured operation counts, the E9
//! methodology). Extraction is a fixpoint relaxation over classes with a
//! deterministic `(cost, id)` tie-break, so equal-cost extractions are
//! reproducible run to run.

use crate::env::ConceptEnv;
use crate::expr::{BinOp, Type, UnOp};
use crate::intern::{Term, TermId, TermStore};
use crate::simplify::Simplifier;
use gp_core::complexity::Complexity;
use gp_telemetry::Counter;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// E-graph telemetry, resolved once per process (the engine-metrics
/// pattern `simplify.rs` uses).
struct EGraphMetrics {
    classes: &'static Counter,
    nodes: &'static Counter,
    unions: &'static Counter,
    iters: &'static Counter,
    extract_cost: &'static Counter,
}

fn egraph_metrics() -> &'static EGraphMetrics {
    static METRICS: OnceLock<EGraphMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EGraphMetrics {
        classes: gp_telemetry::counter("rewrite.egraph.classes"),
        nodes: gp_telemetry::counter("rewrite.egraph.nodes"),
        unions: gp_telemetry::counter("rewrite.egraph.unions"),
        iters: gp_telemetry::counter("rewrite.egraph.iters"),
        extract_cost: gp_telemetry::counter("rewrite.egraph.extract_cost"),
    })
}

/// Saturation budgets. Every budget is a hard, deterministic stop: the
/// run reports `budget_hit` in [`OptimizeStats`] and extraction proceeds
/// on whatever the e-graph holds.
#[derive(Clone, Debug)]
pub struct EGraphConfig {
    /// Stop when the store holds this many e-nodes.
    pub max_nodes: usize,
    /// Stop when the e-graph holds this many e-classes.
    pub max_classes: usize,
    /// Stop after this many saturation iterations.
    pub max_iters: usize,
}

impl Default for EGraphConfig {
    fn default() -> Self {
        EGraphConfig {
            max_nodes: 20_000,
            max_classes: 20_000,
            max_iters: 16,
        }
    }
}

/// Statistics from one [`Session::optimize`](crate::Session::optimize)
/// run, mirrored into the `rewrite.egraph.*` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// E-classes at the end of saturation.
    pub classes: usize,
    /// E-nodes (interned terms touched by this run's store sweep).
    pub nodes: usize,
    /// Class merges performed (rule-justified plus congruence).
    pub unions: usize,
    /// Saturation iterations run.
    pub iters: usize,
    /// The loop reached a fixpoint (no new equalities or nodes).
    pub saturated: bool,
    /// A node/class/iteration budget stopped the loop early. Not an
    /// error: extraction still returns a no-worse-cost term.
    pub budget_hit: bool,
    /// Cost of the input term under the run's cost model.
    pub cost_before: u64,
    /// Cost of the extracted term (`<= cost_before` always).
    pub cost_after: u64,
    /// Tree size of the extracted term.
    pub extracted_size: usize,
    /// Saturation-phase rule applications that merged classes, per rule.
    pub applications: BTreeMap<String, usize>,
}

// ---------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------

/// The cost-model concept: the cost of one e-node **excluding** its
/// children (extraction adds child class costs). Implementations should
/// return at least 1; extraction clamps to 1 so that cyclic e-classes
/// (`x = x * 1` puts `x`'s class among its own children) can never be
/// their own cheapest explanation.
pub trait CostModel {
    /// Cost of the node itself, children excluded.
    fn node_cost(&self, store: &TermStore, id: TermId) -> u64;
}

/// The stable cost key of a node: `"<type>.<op>"` for operators (e.g.
/// `int.add`, `bigfloat.div`), `"call.<Name>"` for library calls,
/// `"lit"` / `"var"` for leaves. [`ComplexityCost`] and [`MeasuredCost`]
/// weight tables are keyed by these strings, as is the cost catalog the
/// taxonomy crate surfaces.
pub fn op_key(store: &TermStore, id: TermId) -> String {
    fn ty_key(t: Type) -> &'static str {
        match t {
            Type::Int => "int",
            Type::UInt => "uint",
            Type::Float => "float",
            Type::Bool => "bool",
            Type::Str => "str",
            Type::Rational => "rational",
            Type::Matrix => "matrix",
            Type::BigFloat => "bigfloat",
        }
    }
    fn bin_key(op: BinOp) -> &'static str {
        match op {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::BitAnd => "bitand",
            BinOp::Concat => "concat",
        }
    }
    fn un_key(op: UnOp) -> &'static str {
        match op {
            UnOp::Neg => "neg",
            UnOp::Recip => "recip",
            UnOp::Not => "not",
        }
    }
    match store.term(id) {
        Term::Lit(_) => "lit".to_string(),
        Term::Var(..) => "var".to_string(),
        Term::Unary(op, _) => format!("{}.{}", ty_key(store.ty(id)), un_key(*op)),
        Term::Binary(op, ..) => format!("{}.{}", ty_key(store.ty(id)), bin_key(*op)),
        Term::Call(name, ..) => format!("call.{name}"),
    }
}

/// Every node costs 1 — extraction minimizes tree size, the directed
/// engine's own metric. The baseline model for tests and ablations.
pub struct AstSizeCost;

impl CostModel for AstSizeCost {
    fn node_cost(&self, _store: &TermStore, _id: TermId) -> u64 {
        1
    }
}

/// Weights derived from the taxonomy's asymptotic complexity
/// annotations: each operator's [`Complexity`] evaluated at a nominal
/// problem size (operand width, precision …) and rounded up. Leaves and
/// unlisted operators fall back to `default_weight`.
pub struct ComplexityCost {
    weights: BTreeMap<String, u64>,
    default_weight: u64,
}

impl ComplexityCost {
    /// Build from `(op key, annotation)` pairs, evaluating every
    /// annotation at size `n` (see [`op_key`] for the key format).
    pub fn from_annotations<'a>(
        annotations: impl IntoIterator<Item = (&'a str, &'a Complexity)>,
        n: f64,
    ) -> Self {
        let weights = annotations
            .into_iter()
            .map(|(key, c)| (key.to_string(), weight_of(c.evaluate_single(n))))
            .collect();
        ComplexityCost {
            weights,
            default_weight: 1,
        }
    }
}

/// Clamp an evaluated complexity / measured count to a usable weight.
fn weight_of(w: f64) -> u64 {
    if w.is_finite() {
        (w.ceil() as u64).clamp(1, 1 << 40)
    } else {
        1 << 40
    }
}

impl CostModel for ComplexityCost {
    fn node_cost(&self, store: &TermStore, id: TermId) -> u64 {
        self.weights
            .get(&op_key(store, id))
            .copied()
            .unwrap_or(self.default_weight)
    }
}

/// Weights from **measured** operation counts (the E9 methodology:
/// instrumented runs counting what each operation actually executes),
/// keyed like [`op_key`]. Unlisted operators fall back to
/// `default_count`.
pub struct MeasuredCost {
    counts: BTreeMap<String, u64>,
    default_count: u64,
}

impl MeasuredCost {
    /// Build from `(op key, measured count)` pairs.
    pub fn from_counts<K: Into<String>>(counts: impl IntoIterator<Item = (K, u64)>) -> Self {
        MeasuredCost {
            counts: counts
                .into_iter()
                .map(|(k, v)| (k.into(), v.max(1)))
                .collect(),
            default_count: 1,
        }
    }
}

impl CostModel for MeasuredCost {
    fn node_cost(&self, store: &TermStore, id: TermId) -> u64 {
        self.counts
            .get(&op_key(store, id))
            .copied()
            .unwrap_or(self.default_count)
    }
}

// ---------------------------------------------------------------------
// Union-find with representative preference
// ---------------------------------------------------------------------

/// Representative preference class: literals canonicalize classes to
/// their constant member, variables beat compound terms, and ties break
/// to the oldest id. Children are always interned before parents, so
/// "oldest" also means "subterm-most" — canonical rebuilding shrinks.
fn node_rank(store: &TermStore, id: TermId) -> u8 {
    match store.term(id) {
        Term::Lit(_) => 0,
        Term::Var(..) => 1,
        _ => 2,
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    /// Grow to cover `n` ids (new ids start as singleton classes).
    fn ensure(&mut self, n: usize) {
        let from = self.parent.len();
        self.parent
            .extend((from..n).map(|i| u32::try_from(i).expect("e-graph id overflow")));
    }

    fn find(&mut self, id: TermId) -> TermId {
        let mut i = id.index();
        while self.parent[i] as usize != i {
            // Path halving.
            let gp = self.parent[self.parent[i] as usize];
            self.parent[i] = gp;
            i = gp as usize;
        }
        TermId::from_index(i)
    }
}

// ---------------------------------------------------------------------
// The e-graph
// ---------------------------------------------------------------------

/// An equality-saturation session over a [`TermStore`]: every interned
/// term is an e-node; the union-find groups them into e-classes.
/// Normally driven through [`Session::optimize`](crate::Session::optimize);
/// public for tests and for callers that want staged control
/// ([`EGraph::saturate`] then [`EGraph::extract`]).
pub struct EGraph<'a> {
    simp: &'a Simplifier,
    store: &'a mut TermStore,
    uf: UnionFind,
    unions: usize,
}

impl<'a> EGraph<'a> {
    /// Wrap a store (typically a [`Session`](crate::Session)'s) for
    /// saturation with `simp`'s rules and environment.
    pub fn new(simp: &'a Simplifier, store: &'a mut TermStore) -> Self {
        let mut uf = UnionFind::new();
        uf.ensure(store.len());
        EGraph {
            simp,
            store,
            uf,
            unions: 0,
        }
    }

    /// The canonical representative of `id`'s e-class.
    pub fn find(&mut self, id: TermId) -> TermId {
        self.uf.ensure(self.store.len());
        self.uf.find(id)
    }

    /// Merge the classes of `a` and `b`; returns whether they were
    /// distinct. The surviving representative is the preferred member
    /// (literal > variable > compound, then oldest id).
    fn union(&mut self, a: TermId, b: TermId) -> bool {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return false;
        }
        let ka = (node_rank(self.store, ra), ra.index());
        let kb = (node_rank(self.store, rb), rb.index());
        let (root, child) = if ka <= kb { (ra, rb) } else { (rb, ra) };
        self.uf.parent[child.index()] = u32::try_from(root.index()).expect("e-graph id overflow");
        self.unions += 1;
        true
    }

    /// Rebuild `id` with canonical children (congruence probe). Interns
    /// the rebuilt node when it differs.
    fn canonical_rebuild(&mut self, id: TermId) -> TermId {
        match self.store.term(id) {
            Term::Lit(_) | Term::Var(..) => id,
            &Term::Unary(op, x) => {
                let xc = self.uf.find(x);
                if xc == x {
                    id
                } else {
                    self.store.unary(op, xc)
                }
            }
            &Term::Binary(op, l, r) => {
                let (lc, rc) = (self.uf.find(l), self.uf.find(r));
                if lc == l && rc == r {
                    id
                } else {
                    self.store.binary(op, lc, rc)
                }
            }
            Term::Call(name, ty, args) => {
                let (name, ty, args) = (name.clone(), *ty, args.clone());
                let canon: Vec<TermId> = args.iter().map(|&a| self.uf.find(a)).collect();
                if canon == args {
                    id
                } else {
                    self.store.call(&name, ty, &canon)
                }
            }
        }
    }

    /// Congruence closure: repeatedly rebuild every node with canonical
    /// children and union it with the rebuilt form, until nothing moves
    /// or the node budget stops it. Returns `true` on a budget stop.
    fn rebuild(&mut self, cfg: &EGraphConfig) -> bool {
        loop {
            let mut changed = false;
            let n = self.store.len();
            self.uf.ensure(n);
            for i in 0..n {
                let id = TermId::from_index(i);
                let rebuilt = self.canonical_rebuild(id);
                self.uf.ensure(self.store.len());
                if self.union(id, rebuilt) {
                    changed = true;
                }
            }
            self.uf.ensure(self.store.len());
            if self.store.len() >= cfg.max_nodes {
                return true;
            }
            if !changed && self.store.len() == n {
                return false;
            }
        }
    }

    /// Number of distinct e-classes.
    pub fn class_count(&mut self) -> usize {
        let n = self.store.len();
        self.uf.ensure(n);
        (0..n)
            .filter(|&i| {
                let id = TermId::from_index(i);
                self.uf.find(id) == id
            })
            .count()
    }

    /// Run bounded equality saturation from `root`'s store. Every
    /// e-node is e-matched against the rule index each iteration; fires
    /// that merge distinct classes count as applications (re-deriving a
    /// known equality is free and unreported). Deterministic: nodes are
    /// swept in id order and unions use a fixed preference, so two runs
    /// over equal inputs produce identical e-graphs.
    pub fn saturate(&mut self, cfg: &EGraphConfig, stats: &mut OptimizeStats) {
        loop {
            if stats.iters >= cfg.max_iters {
                stats.budget_hit = true;
                break;
            }
            stats.iters += 1;
            let n = self.store.len();
            let unions_before = self.unions;
            self.uf.ensure(n);

            // E-match phase: collect (lhs, rhs, rule) triples before
            // touching the union-find so match order cannot depend on
            // this iteration's own merges.
            let mut matches: Vec<(TermId, TermId, usize)> = Vec::new();
            let simp = self.simp;
            let index = simp.index();
            let rules = simp.rules_slice();
            let env: &ConceptEnv = simp.env();
            let mut node_budget_hit = false;
            for i in 0..n {
                let id = TermId::from_index(i);
                let cands = index.candidates(self.store, id);
                for &ri in cands {
                    if let Some(next) = rules[ri as usize].try_apply_interned(self.store, id, env) {
                        if next != id {
                            matches.push((id, next, ri as usize));
                        }
                    }
                }
                if self.store.len() >= cfg.max_nodes {
                    node_budget_hit = true;
                    break;
                }
            }
            self.uf.ensure(self.store.len());
            for (lhs, rhs, ri) in matches {
                if self.union(lhs, rhs) {
                    self.simp.record_fire(ri);
                    *stats
                        .applications
                        .entry(self.simp.rules_slice()[ri].name().to_string())
                        .or_insert(0) += 1;
                }
            }

            // Congruence closure over everything the matches added.
            node_budget_hit |= self.rebuild(cfg);

            if node_budget_hit || self.class_count() >= cfg.max_classes {
                stats.budget_hit = true;
                break;
            }
            if self.unions == unions_before && self.store.len() == n {
                stats.saturated = true;
                break;
            }
        }
        stats.nodes = self.store.len();
        stats.classes = self.class_count();
        stats.unions = self.unions;
    }

    /// Tree cost of `id` under `cost` (children counted per occurrence,
    /// shared subterms memoized for linear time), ignoring e-classes —
    /// the "before" yardstick extraction must beat or match.
    pub fn tree_cost(&self, cost: &dyn CostModel, id: TermId) -> u64 {
        fn go(store: &TermStore, cost: &dyn CostModel, id: TermId, memo: &mut Vec<u64>) -> u64 {
            if memo[id.index()] != u64::MAX {
                return memo[id.index()];
            }
            let own = cost.node_cost(store, id).max(1);
            let total = match store.term(id) {
                Term::Lit(_) | Term::Var(..) => own,
                &Term::Unary(_, x) => own.saturating_add(go(store, cost, x, memo)),
                &Term::Binary(_, l, r) => own
                    .saturating_add(go(store, cost, l, memo))
                    .saturating_add(go(store, cost, r, memo)),
                Term::Call(_, _, args) => {
                    let args: Vec<TermId> = args.clone();
                    args.into_iter()
                        .fold(own, |acc, a| acc.saturating_add(go(store, cost, a, memo)))
                }
            };
            memo[id.index()] = total;
            total
        }
        let mut memo = vec![u64::MAX; self.store.len()];
        go(self.store, cost, id, &mut memo)
    }

    /// Extract the cheapest term equivalent to `root`: a fixpoint
    /// relaxation assigns every e-class the `(cost, id)`-minimal of its
    /// nodes' costs (node cost plus child class costs), then the best
    /// nodes are rebuilt into a plain term. Returns the extracted term's
    /// id and its cost. Deterministic via the lexicographic tie-break.
    pub fn extract(&mut self, root: TermId, cost: &dyn CostModel) -> (TermId, u64) {
        let n = self.store.len();
        self.uf.ensure(n);
        // Per-node own costs and class membership, resolved once.
        let own: Vec<u64> = (0..n)
            .map(|i| cost.node_cost(self.store, TermId::from_index(i)).max(1))
            .collect();
        let class: Vec<usize> = (0..n)
            .map(|i| self.uf.find(TermId::from_index(i)).index())
            .collect();
        // best[c] = (cost, node) — the cheapest explanation of class c.
        let mut best: Vec<Option<(u64, TermId)>> = vec![None; n];
        loop {
            let mut changed = false;
            for i in 0..n {
                let id = TermId::from_index(i);
                let c = match self.node_dp_cost(id, own[i], &class, &best) {
                    Some(c) => c,
                    None => continue,
                };
                let slot = &mut best[class[i]];
                if slot.is_none_or(|(bc, bid)| (c, id) < (bc, bid)) {
                    *slot = Some((c, id));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let root_class = class[root.index()];
        let (root_cost, _) = best[root_class].expect("root class has no finite-cost member");
        let mut built: Vec<Option<TermId>> = vec![None; n];
        let out = self.build_best(root_class, &class, &best, &mut built);
        (out, root_cost)
    }

    /// DP cost of one node: own weight plus its children's current class
    /// costs; `None` while any child class is still unexplained.
    fn node_dp_cost(
        &self,
        id: TermId,
        own: u64,
        class: &[usize],
        best: &[Option<(u64, TermId)>],
    ) -> Option<u64> {
        let child_cost = |c: TermId| -> Option<u64> {
            // Children interned during extraction cannot appear here:
            // `class`/`best` were sized before any rebuild.
            best[class[c.index()]].map(|(cost, _)| cost)
        };
        Some(match self.store.term(id) {
            Term::Lit(_) | Term::Var(..) => own,
            &Term::Unary(_, x) => own.saturating_add(child_cost(x)?),
            &Term::Binary(_, l, r) => own
                .saturating_add(child_cost(l)?)
                .saturating_add(child_cost(r)?),
            Term::Call(_, _, args) => {
                let mut acc = own;
                for &a in args {
                    acc = acc.saturating_add(child_cost(a)?);
                }
                acc
            }
        })
    }

    /// Rebuild the best node of `cls` as a plain term (recursively
    /// substituting each child class's best). Terminates because a best
    /// node's children were explained strictly before it (node costs are
    /// >= 1, so a class can never be on its own cheapest path).
    fn build_best(
        &mut self,
        cls: usize,
        class: &[usize],
        best: &[Option<(u64, TermId)>],
        built: &mut Vec<Option<TermId>>,
    ) -> TermId {
        if let Some(done) = built[cls] {
            return done;
        }
        let (_, node) = best[cls].expect("extracting a class with no explanation");
        let out = match self.store.term(node) {
            Term::Lit(_) | Term::Var(..) => node,
            &Term::Unary(op, x) => {
                let xb = self.build_best(class[x.index()], class, best, built);
                self.store.unary(op, xb)
            }
            &Term::Binary(op, l, r) => {
                let lb = self.build_best(class[l.index()], class, best, built);
                let rb = self.build_best(class[r.index()], class, best, built);
                self.store.binary(op, lb, rb)
            }
            Term::Call(name, ty, args) => {
                let (name, ty, args) = (name.clone(), *ty, args.clone());
                let ab: Vec<TermId> = args
                    .iter()
                    .map(|&a| self.build_best(class[a.index()], class, best, built))
                    .collect();
                self.store.call(&name, ty, &ab)
            }
        };
        built[cls] = Some(out);
        out
    }

    /// The whole pipeline: saturate from `root`, then extract the
    /// cheapest equivalent under `cost`. Publishes the run into the
    /// `rewrite.egraph.*` counters.
    pub fn optimize(
        &mut self,
        root: TermId,
        cfg: &EGraphConfig,
        cost: &dyn CostModel,
    ) -> (TermId, OptimizeStats) {
        let _span = gp_telemetry::span("optimize");
        let mut stats = OptimizeStats {
            cost_before: self.tree_cost(cost, root),
            ..OptimizeStats::default()
        };
        self.saturate(cfg, &mut stats);
        let (out, cost_after) = self.extract(root, cost);
        stats.cost_after = cost_after.min(stats.cost_before);
        // Extraction can only rediscover the input when saturation found
        // nothing cheaper; report the input itself then so callers never
        // see a rebuilt-but-equal dressing of it.
        let out = if cost_after < stats.cost_before {
            out
        } else {
            root
        };
        stats.extracted_size = usize::try_from(self.store.size(out)).unwrap_or(usize::MAX);
        let m = egraph_metrics();
        m.classes.add(stats.classes as u64);
        m.nodes.add(stats.nodes as u64);
        m.unions.add(stats.unions as u64);
        m.iters.add(stats.iters as u64);
        m.extract_cost.add(stats.cost_after);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Value};

    fn superopt() -> Simplifier {
        Simplifier::superopt(ConceptEnv::standard())
    }

    /// `(x + y) + (-y)`: the flagship form the directed engine cannot
    /// reduce (no rule matches any node), but re-association exposes the
    /// Group cancellation.
    fn cancellation() -> Expr {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, x, y.clone()),
            Expr::un(UnOp::Neg, y),
        )
    }

    #[test]
    fn extraction_reaches_past_the_directed_engine() {
        let s = superopt();
        let directed = Simplifier::standard();
        let (nf, _) = directed.simplify(&cancellation());
        assert_eq!(nf.to_string(), "((x + y) + (-y))", "directed is stuck");

        let mut sess = s.session();
        let (out, stats) = sess.optimize(&cancellation(), &EGraphConfig::default(), &AstSizeCost);
        assert_eq!(out, Expr::var("x", Type::Int));
        assert!(stats.saturated && !stats.budget_hit);
        assert!(stats.cost_after < stats.cost_before);
        assert!(stats.unions > 0 && stats.nodes >= stats.classes);
    }

    #[test]
    fn optimize_is_deterministic() {
        let s = superopt();
        let run = || {
            let mut sess = s.session();
            sess.optimize(&cancellation(), &EGraphConfig::default(), &AstSizeCost)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn already_minimal_terms_come_back_unchanged() {
        let s = superopt();
        let mut sess = s.session();
        let e = Expr::bin(
            BinOp::Mul,
            Expr::var("a", Type::Int),
            Expr::var("b", Type::Int),
        );
        let (out, stats) = sess.optimize(&e, &EGraphConfig::default(), &AstSizeCost);
        assert_eq!(out, e);
        assert_eq!(stats.cost_after, stats.cost_before);
    }

    #[test]
    fn budget_hit_is_a_flag_not_a_panic_and_extraction_is_no_worse() {
        let s = superopt();
        // Eight-variable add chain: commute x associate explodes far past
        // a tiny node budget.
        let mut e = Expr::var("v0", Type::Int);
        for i in 1..8 {
            e = Expr::bin(BinOp::Add, e, Expr::var(format!("v{i}"), Type::Int));
        }
        let cfg = EGraphConfig {
            max_nodes: 120,
            ..EGraphConfig::default()
        };
        let mut sess = s.session();
        let (out, stats) = sess.optimize(&e, &cfg, &AstSizeCost);
        assert!(stats.budget_hit && !stats.saturated);
        assert!(stats.cost_after <= stats.cost_before);
        // The extracted term is still a permutation-sized add chain.
        assert_eq!(out.size(), e.size());
    }

    #[test]
    fn iteration_budget_alone_also_stops_the_loop() {
        let s = superopt();
        let mut e = Expr::var("v0", Type::Int);
        for i in 1..6 {
            e = Expr::bin(BinOp::Add, e, Expr::var(format!("v{i}"), Type::Int));
        }
        let cfg = EGraphConfig {
            max_iters: 2,
            ..EGraphConfig::default()
        };
        let mut sess = s.session();
        let (_, stats) = sess.optimize(&e, &cfg, &AstSizeCost);
        assert!(stats.iters <= 2);
        assert!(stats.budget_hit);
    }

    #[test]
    fn cost_models_weight_by_op_key() {
        let mut store = TermStore::new();
        let f = store.var("f", Type::BigFloat);
        let one = store.lit(&Value::BigFloat(1.0));
        let div = store.binary(BinOp::Div, one, f);
        let call = store.call("Inverse", Type::BigFloat, &[f]);
        assert_eq!(op_key(&store, div), "bigfloat.div");
        assert_eq!(op_key(&store, call), "call.Inverse");
        assert_eq!(op_key(&store, f), "var");

        let quadratic = Complexity::poly("b", 2);
        let linear = Complexity::linear("b");
        let annot = ComplexityCost::from_annotations(
            [("bigfloat.div", &quadratic), ("call.Inverse", &linear)],
            64.0,
        );
        assert!(annot.node_cost(&store, div) > annot.node_cost(&store, call));

        let measured =
            MeasuredCost::from_counts([("bigfloat.div", 4096u64), ("call.Inverse", 64u64)]);
        assert!(measured.node_cost(&store, div) > measured.node_cost(&store, call));
    }

    #[test]
    fn annotation_costs_steer_extraction_between_equal_terms() {
        // Under a model where bigfloat division is quadratic and the
        // LiDIA Inverse call linear, the e-graph extracts the call; under
        // the flat AST-size model, `1.0/f` (3 nodes) beats `Inverse(f)`
        // + nothing — both live in one class either way.
        let mut s = Simplifier::superopt(ConceptEnv::standard());
        s.add_rule(Box::new(crate::rules::LidiaInverse));
        let e = Expr::bin(
            BinOp::Div,
            Expr::bigfloat(1.0),
            Expr::var("f", Type::BigFloat),
        );
        let quadratic = Complexity::poly("b", 2);
        let linear = Complexity::linear("b");
        let annot = ComplexityCost::from_annotations(
            [("bigfloat.div", &quadratic), ("call.Inverse", &linear)],
            64.0,
        );
        let mut sess = s.session();
        let (out, stats) = sess.optimize(&e, &EGraphConfig::default(), &annot);
        assert_eq!(out.to_string(), "Inverse(f)");
        assert!(stats.cost_after < stats.cost_before);
    }
}
