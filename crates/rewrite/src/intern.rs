//! Hash-consed term store: every distinct subterm is interned exactly once
//! and identified by a dense [`TermId`] (`u32`), so structural equality and
//! hashing are O(1) id comparisons and an unchanged shared subtree is never
//! re-cloned or re-visited.
//!
//! This is the classic speed lever of term-rewriting engines (and the
//! degenerate, single-representative case of the e-graphs used by
//! equality-saturation systems): the `Box<Expr>` tree the facade API still
//! speaks is converted in once, rewritten as a DAG of ids, and converted
//! out once. A deliberately DAG-shaped input of 2^k tree nodes costs the
//! interned engine O(k) work where the clone-per-pass engine pays O(2^k).
//!
//! Two pieces of per-term metadata keep rule semantics *identical* to the
//! tree engine even though ids compare floats by bit pattern:
//!
//! * `norm` — the id of the term with every `-0.0` float/bigfloat literal
//!   replaced by `+0.0`. `Expr`'s derived `PartialEq` treats `-0.0 == 0.0`,
//!   so equality-sensitive rules compare `norm` ids, not raw ids.
//! * `has_nan` — whether any literal in the term is NaN. `NaN != NaN`
//!   under `PartialEq`, so a term containing NaN is never "equal" to
//!   anything, including itself, and equality-sensitive rules must not
//!   fire on it even though the ids coincide.
//!
//! With both, [`TermStore::exprs_eq`] decides `Expr::eq` of the two
//! represented trees in O(1).

use crate::expr::{BinOp, Expr, Type, UnOp, Value};
use gp_telemetry::Counter;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// FNV-1a — the interner hashes every node of every incoming expression,
/// so the default SipHash (keyed, init-heavy) is measurable overhead on
/// no-sharing workloads. Collisions are harmless: candidates are confirmed
/// structurally against the arena.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The hash-consing index: a flat open-addressed table of
/// `(term hash, id)` pairs with linear probing. A `HashMap<u64,
/// Vec<TermId>>` would allocate a bucket `Vec` per distinct term — one
/// malloc per node of every fresh expression — and re-hash the already-
/// hashed key; this is one array, no per-entry allocation, no re-hash.
/// Equal hashes are confirmed structurally against the arena by the
/// caller, so collisions only cost an extra probe.
struct ConsTable {
    /// `(hash, raw id)`; id `u32::MAX` marks an empty slot.
    slots: Vec<(u64, u32)>,
    len: usize,
}

const CONS_EMPTY: u32 = u32::MAX;

impl Default for ConsTable {
    fn default() -> Self {
        ConsTable {
            slots: vec![(0, CONS_EMPTY); 64],
            len: 0,
        }
    }
}

impl ConsTable {
    /// Visit every stored id whose hash equals `h`, in probe order,
    /// until `confirm` accepts one.
    fn find(&self, h: u64, mut confirm: impl FnMut(TermId) -> bool) -> Option<TermId> {
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let (sh, sid) = self.slots[i];
            if sid == CONS_EMPTY {
                return None;
            }
            if sh == h && confirm(TermId(sid)) {
                return Some(TermId(sid));
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, h: u64, id: TermId) {
        if self.len * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        while self.slots[i].1 != CONS_EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = (h, id.0);
        self.len += 1;
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![(0, CONS_EMPTY); 0]);
        self.slots = vec![(0, CONS_EMPTY); old.len() * 2];
        let mask = self.slots.len() - 1;
        for (h, id) in old {
            if id != CONS_EMPTY {
                let mut i = (h as usize) & mask;
                while self.slots[i].1 != CONS_EMPTY {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (h, id);
            }
        }
    }
}

/// Identity of an interned term. Kept at exactly four bytes so memo tables
/// (`TermId → TermId`) stay cache-dense; a compile-time assert below and a
/// unit test guard the size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

// Batch memo tables key and value on TermId; widening it silently halves
// how many entries fit per cache line. Fail the build instead.
const _: () = assert!(std::mem::size_of::<TermId>() == 4);
const _: () = assert!(std::mem::size_of::<Option<TermId>>() == 8);

impl TermId {
    /// The raw index (dense, 0-based, in interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a dense index. Crate-internal: only the e-graph
    /// sweeps the store by index; callers must stay below
    /// [`TermStore::len`] of the store the index came from.
    pub(crate) fn from_index(i: usize) -> TermId {
        TermId(u32::try_from(i).expect("term index exceeds u32"))
    }
}

/// An interned term: the same shape as [`Expr`], children by id.
#[derive(Clone, Debug)]
pub enum Term {
    /// Literal value.
    Lit(Value),
    /// Typed variable.
    Var(String, Type),
    /// Unary application.
    Unary(UnOp, TermId),
    /// Binary application.
    Binary(BinOp, TermId, TermId),
    /// Named function call.
    Call(String, Type, Vec<TermId>),
}

/// Head symbol of a term — the first dispatch key of the rule index
/// (the second is the term's [`Type`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Head {
    /// Binary application of this operator.
    Bin(BinOp),
    /// Unary application of this operator.
    Un(UnOp),
    /// Named function call.
    Call,
    /// Literal leaf.
    Lit,
    /// Variable leaf.
    Var,
}

impl Head {
    /// Dense index for table-backed dispatch (see [`Head::COUNT`]).
    pub fn index(self) -> usize {
        match self {
            Head::Bin(op) => op as usize,
            Head::Un(op) => 8 + op as usize,
            Head::Call => 11,
            Head::Lit => 12,
            Head::Var => 13,
        }
    }

    /// Number of distinct head values.
    pub const COUNT: usize = 14;
}

/// Dense index for a [`Type`] (see [`TYPE_COUNT`]).
pub fn type_index(t: Type) -> usize {
    t as usize
}

/// Number of distinct [`Type`] values.
pub const TYPE_COUNT: usize = 8;

/// A borrowed view of a term, used to look up candidates without
/// allocating the owned [`Term`] first.
enum TermRef<'a> {
    Lit(&'a Value),
    Var(&'a str, Type),
    Unary(UnOp, TermId),
    Binary(BinOp, TermId, TermId),
    Call(&'a str, Type, &'a [TermId]),
}

/// Hash a value by *bit pattern* (floats via `to_bits`), so it can key the
/// hash-consing map even though `f64` is not `Hash`. Two values with equal
/// bits are structurally interchangeable; `-0.0`/`0.0` and NaN asymmetries
/// versus `PartialEq` are recovered through `norm`/`has_nan` metadata.
fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    std::mem::discriminant(v).hash(state);
    match v {
        Value::Int(x) => x.hash(state),
        Value::UInt(x) => x.hash(state),
        Value::Float(x) => x.to_bits().hash(state),
        Value::Bool(b) => b.hash(state),
        Value::Str(s) => s.hash(state),
        Value::Rational(r) => r.hash(state),
        Value::BigFloat(x) => x.to_bits().hash(state),
    }
}

/// Bit-level value equality — the interner's notion of "same literal".
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::BigFloat(x), Value::BigFloat(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

impl TermRef<'_> {
    fn hash64(&self) -> u64 {
        let mut h = Fnv1a::default();
        match self {
            TermRef::Lit(v) => {
                0u8.hash(&mut h);
                hash_value(v, &mut h);
            }
            TermRef::Var(name, ty) => {
                1u8.hash(&mut h);
                name.hash(&mut h);
                ty.hash(&mut h);
            }
            TermRef::Unary(op, x) => {
                2u8.hash(&mut h);
                op.hash(&mut h);
                x.hash(&mut h);
            }
            TermRef::Binary(op, l, r) => {
                3u8.hash(&mut h);
                op.hash(&mut h);
                l.hash(&mut h);
                r.hash(&mut h);
            }
            TermRef::Call(name, ty, args) => {
                4u8.hash(&mut h);
                name.hash(&mut h);
                ty.hash(&mut h);
                args.hash(&mut h);
            }
        }
        h.finish()
    }

    fn matches(&self, t: &Term) -> bool {
        match (self, t) {
            (TermRef::Lit(a), Term::Lit(b)) => value_bits_eq(a, b),
            (TermRef::Var(n, ty), Term::Var(m, tz)) => *n == m && ty == tz,
            (TermRef::Unary(op, x), Term::Unary(oq, y)) => op == oq && x == y,
            (TermRef::Binary(op, l, r), Term::Binary(oq, m, s)) => op == oq && l == m && r == s,
            (TermRef::Call(n, ty, args), Term::Call(m, tz, brgs)) => {
                *n == m && ty == tz && *args == brgs.as_slice()
            }
            _ => false,
        }
    }

    fn to_owned(&self) -> Term {
        match self {
            TermRef::Lit(v) => Term::Lit((*v).clone()),
            TermRef::Var(n, ty) => Term::Var((*n).to_string(), *ty),
            TermRef::Unary(op, x) => Term::Unary(*op, *x),
            TermRef::Binary(op, l, r) => Term::Binary(*op, *l, *r),
            TermRef::Call(n, ty, args) => Term::Call((*n).to_string(), *ty, args.to_vec()),
        }
    }
}

/// Per-term cached metadata, computed once at interning time.
struct TermData {
    term: Term,
    /// Static type (the `Expr::ty` recursion, paid once).
    ty: Type,
    /// Tree size of the represented expression (the `Expr::size`
    /// recursion, paid once; `u64` because a shared DAG unfolds
    /// exponentially).
    size: u64,
    /// Id of the `-0.0 → +0.0` normalized variant (usually `self`).
    norm: TermId,
    /// Whether any literal inside is NaN.
    has_nan: bool,
}

/// Interning counters, resolved once per process (module-level static, the
/// same pattern `gp-parallel` uses for its hot-path metrics).
struct InternMetrics {
    hits: &'static Counter,
    misses: &'static Counter,
}

fn intern_metrics() -> &'static InternMetrics {
    static METRICS: OnceLock<InternMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InternMetrics {
        hits: gp_telemetry::counter("rewrite.intern.hits"),
        misses: gp_telemetry::counter("rewrite.intern.misses"),
    })
}

/// The arena-backed, hash-consed term store.
#[derive(Default)]
pub struct TermStore {
    terms: Vec<TermData>,
    /// hash → id index (candidates are confirmed against the arena, so
    /// the table never owns a second copy of a term).
    map: ConsTable,
}

impl TermStore {
    /// An empty store.
    pub fn new() -> Self {
        TermStore::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    fn data(&self, id: TermId) -> &TermData {
        &self.terms[id.index()]
    }

    /// The interned term behind `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.data(id).term
    }

    /// Static type of the term — O(1), cached at interning time.
    pub fn ty(&self, id: TermId) -> Type {
        self.data(id).ty
    }

    /// Tree size of the represented expression — O(1), cached.
    pub fn size(&self, id: TermId) -> u64 {
        self.data(id).size
    }

    /// Head symbol of the term.
    pub fn head(&self, id: TermId) -> Head {
        match self.term(id) {
            Term::Lit(_) => Head::Lit,
            Term::Var(..) => Head::Var,
            Term::Unary(op, _) => Head::Un(*op),
            Term::Binary(op, ..) => Head::Bin(*op),
            Term::Call(..) => Head::Call,
        }
    }

    /// Does the represented tree contain a NaN literal?
    pub fn has_nan(&self, id: TermId) -> bool {
        self.data(id).has_nan
    }

    /// Decide `Expr::eq` of the two represented trees in O(1): equal ids
    /// after `-0.0` normalization, and no NaN anywhere (NaN is not equal
    /// to itself under `PartialEq`, so such a tree equals nothing).
    pub fn exprs_eq(&self, a: TermId, b: TermId) -> bool {
        self.data(a).norm == self.data(b).norm && !self.data(a).has_nan
    }

    fn intern(&mut self, key: TermRef<'_>) -> TermId {
        let h = key.hash64();
        let terms = &self.terms;
        if let Some(id) = self.map.find(h, |id| key.matches(&terms[id.index()].term)) {
            intern_metrics().hits.incr();
            return id;
        }
        intern_metrics().misses.incr();
        let term = key.to_owned();
        // `< u32::MAX`, not `<= `: the top value is [`TermMap`]'s sentinel.
        let raw = u32::try_from(self.terms.len())
            .ok()
            .filter(|&n| n < u32::MAX)
            .expect("term store overflowed u32 ids");
        let id = TermId(raw);
        let (ty, size, norm_parts, has_nan) = self.metadata_of(&term);
        self.terms.push(TermData {
            term,
            ty,
            size,
            norm: id, // provisional; fixed up below when a variant differs
            has_nan,
        });
        self.map.insert(h, id);
        // Compute the -0.0-normalized variant. Children are already
        // interned (hence already normalized); only a differing child norm
        // or a -0.0 literal at the root forces a second interning, and the
        // variant's own norm is itself, so this recursion is depth one.
        if let Some(norm_key) = norm_parts {
            let norm = self.intern_norm_variant(norm_key);
            self.terms[id.index()].norm = norm;
        }
        id
    }

    /// Metadata for a freshly interned term, plus the recipe for its
    /// normalized variant if that differs from the term itself.
    #[allow(clippy::type_complexity)]
    fn metadata_of(&self, term: &Term) -> (Type, u64, Option<NormVariant>, bool) {
        match term {
            Term::Lit(v) => {
                let nan = matches!(v, Value::Float(x) | Value::BigFloat(x) if x.is_nan());
                let norm = match v {
                    Value::Float(x) if x.to_bits() == (-0.0f64).to_bits() => {
                        Some(NormVariant::Lit(Value::Float(0.0)))
                    }
                    Value::BigFloat(x) if x.to_bits() == (-0.0f64).to_bits() => {
                        Some(NormVariant::Lit(Value::BigFloat(0.0)))
                    }
                    _ => None,
                };
                (v.ty(), 1, norm, nan)
            }
            Term::Var(_, t) => (*t, 1, None, false),
            Term::Unary(op, x) => {
                let ty = if *op == UnOp::Not {
                    Type::Bool
                } else {
                    self.ty(*x)
                };
                let xn = self.data(*x).norm;
                let norm = (xn != *x).then_some(NormVariant::Unary(*op, xn));
                (ty, 1 + self.size(*x), norm, self.has_nan(*x))
            }
            Term::Binary(op, l, r) => {
                let (ln, rn) = (self.data(*l).norm, self.data(*r).norm);
                let norm = (ln != *l || rn != *r).then_some(NormVariant::Binary(*op, ln, rn));
                (
                    self.ty(*l),
                    1 + self.size(*l) + self.size(*r),
                    norm,
                    self.has_nan(*l) || self.has_nan(*r),
                )
            }
            Term::Call(name, t, args) => {
                let norms: Vec<TermId> = args.iter().map(|a| self.data(*a).norm).collect();
                let norm = (norms != *args).then(|| NormVariant::Call(name.clone(), *t, norms));
                (
                    *t,
                    1 + args.iter().map(|a| self.size(*a)).sum::<u64>(),
                    norm,
                    args.iter().any(|a| self.has_nan(*a)),
                )
            }
        }
    }

    fn intern_norm_variant(&mut self, v: NormVariant) -> TermId {
        match v {
            NormVariant::Lit(val) => self.intern(TermRef::Lit(&val)),
            NormVariant::Unary(op, x) => self.intern(TermRef::Unary(op, x)),
            NormVariant::Binary(op, l, r) => self.intern(TermRef::Binary(op, l, r)),
            NormVariant::Call(name, ty, args) => self.intern(TermRef::Call(&name, ty, &args)),
        }
    }

    // --- public constructors -------------------------------------------

    /// Intern a literal.
    pub fn lit(&mut self, v: &Value) -> TermId {
        self.intern(TermRef::Lit(v))
    }

    /// Intern a typed variable.
    pub fn var(&mut self, name: &str, ty: Type) -> TermId {
        self.intern(TermRef::Var(name, ty))
    }

    /// Intern a unary application.
    pub fn unary(&mut self, op: UnOp, x: TermId) -> TermId {
        self.intern(TermRef::Unary(op, x))
    }

    /// Intern a binary application.
    pub fn binary(&mut self, op: BinOp, l: TermId, r: TermId) -> TermId {
        self.intern(TermRef::Binary(op, l, r))
    }

    /// Intern a function call.
    pub fn call(&mut self, name: &str, ty: Type, args: &[TermId]) -> TermId {
        self.intern(TermRef::Call(name, ty, args))
    }

    /// Intern an expression tree bottom-up. Shared/repeated subtrees
    /// collapse to a single id (this is where `rewrite.intern.hits` come
    /// from on DAG-shaped workloads).
    pub fn intern_expr(&mut self, e: &Expr) -> TermId {
        match e {
            Expr::Lit(v) => self.lit(v),
            Expr::Var(name, ty) => self.var(name, *ty),
            Expr::Unary(op, x) => {
                let xi = self.intern_expr(x);
                self.unary(*op, xi)
            }
            Expr::Binary(op, l, r) => {
                let (li, ri) = (self.intern_expr(l), self.intern_expr(r));
                self.binary(*op, li, ri)
            }
            Expr::Call(name, ty, args) => {
                let ids: Vec<TermId> = args.iter().map(|a| self.intern_expr(a)).collect();
                self.call(name, *ty, &ids)
            }
        }
    }

    /// Convert an interned term back into an owned expression tree.
    /// Shared subterms are duplicated, exactly as the tree representation
    /// requires.
    pub fn extract(&self, id: TermId) -> Expr {
        match self.term(id) {
            Term::Lit(v) => Expr::Lit(v.clone()),
            Term::Var(name, ty) => Expr::Var(name.clone(), *ty),
            Term::Unary(op, x) => Expr::Unary(*op, Box::new(self.extract(*x))),
            Term::Binary(op, l, r) => {
                Expr::Binary(*op, Box::new(self.extract(*l)), Box::new(self.extract(*r)))
            }
            Term::Call(name, ty, args) => Expr::Call(
                name.clone(),
                *ty,
                args.iter().map(|a| self.extract(*a)).collect(),
            ),
        }
    }
}

/// Owned recipe for a normalized variant (children already interned).
enum NormVariant {
    Lit(Value),
    Unary(UnOp, TermId),
    Binary(BinOp, TermId, TermId),
    Call(String, Type, Vec<TermId>),
}

/// A dense `TermId → TermId` map: a flat `u32` array indexed by the key's
/// arena index (ids are dense by construction). This is the memo-table
/// representation the 4-byte `TermId` guarantee exists for — lookup and
/// insert are one array access, 16 entries per cache line, no hashing.
#[derive(Default)]
pub struct TermMap {
    slots: Vec<u32>,
}

/// Empty-slot sentinel: the store caps ids below `u32::MAX` (it would
/// panic interning term 2^32-1), so the top value is free.
const TERM_MAP_EMPTY: u32 = u32::MAX;

impl TermMap {
    /// An empty map.
    pub fn new() -> Self {
        TermMap::default()
    }

    /// Value stored for `key`, if any.
    pub fn get(&self, key: TermId) -> Option<TermId> {
        match self.slots.get(key.index()) {
            Some(&v) if v != TERM_MAP_EMPTY => Some(TermId(v)),
            _ => None,
        }
    }

    /// Store `value` for `key` (last write wins).
    pub fn insert(&mut self, key: TermId, value: TermId) {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, TERM_MAP_EMPTY);
        }
        self.slots[i] = value.0;
    }

    /// Remove every entry (keeps capacity).
    pub fn clear(&mut self) {
        self.slots.fill(TERM_MAP_EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_id_is_four_bytes() {
        // The compile-time asserts above are the real guard; this test
        // keeps the invariant visible in `cargo test` output.
        assert_eq!(std::mem::size_of::<TermId>(), 4);
        assert_eq!(std::mem::size_of::<Option<TermId>>(), 8);
    }

    #[test]
    fn interning_is_idempotent_and_shares_subterms() {
        let mut st = TermStore::new();
        let x = Expr::var("x", Type::Int);
        let e = Expr::bin(BinOp::Add, x.clone(), x.clone());
        let a = st.intern_expr(&e);
        let b = st.intern_expr(&e);
        assert_eq!(a, b);
        // x, and x+x: exactly two distinct terms.
        assert_eq!(st.len(), 2);
        assert_eq!(st.size(a), 3);
        assert_eq!(st.ty(a), Type::Int);
        assert_eq!(st.head(a), Head::Bin(BinOp::Add));
    }

    #[test]
    fn round_trip_preserves_expressions() {
        let exprs = [
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(3)),
                Expr::un(UnOp::Neg, Expr::var("y", Type::Int)),
            ),
            Expr::Call(
                "Inverse".into(),
                Type::BigFloat,
                vec![Expr::var("f", Type::BigFloat)],
            ),
            Expr::bin(BinOp::Concat, Expr::string("a"), Expr::string("")),
        ];
        let mut st = TermStore::new();
        for e in exprs {
            let id = st.intern_expr(&e);
            assert_eq!(st.extract(id), e);
            assert_eq!(st.size(id) as usize, e.size());
            assert_eq!(st.ty(id), e.ty());
        }
    }

    #[test]
    fn exprs_eq_matches_partial_eq_on_float_edge_cases() {
        let mut st = TermStore::new();
        let zp = st.intern_expr(&Expr::float(0.0));
        let zn = st.intern_expr(&Expr::float(-0.0));
        // Distinct bit patterns intern separately…
        assert_ne!(zp, zn);
        // …but PartialEq says they are equal, and exprs_eq agrees.
        assert!(st.exprs_eq(zp, zn));
        // NaN interns to one id but is never expr-equal, even to itself.
        let nan = st.intern_expr(&Expr::float(f64::NAN));
        let nan2 = st.intern_expr(&Expr::float(f64::NAN));
        assert_eq!(nan, nan2);
        assert!(!st.exprs_eq(nan, nan2));
        // Compound terms inherit both behaviors.
        let e1 = Expr::bin(BinOp::Add, Expr::var("x", Type::Float), Expr::float(0.0));
        let e2 = Expr::bin(BinOp::Add, Expr::var("x", Type::Float), Expr::float(-0.0));
        assert_eq!(e1, e2, "sanity: PartialEq treats -0.0 == 0.0");
        let (i1, i2) = (st.intern_expr(&e1), st.intern_expr(&e2));
        assert_ne!(i1, i2);
        assert!(st.exprs_eq(i1, i2));
    }

    #[test]
    fn dag_shaped_input_interns_linearly() {
        // 2^16 tree nodes, 17 distinct terms.
        let mut e = Expr::var("x", Type::Int);
        for _ in 0..15 {
            e = Expr::bin(BinOp::Add, e.clone(), e);
        }
        let mut st = TermStore::new();
        let id = st.intern_expr(&e);
        assert_eq!(st.len(), 16);
        assert_eq!(st.size(id), (1 << 16) - 1);
    }

    #[test]
    fn head_indices_are_dense_and_distinct() {
        use std::collections::BTreeSet;
        let heads = [
            Head::Bin(BinOp::Add),
            Head::Bin(BinOp::Sub),
            Head::Bin(BinOp::Mul),
            Head::Bin(BinOp::Div),
            Head::Bin(BinOp::And),
            Head::Bin(BinOp::Or),
            Head::Bin(BinOp::BitAnd),
            Head::Bin(BinOp::Concat),
            Head::Un(UnOp::Neg),
            Head::Un(UnOp::Recip),
            Head::Un(UnOp::Not),
            Head::Call,
            Head::Lit,
            Head::Var,
        ];
        let set: BTreeSet<usize> = heads.iter().map(|h| h.index()).collect();
        assert_eq!(set.len(), Head::COUNT);
        assert!(set.iter().all(|&i| i < Head::COUNT));
    }
}
