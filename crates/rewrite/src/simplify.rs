//! The fixpoint rewrite engine.
//!
//! Bottom-up traversal applying every registered rule at every node,
//! iterated to a fixpoint (with a safety cap). Records per-rule application
//! counts — the data behind the Fig. 5 "two rules subsume ten instances"
//! table in experiment E5.

use crate::env::ConceptEnv;
use crate::expr::Expr;
use crate::rules::{standard_rules, RewriteRule};
use gp_telemetry::Counter;
use std::collections::BTreeMap;

/// The global telemetry counter tracking fires of the rule named `name`
/// (`rewrite.rule.<name>.fires`). Resolved once per [`Simplifier`] per
/// rule; the per-fire cost is one relaxed increment.
fn rule_fire_counter(name: &str) -> &'static Counter {
    gp_telemetry::counter(&format!("rewrite.rule.{name}.fires"))
}

/// Statistics from one simplification run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Applications per rule name.
    pub applications: BTreeMap<String, usize>,
    /// Fixpoint iterations used.
    pub iterations: usize,
    /// AST size before and after.
    pub size_before: usize,
    /// AST size after simplification.
    pub size_after: usize,
}

impl SimplifyStats {
    /// Total rule applications.
    pub fn total(&self) -> usize {
        self.applications.values().sum()
    }
}

/// The Simplicissimus engine: a concept environment plus an extensible rule
/// set.
pub struct Simplifier {
    env: ConceptEnv,
    rules: Vec<Box<dyn RewriteRule + Send + Sync>>,
    /// Pre-resolved global fire counters, aligned index-for-index with
    /// `rules`.
    rule_fires: Vec<&'static Counter>,
}

impl Simplifier {
    fn from_parts(env: ConceptEnv, rules: Vec<Box<dyn RewriteRule + Send + Sync>>) -> Self {
        let rule_fires = rules.iter().map(|r| rule_fire_counter(r.name())).collect();
        Simplifier {
            env,
            rules,
            rule_fires,
        }
    }

    /// Standard rules over the standard environment.
    pub fn standard() -> Self {
        Self::from_parts(ConceptEnv::standard(), standard_rules())
    }

    /// Custom environment with the standard rules.
    pub fn with_env(env: ConceptEnv) -> Self {
        Self::from_parts(env, standard_rules())
    }

    /// An engine with no rules at all (baseline for benchmarks).
    pub fn empty(env: ConceptEnv) -> Self {
        Self::from_parts(env, Vec::new())
    }

    /// Register a user/library rule (the LiDIA extension point of §3.2).
    pub fn add_rule(&mut self, rule: Box<dyn RewriteRule + Send + Sync>) -> &mut Self {
        self.rule_fires.push(rule_fire_counter(rule.name()));
        self.rules.push(rule);
        self
    }

    /// The concept environment (mutable, so libraries can declare new
    /// models — after which existing rules cover them "for free").
    pub fn env_mut(&mut self) -> &mut ConceptEnv {
        &mut self.env
    }

    /// Access the environment.
    pub fn env(&self) -> &ConceptEnv {
        &self.env
    }

    /// Names of the registered rules.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Simplify to fixpoint; returns the result and statistics.
    pub fn simplify(&self, e: &Expr) -> (Expr, SimplifyStats) {
        let _span = gp_telemetry::span("simplify");
        let mut stats = SimplifyStats {
            size_before: e.size(),
            ..SimplifyStats::default()
        };
        let mut cur = e.clone();
        const MAX_ITERS: usize = 64;
        for _ in 0..MAX_ITERS {
            stats.iterations += 1;
            let (next, changed) = self.pass(&cur, &mut stats);
            cur = next;
            if !changed {
                break;
            }
        }
        stats.size_after = cur.size();
        // Mirror the run into the global registry; the names are fixed, so
        // resolve them once per process rather than per call.
        {
            use std::sync::OnceLock;
            static RUNS: OnceLock<&'static Counter> = OnceLock::new();
            static PASSES: OnceLock<&'static Counter> = OnceLock::new();
            RUNS.get_or_init(|| gp_telemetry::counter("rewrite.runs"))
                .incr();
            PASSES
                .get_or_init(|| gp_telemetry::counter("rewrite.passes"))
                .add(stats.iterations as u64);
        }
        (cur, stats)
    }

    /// One bottom-up pass. Returns (expr, changed).
    fn pass(&self, e: &Expr, stats: &mut SimplifyStats) -> (Expr, bool) {
        // Rewrite children first.
        let (mut node, mut changed) = match e {
            Expr::Unary(op, x) => {
                let (x2, c) = self.pass(x, stats);
                (Expr::Unary(*op, Box::new(x2)), c)
            }
            Expr::Binary(op, l, r) => {
                let (l2, cl) = self.pass(l, stats);
                let (r2, cr) = self.pass(r, stats);
                (Expr::Binary(*op, Box::new(l2), Box::new(r2)), cl || cr)
            }
            Expr::Call(name, ty, args) => {
                let mut c = false;
                let args2 = args
                    .iter()
                    .map(|a| {
                        let (a2, ca) = self.pass(a, stats);
                        c |= ca;
                        a2
                    })
                    .collect();
                (Expr::Call(name.clone(), *ty, args2), c)
            }
            leaf => (leaf.clone(), false),
        };
        // Then the root, repeatedly until no rule fires.
        loop {
            let mut fired = false;
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(next) = rule.try_apply(&node, &self.env) {
                    *stats
                        .applications
                        .entry(rule.name().to_string())
                        .or_insert(0) += 1;
                    self.rule_fires[i].incr();
                    node = next;
                    fired = true;
                    changed = true;
                    break;
                }
            }
            if !fired {
                return (node, changed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Type, UnOp, Value};
    use crate::rules::LidiaInverse;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn nested_expression_collapses_fully() {
        // ((x * 1) + (y + (-y))) * (b && true as no-op? typed per-branch)
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, x.clone(), Expr::int(1)),
            Expr::bin(BinOp::Add, y.clone(), Expr::un(UnOp::Neg, y.clone())),
        );
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, x); // (x*1) + (y + -y) → x + 0 → x
        assert!(stats.total() >= 3);
        assert!(stats.size_after < stats.size_before);
    }

    #[test]
    fn simplification_preserves_semantics_on_random_expressions() {
        // Property: for random integer expressions, eval(simplify(e)) ==
        // eval(e).
        let mut rng = StdRng::seed_from_u64(5);
        let s = Simplifier::standard();
        for _ in 0..200 {
            let e = random_int_expr(&mut rng, 4);
            let env: BTreeMap<String, Value> = [
                ("a".to_string(), Value::Int(rng.gen_range(-50..50))),
                ("b".to_string(), Value::Int(rng.gen_range(-50..50))),
            ]
            .into();
            let before = e.eval(&env);
            let (out, _) = s.simplify(&e);
            let after = out.eval(&env);
            assert_eq!(before, after, "expr {e} simplified to {out}");
        }
    }

    fn random_int_expr(rng: &mut StdRng, depth: usize) -> Expr {
        if depth == 0 || rng.gen_bool(0.3) {
            return match rng.gen_range(0..4) {
                0 => Expr::int(rng.gen_range(-3..4)),
                1 => Expr::int(0),
                2 => Expr::var("a", Type::Int),
                _ => Expr::var("b", Type::Int),
            };
        }
        match rng.gen_range(0..5) {
            0 => Expr::bin(
                BinOp::Add,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            1 => Expr::bin(
                BinOp::Mul,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            2 => Expr::bin(
                BinOp::Sub,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            _ => Expr::un(UnOp::Neg, random_int_expr(rng, depth - 1)),
        }
    }

    #[test]
    fn user_extension_lidia_rule_fires_after_registration() {
        let f = Expr::var("f", Type::BigFloat);
        let e = Expr::bin(BinOp::Div, Expr::bigfloat(1.0), f.clone());
        // Without the library rule: untouched (no built-in matches 1.0/f).
        let s = Simplifier::standard();
        let (out, _) = s.simplify(&e);
        assert_eq!(out, e);
        // With it: specialized to the library call.
        let mut s = Simplifier::standard();
        s.add_rule(Box::new(LidiaInverse));
        let (out, stats) = s.simplify(&e);
        assert_eq!(out.to_string(), "Inverse(f)");
        assert_eq!(stats.applications["lidia-inverse"], 1);
    }

    #[test]
    fn new_type_declaration_enables_existing_rules_for_free() {
        // Fig. 5 advantage 3: declaring concepts for a "new" type makes the
        // existing generic rules apply with no rule changes.
        use crate::env::AlgConcept;
        let mut env = ConceptEnv::empty();
        // Pretend Matrix multiplication is declared a Monoid with identity
        // modeled by a named literal — use Str to stand in for a symbolic
        // matrix identity in this unit test (the exp binary does it
        // properly); here use BigFloat-with-add instead:
        env.declare(Type::BigFloat, BinOp::Add, AlgConcept::Monoid)
            .set_identity(Type::BigFloat, BinOp::Add, Value::BigFloat(0.0));
        let s = Simplifier::with_env(env);
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("m", Type::BigFloat),
            Expr::bigfloat(0.0),
        );
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("m", Type::BigFloat));
        assert_eq!(stats.applications["right-identity"], 1);
    }

    #[test]
    fn empty_engine_is_identity() {
        let s = Simplifier::empty(ConceptEnv::standard());
        let e = Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1));
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, e);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn fixpoint_terminates_on_pathological_nesting() {
        // Deeply nested identities: (((x*1)*1)*1)... 60 levels.
        let mut e = Expr::var("x", Type::Int);
        for _ in 0..60 {
            e = Expr::bin(BinOp::Mul, e, Expr::int(1));
        }
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("x", Type::Int));
        assert!(
            stats.iterations <= 3,
            "bottom-up should collapse in one pass"
        );
        assert_eq!(stats.applications["right-identity"], 60);
    }

    #[test]
    fn stats_report_size_reduction() {
        let e = Expr::bin(
            BinOp::And,
            Expr::var("p", Type::Bool),
            Expr::bin(BinOp::And, Expr::boolean(true), Expr::boolean(true)),
        );
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("p", Type::Bool));
        assert_eq!(stats.size_before, 5);
        assert_eq!(stats.size_after, 1);
    }
}
