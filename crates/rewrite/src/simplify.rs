//! The rewrite engine: hash-consed normalization with indexed rule
//! dispatch, plus the original clone-per-pass engine kept as a measured
//! baseline.
//!
//! The default path ([`Simplifier::simplify`]) interns the expression into
//! a [`TermStore`] (every distinct subterm once, ids are `u32`), then
//! normalizes bottom-up:
//!
//! * **Memo table** (`TermId → TermId`): each distinct subterm is
//!   normalized exactly once per [`Session`]; a repeated subterm — common
//!   in machine-generated expressions — is a single hash lookup
//!   (`rewrite.memo.hits`). The fixpoint is linear in *distinct* subterms.
//! * **Rule index** keyed by `(Type, head symbol)`: each node consults
//!   only the rules whose [`IndexHints`](crate::rules::IndexHints) admit
//!   its key instead of scanning the whole rule list
//!   (`rewrite.index.candidates` histogram records how many). Hints are
//!   conservative supersets, so behavior is identical to the full scan.
//! * **Facade**: the public API still speaks `Expr` trees; conversion
//!   happens once in, once out. [`Session::simplify_id`] exposes the
//!   id-level entry point for callers that build DAGs directly.
//!
//! [`Simplifier::simplify_baseline`] preserves the original engine
//! (bottom-up clone-per-pass, iterated to fixpoint) byte-for-byte in
//! behavior; `exp_rewrite` (E13r) measures one against the other, and a
//! property test pins output equality.

use crate::env::ConceptEnv;
use crate::expr::Expr;
use crate::intern::{type_index, Head, TermId, TermMap, TermStore, TYPE_COUNT};
use crate::rules::{standard_rules, IndexHints, RewriteRule};
use gp_telemetry::{Counter, Histogram};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Engine-level telemetry, resolved once per process at module level (the
/// same pattern the gp-parallel primitives use) rather than per run.
struct EngineMetrics {
    runs: &'static Counter,
    passes: &'static Counter,
    memo_hits: &'static Counter,
    index_candidates: &'static Histogram,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        runs: gp_telemetry::counter("rewrite.runs"),
        passes: gp_telemetry::counter("rewrite.passes"),
        memo_hits: gp_telemetry::counter("rewrite.memo.hits"),
        index_candidates: gp_telemetry::histogram("rewrite.index.candidates"),
    })
}

/// The global telemetry counter tracking fires of the rule named `name`
/// (`rewrite.rule.<name>.fires`). Resolved once per [`Simplifier`] per
/// rule; the per-fire cost is one relaxed increment.
fn rule_fire_counter(name: &str) -> &'static Counter {
    gp_telemetry::counter(&format!("rewrite.rule.{name}.fires"))
}

/// Statistics from one simplification run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Applications per rule name.
    pub applications: BTreeMap<String, usize>,
    /// Fixpoint iterations used (the interned engine normalizes in one).
    pub iterations: usize,
    /// AST size before and after.
    pub size_before: usize,
    /// AST size after simplification.
    pub size_after: usize,
    /// Distinct subterms normalized (interned engine only; 0 for the
    /// baseline).
    pub distinct_terms: usize,
    /// Normal-form memo hits — repeated subterms whose normalization was
    /// skipped entirely (interned engine only).
    pub memo_hits: usize,
}

impl SimplifyStats {
    /// Total rule applications.
    pub fn total(&self) -> usize {
        self.applications.values().sum()
    }
}

/// Indexed rule dispatch: for every `(Type, head)` key, the (registration-
/// ordered) rule indices that can possibly fire there. Built from each
/// rule's [`IndexHints`] against the concept environment; rebuilt whenever
/// the environment or rule set changes.
pub(crate) struct RuleIndex {
    buckets: Vec<Vec<u16>>,
}

impl RuleIndex {
    fn build(rules: &[Box<dyn RewriteRule + Send + Sync>], env: &ConceptEnv) -> Self {
        let n = TYPE_COUNT * Head::COUNT;
        let mut buckets = vec![Vec::new(); n];
        let mut seen = vec![false; n];
        for (i, rule) in rules.iter().enumerate() {
            let i = u16::try_from(i).expect("more than 65535 rewrite rules");
            match rule.index_hints(env) {
                IndexHints::Any => {
                    for b in &mut buckets {
                        b.push(i);
                    }
                }
                IndexHints::Keys(keys) => {
                    seen.iter_mut().for_each(|s| *s = false);
                    for (ty, head) in keys {
                        let k = type_index(ty) * Head::COUNT + head.index();
                        if !seen[k] {
                            seen[k] = true;
                            buckets[k].push(i);
                        }
                    }
                }
            }
        }
        RuleIndex { buckets }
    }

    pub(crate) fn candidates(&self, store: &TermStore, id: TermId) -> &[u16] {
        let k = type_index(store.ty(id)) * Head::COUNT + store.head(id).index();
        &self.buckets[k]
    }
}

/// The Simplicissimus engine: a concept environment plus an extensible rule
/// set.
pub struct Simplifier {
    env: ConceptEnv,
    rules: Vec<Box<dyn RewriteRule + Send + Sync>>,
    /// Pre-resolved global fire counters, aligned index-for-index with
    /// `rules`.
    rule_fires: Vec<&'static Counter>,
    /// Lazily built dispatch index; cleared by every `&mut` accessor so
    /// later env/rule changes are honored on the next simplify.
    index: OnceLock<RuleIndex>,
}

impl Simplifier {
    fn from_parts(env: ConceptEnv, rules: Vec<Box<dyn RewriteRule + Send + Sync>>) -> Self {
        let rule_fires = rules.iter().map(|r| rule_fire_counter(r.name())).collect();
        Simplifier {
            env,
            rules,
            rule_fires,
            index: OnceLock::new(),
        }
    }

    /// Standard rules over the standard environment.
    pub fn standard() -> Self {
        Self::from_parts(ConceptEnv::standard(), standard_rules())
    }

    /// Custom environment with the standard rules.
    pub fn with_env(env: ConceptEnv) -> Self {
        Self::from_parts(env, standard_rules())
    }

    /// The superoptimizer rule set: standard reductions **plus** the
    /// exploration equalities (commutativity, associativity) that only
    /// the equality-saturation engine can run without looping. Use this
    /// with [`Session::optimize`]; the directed [`Simplifier::simplify`]
    /// path would burn its application budget re-orienting terms.
    pub fn superopt(env: ConceptEnv) -> Self {
        let mut rules = standard_rules();
        rules.extend(crate::rules::exploration_rules());
        Self::from_parts(env, rules)
    }

    /// An engine with no rules at all (baseline for benchmarks).
    pub fn empty(env: ConceptEnv) -> Self {
        Self::from_parts(env, Vec::new())
    }

    /// Register a user/library rule (the LiDIA extension point of §3.2).
    pub fn add_rule(&mut self, rule: Box<dyn RewriteRule + Send + Sync>) -> &mut Self {
        self.index = OnceLock::new();
        self.rule_fires.push(rule_fire_counter(rule.name()));
        self.rules.push(rule);
        self
    }

    /// The concept environment (mutable, so libraries can declare new
    /// models — after which existing rules cover them "for free"). Taking
    /// it invalidates the dispatch index, which is rebuilt lazily.
    pub fn env_mut(&mut self) -> &mut ConceptEnv {
        self.index = OnceLock::new();
        &mut self.env
    }

    /// Access the environment.
    pub fn env(&self) -> &ConceptEnv {
        &self.env
    }

    /// Names of the registered rules.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    pub(crate) fn index(&self) -> &RuleIndex {
        self.index
            .get_or_init(|| RuleIndex::build(&self.rules, &self.env))
    }

    /// The registered rules, in registration order (the e-graph engine
    /// e-matches the same rule objects the directed engine dispatches).
    pub(crate) fn rules_slice(&self) -> &[Box<dyn RewriteRule + Send + Sync>] {
        &self.rules
    }

    /// Bump the global fire counter of rule `i` (registration index).
    pub(crate) fn record_fire(&self, i: usize) {
        self.rule_fires[i].incr();
    }

    /// Start a rewriting session: a hash-consing term store plus a
    /// normal-form memo table, shared by every expression simplified
    /// through it. A batch of related expressions simplified on one
    /// session interns common structure once.
    pub fn session(&self) -> Session<'_> {
        Session {
            simp: self,
            store: TermStore::new(),
            memo: TermMap::new(),
            budget: 0,
        }
    }

    /// Simplify to normal form (interned engine); returns the result and
    /// statistics. Equivalent to a fresh [`Session`] per call.
    pub fn simplify(&self, e: &Expr) -> (Expr, SimplifyStats) {
        self.session().simplify(e)
    }

    /// Simplify a batch of expressions on one shared term store (common
    /// subterms across the batch intern once). The normal-form memo is
    /// reset between entries so each entry's `SimplifyStats` — and the
    /// per-rule telemetry it mirrors — is identical to a solo
    /// [`Simplifier::simplify`] call; the served batching path relies on
    /// that equivalence.
    pub fn simplify_batch(&self, exprs: &[Expr]) -> Vec<(Expr, SimplifyStats)> {
        let mut sess = self.session();
        exprs
            .iter()
            .map(|e| {
                sess.clear_memo();
                sess.simplify(e)
            })
            .collect()
    }

    /// Simplify independent expressions in parallel on the gp-parallel
    /// global pool (each entry gets its own store + memo, so results and
    /// statistics are identical to solo calls). Worth it when the batch
    /// is large or the entries are; for small batches the shared-store
    /// sequential [`Simplifier::simplify_batch`] wins.
    pub fn simplify_batch_parallel(&self, exprs: &[Expr]) -> Vec<(Expr, SimplifyStats)> {
        let threads = gp_parallel::pool::global().workers();
        gp_parallel::par::par_map(exprs, threads, |e| self.simplify(e))
    }

    /// The original clone-per-pass engine (bottom-up rewrite of a fresh
    /// tree per pass, iterated to fixpoint with a safety cap), kept as
    /// the measured baseline for E13r and as the behavioral reference the
    /// interned engine is property-tested against.
    pub fn simplify_baseline(&self, e: &Expr) -> (Expr, SimplifyStats) {
        let _span = gp_telemetry::span("simplify");
        let mut stats = SimplifyStats {
            size_before: e.size(),
            ..SimplifyStats::default()
        };
        let mut cur = e.clone();
        const MAX_ITERS: usize = 64;
        for _ in 0..MAX_ITERS {
            stats.iterations += 1;
            let (next, changed) = self.pass(&cur, &mut stats);
            cur = next;
            if !changed {
                break;
            }
        }
        stats.size_after = cur.size();
        let m = engine_metrics();
        m.runs.incr();
        m.passes.add(stats.iterations as u64);
        (cur, stats)
    }

    /// One bottom-up pass of the baseline engine. Returns (expr, changed).
    fn pass(&self, e: &Expr, stats: &mut SimplifyStats) -> (Expr, bool) {
        // Rewrite children first.
        let (mut node, mut changed) = match e {
            Expr::Unary(op, x) => {
                let (x2, c) = self.pass(x, stats);
                (Expr::Unary(*op, Box::new(x2)), c)
            }
            Expr::Binary(op, l, r) => {
                let (l2, cl) = self.pass(l, stats);
                let (r2, cr) = self.pass(r, stats);
                (Expr::Binary(*op, Box::new(l2), Box::new(r2)), cl || cr)
            }
            Expr::Call(name, ty, args) => {
                let mut c = false;
                let args2 = args
                    .iter()
                    .map(|a| {
                        let (a2, ca) = self.pass(a, stats);
                        c |= ca;
                        a2
                    })
                    .collect();
                (Expr::Call(name.clone(), *ty, args2), c)
            }
            leaf => (leaf.clone(), false),
        };
        // Then the root, repeatedly until no rule fires. (This loop runs
        // for leaves too: a rule matching a bare variable or literal at
        // any position — including the whole-expression root — fires.)
        loop {
            let mut fired = false;
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(next) = rule.try_apply(&node, &self.env) {
                    *stats
                        .applications
                        .entry(rule.name().to_string())
                        .or_insert(0) += 1;
                    self.rule_fires[i].incr();
                    node = next;
                    fired = true;
                    changed = true;
                    break;
                }
            }
            if !fired {
                return (node, changed);
            }
        }
    }
}

/// A rewriting session: term store + normal-form memo over one
/// [`Simplifier`]. Cheap to create; hold one across many related
/// expressions to amortize interning (this is what the service's
/// micro-batches do).
pub struct Session<'s> {
    simp: &'s Simplifier,
    store: TermStore,
    memo: TermMap,
    /// Remaining rule applications for the current run — the interned
    /// engine's analogue of the baseline's pass cap, bounding adversarial
    /// user rule sets that rewrite forever.
    budget: usize,
}

/// Rule-application cap per `simplify` call. The baseline engine caps
/// fixpoint passes at 64 but lets a self-looping rule spin forever inside
/// one pass; the interned engine bounds total applications instead, far
/// above anything a terminating rule set reaches.
const MAX_APPLICATIONS: usize = 1 << 16;

impl Session<'_> {
    /// The session's term store (read access: sizes, types, extraction).
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// The session's term store, mutably — for callers that build
    /// DAG-shaped inputs directly with ids and hand them to
    /// [`Session::simplify_id`].
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// Drop the normal-form memo (keeping interned terms). After this,
    /// the next `simplify` reports statistics exactly as a fresh session
    /// would, while still sharing the interner.
    pub fn clear_memo(&mut self) {
        self.memo.clear();
    }

    /// Simplify an expression tree: intern, normalize, extract.
    ///
    /// The memo persists across calls on one session, so a second call on
    /// an expression sharing subterms with an earlier one skips their
    /// normalization — and consequently reports fewer `applications` than
    /// a solo run would (the skipped rules fired in the earlier call).
    /// Call [`Session::clear_memo`] between entries if per-call stats
    /// parity matters more than amortization.
    pub fn simplify(&mut self, e: &Expr) -> (Expr, SimplifyStats) {
        let _span = gp_telemetry::span("simplify");
        let size_before = e.size();
        let root = self.store.intern_expr(e);
        let (out, mut stats) = self.simplify_id(root);
        stats.size_before = size_before;
        (self.store.extract(out), stats)
    }

    /// The opt-in equality-saturation mode: saturate an e-graph from `e`
    /// under this session's rules/environment, then extract the cheapest
    /// equivalent under `cost`. The directed [`Session::simplify`] stays
    /// the fast path; reach for this when extraction needs to *explore*
    /// (e.g. with [`crate::rules::exploration_rules`] registered, via
    /// [`Simplifier::superopt`]).
    pub fn optimize(
        &mut self,
        e: &Expr,
        cfg: &crate::egraph::EGraphConfig,
        cost: &dyn crate::egraph::CostModel,
    ) -> (Expr, crate::egraph::OptimizeStats) {
        let root = self.store.intern_expr(e);
        let (out, stats) = self.optimize_id(root, cfg, cost);
        (self.store.extract(out), stats)
    }

    /// [`Session::optimize`] for an already-interned term — the id-level
    /// entry point, symmetric with [`Session::simplify_id`].
    pub fn optimize_id(
        &mut self,
        root: TermId,
        cfg: &crate::egraph::EGraphConfig,
        cost: &dyn crate::egraph::CostModel,
    ) -> (TermId, crate::egraph::OptimizeStats) {
        crate::egraph::EGraph::new(self.simp, &mut self.store).optimize(root, cfg, cost)
    }

    /// Simplify an already-interned term; returns the normal-form id and
    /// statistics (sizes are DAG-unfolded tree sizes, saturating).
    pub fn simplify_id(&mut self, root: TermId) -> (TermId, SimplifyStats) {
        let mut stats = SimplifyStats {
            size_before: usize::try_from(self.store.size(root)).unwrap_or(usize::MAX),
            ..SimplifyStats::default()
        };
        self.budget = MAX_APPLICATIONS;
        let out = self.norm(root, &mut stats);
        stats.iterations = 1;
        stats.size_after = usize::try_from(self.store.size(out)).unwrap_or(usize::MAX);
        let m = engine_metrics();
        m.runs.incr();
        m.passes.add(stats.iterations as u64);
        (out, stats)
    }

    /// Normalize one term: memo lookup, children first, then root rules.
    fn norm(&mut self, id: TermId, stats: &mut SimplifyStats) -> TermId {
        if let Some(nf) = self.memo.get(id) {
            stats.memo_hits += 1;
            engine_metrics().memo_hits.incr();
            return nf;
        }
        stats.distinct_terms += 1;
        let rebuilt = self.norm_children(id, stats);
        // Distinct trees can rebuild to the same term (e.g. every level of
        // `((x*1)*1)*…` rebuilds to `x*1` once its child collapses); the
        // first occurrence already reduced it, so check the memo before
        // scanning rules again.
        let out = match (rebuilt != id).then(|| self.memo.get(rebuilt)).flatten() {
            Some(nf) => {
                stats.memo_hits += 1;
                engine_metrics().memo_hits.incr();
                nf
            }
            None => self.reduce_root(rebuilt, stats),
        };
        self.memo.insert(id, out);
        if rebuilt != id {
            self.memo.insert(rebuilt, out);
        }
        // The normal form is its own normal form: later occurrences of
        // `out` as a subterm are instant hits.
        self.memo.insert(out, out);
        out
    }

    /// Rebuild `id` with normalized children (returns `id` unchanged when
    /// no child moved — the hash-cons hit that makes untouched subtrees
    /// free).
    fn norm_children(&mut self, id: TermId, stats: &mut SimplifyStats) -> TermId {
        use crate::intern::Term;
        match self.store.term(id) {
            Term::Lit(_) | Term::Var(..) => id,
            &Term::Unary(op, x) => {
                let xn = self.norm(x, stats);
                if xn == x {
                    id
                } else {
                    self.store.unary(op, xn)
                }
            }
            &Term::Binary(op, l, r) => {
                let (ln, rn) = (self.norm(l, stats), self.norm(r, stats));
                if ln == l && rn == r {
                    id
                } else {
                    self.store.binary(op, ln, rn)
                }
            }
            Term::Call(name, ty, args) => {
                let (name, ty, args) = (name.clone(), *ty, args.clone());
                let normed: Vec<TermId> = args.iter().map(|&a| self.norm(a, stats)).collect();
                if normed == args {
                    id
                } else {
                    self.store.call(&name, ty, &normed)
                }
            }
        }
    }

    /// Apply the first matching candidate rule at the root; on a fire,
    /// fully normalize the replacement (its children may be new terms)
    /// and return that normal form.
    fn reduce_root(&mut self, id: TermId, stats: &mut SimplifyStats) -> TermId {
        let index = self.simp.index();
        let cands = index.candidates(&self.store, id);
        engine_metrics().index_candidates.record(cands.len() as u64);
        for &ri in cands {
            let ri = ri as usize;
            if self.budget == 0 {
                return id;
            }
            let rule = &self.simp.rules[ri];
            if let Some(next) = rule.try_apply_interned(&mut self.store, id, &self.simp.env) {
                self.budget -= 1;
                *stats
                    .applications
                    .entry(rule.name().to_string())
                    .or_insert(0) += 1;
                self.simp.rule_fires[ri].incr();
                return self.norm(next, stats);
            }
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Type, UnOp, Value};
    use crate::rules::LidiaInverse;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn nested_expression_collapses_fully() {
        // ((x * 1) + (y + (-y))) * (b && true as no-op? typed per-branch)
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, x.clone(), Expr::int(1)),
            Expr::bin(BinOp::Add, y.clone(), Expr::un(UnOp::Neg, y.clone())),
        );
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, x); // (x*1) + (y + -y) → x + 0 → x
        assert!(stats.total() >= 3);
        assert!(stats.size_after < stats.size_before);
        // And the baseline engine agrees.
        let (out_b, stats_b) = s.simplify_baseline(&e);
        assert_eq!(out_b, out);
        assert_eq!(stats_b.applications, stats.applications);
    }

    #[test]
    fn simplification_preserves_semantics_on_random_expressions() {
        // Property: for random integer expressions, eval(simplify(e)) ==
        // eval(e) — for both engines, which must also agree with each
        // other exactly.
        let mut rng = StdRng::seed_from_u64(5);
        let s = Simplifier::standard();
        for _ in 0..200 {
            let e = random_int_expr(&mut rng, 4);
            let env: BTreeMap<String, Value> = [
                ("a".to_string(), Value::Int(rng.gen_range(-50..50))),
                ("b".to_string(), Value::Int(rng.gen_range(-50..50))),
            ]
            .into();
            let before = e.eval(&env);
            let (out, _) = s.simplify(&e);
            let after = out.eval(&env);
            assert_eq!(before, after, "expr {e} simplified to {out}");
            let (out_b, _) = s.simplify_baseline(&e);
            assert_eq!(out_b, out, "engines diverged on {e}");
        }
    }

    fn random_int_expr(rng: &mut StdRng, depth: usize) -> Expr {
        if depth == 0 || rng.gen_bool(0.3) {
            return match rng.gen_range(0..4) {
                0 => Expr::int(rng.gen_range(-3..4)),
                1 => Expr::int(0),
                2 => Expr::var("a", Type::Int),
                _ => Expr::var("b", Type::Int),
            };
        }
        match rng.gen_range(0..5) {
            0 => Expr::bin(
                BinOp::Add,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            1 => Expr::bin(
                BinOp::Mul,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            2 => Expr::bin(
                BinOp::Sub,
                random_int_expr(rng, depth - 1),
                random_int_expr(rng, depth - 1),
            ),
            _ => Expr::un(UnOp::Neg, random_int_expr(rng, depth - 1)),
        }
    }

    #[test]
    fn user_extension_lidia_rule_fires_after_registration() {
        let f = Expr::var("f", Type::BigFloat);
        let e = Expr::bin(BinOp::Div, Expr::bigfloat(1.0), f.clone());
        // Without the library rule: untouched (no built-in matches 1.0/f).
        let s = Simplifier::standard();
        let (out, _) = s.simplify(&e);
        assert_eq!(out, e);
        // With it: specialized to the library call.
        let mut s = Simplifier::standard();
        s.add_rule(Box::new(LidiaInverse));
        let (out, stats) = s.simplify(&e);
        assert_eq!(out.to_string(), "Inverse(f)");
        assert_eq!(stats.applications["lidia-inverse"], 1);
    }

    #[test]
    fn new_type_declaration_enables_existing_rules_for_free() {
        // Fig. 5 advantage 3: declaring concepts for a "new" type makes the
        // existing generic rules apply with no rule changes.
        use crate::env::AlgConcept;
        let mut env = ConceptEnv::empty();
        // Pretend Matrix multiplication is declared a Monoid with identity
        // modeled by a named literal — use Str to stand in for a symbolic
        // matrix identity in this unit test (the exp binary does it
        // properly); here use BigFloat-with-add instead:
        env.declare(Type::BigFloat, BinOp::Add, AlgConcept::Monoid)
            .set_identity(Type::BigFloat, BinOp::Add, Value::BigFloat(0.0));
        let s = Simplifier::with_env(env);
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("m", Type::BigFloat),
            Expr::bigfloat(0.0),
        );
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("m", Type::BigFloat));
        assert_eq!(stats.applications["right-identity"], 1);
    }

    #[test]
    fn env_mutation_after_construction_rebuilds_the_index() {
        // The dispatch index is derived from the environment; declaring a
        // model through env_mut after construction must be honored (the
        // index is invalidated and lazily rebuilt).
        use crate::env::AlgConcept;
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("m", Type::BigFloat),
            Expr::bigfloat(0.0),
        );
        let mut s = Simplifier::with_env(ConceptEnv::empty());
        let (out, _) = s.simplify(&e);
        assert_eq!(out, e, "no declarations — nothing fires");
        s.env_mut()
            .declare(Type::BigFloat, BinOp::Add, AlgConcept::Monoid)
            .set_identity(Type::BigFloat, BinOp::Add, Value::BigFloat(0.0));
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("m", Type::BigFloat));
        assert_eq!(stats.applications["right-identity"], 1);
    }

    #[test]
    fn empty_engine_is_identity() {
        let s = Simplifier::empty(ConceptEnv::standard());
        let e = Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1));
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, e);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn fixpoint_terminates_on_pathological_nesting() {
        // Deeply nested identities: (((x*1)*1)*1)... 60 levels.
        let mut e = Expr::var("x", Type::Int);
        for _ in 0..60 {
            e = Expr::bin(BinOp::Mul, e, Expr::int(1));
        }
        let s = Simplifier::standard();
        // Baseline engine: one fire per level, collapsed in one bottom-up
        // pass (plus the fixpoint-confirming one).
        let (out, stats) = s.simplify_baseline(&e);
        assert_eq!(out, Expr::var("x", Type::Int));
        assert!(
            stats.iterations <= 3,
            "bottom-up should collapse in one pass"
        );
        assert_eq!(stats.applications["right-identity"], 60);
        // Interned engine: every level rebuilds to the same `x*1` term, so
        // the rule fires ONCE and the other 59 levels are memo hits.
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("x", Type::Int));
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.applications["right-identity"], 1);
        assert!(stats.memo_hits >= 59);
    }

    #[test]
    fn stats_report_size_reduction() {
        let e = Expr::bin(
            BinOp::And,
            Expr::var("p", Type::Bool),
            Expr::bin(BinOp::And, Expr::boolean(true), Expr::boolean(true)),
        );
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out, Expr::var("p", Type::Bool));
        assert_eq!(stats.size_before, 5);
        assert_eq!(stats.size_after, 1);
    }

    #[test]
    fn rules_fire_on_bare_leaf_roots() {
        // Regression (engine-rewrite guard): a rule whose pattern is a
        // bare variable or literal must fire when that leaf IS the whole
        // expression — an indexed engine that forgets Lit/Var dispatch
        // buckets, or a traversal that skips root rules for leaves, would
        // silently drop these. Pins both engines.
        struct InlineX;
        impl RewriteRule for InlineX {
            fn name(&self) -> &'static str {
                "inline-x"
            }
            fn requirements(&self) -> &'static str {
                "x is a known compile-time constant"
            }
            fn try_apply(&self, e: &Expr, _env: &ConceptEnv) -> Option<Expr> {
                matches!(e, Expr::Var(name, Type::Int) if name == "x").then(|| Expr::int(7))
            }
        }
        let mut s = Simplifier::standard();
        s.add_rule(Box::new(InlineX));
        // Bare variable root: the rule fires, then nothing else.
        let (out, stats) = s.simplify(&Expr::var("x", Type::Int));
        assert_eq!(out, Expr::int(7));
        assert_eq!(stats.applications["inline-x"], 1);
        let (out_b, stats_b) = s.simplify_baseline(&Expr::var("x", Type::Int));
        assert_eq!(out_b, Expr::int(7));
        assert_eq!(stats_b.applications["inline-x"], 1);
        // The replacement feeds the concept rules: x + x → 7 + 7 → 14.
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("x", Type::Int),
            Expr::var("x", Type::Int),
        );
        let (out, _) = s.simplify(&e);
        assert_eq!(out, Expr::int(14));
        assert_eq!(s.simplify_baseline(&e).0, Expr::int(14));
        // Literal root with a literal-matching rule (standard rules leave
        // bare literals alone, so use constant-fold through a Neg chain).
        let (out, _) = s.simplify(&Expr::un(UnOp::Neg, Expr::int(3)));
        assert_eq!(out, Expr::int(-3));
    }

    #[test]
    fn session_memo_carries_across_calls() {
        // Two expressions sharing a subterm: the second call on the same
        // session skips the shared part via the memo.
        let s = Simplifier::standard();
        let shared = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1)),
            Expr::int(0),
        );
        let e1 = shared.clone();
        let e2 = Expr::bin(BinOp::Mul, shared, Expr::int(2));
        let (_, solo2) = s.simplify(&e2);
        let mut sess = s.session();
        let (out1, stats1) = sess.simplify(&e1);
        assert_eq!(out1, Expr::var("x", Type::Int));
        let (out2, stats2) = sess.simplify(&e2);
        assert_eq!(out2.to_string(), "(x * 2)");
        // The shared subtree was normalized during the first call, so the
        // second call's rule fires happened there: fewer applications
        // than a solo run of e2, and the shared subterm memo-hits.
        assert!(stats2.total() < solo2.total());
        assert!(stats2.memo_hits > 0, "shared subterm must memo-hit");
        assert!(stats2.total() < stats1.total() + 1);
    }

    #[test]
    fn batch_stats_match_solo_stats() {
        // simplify_batch shares the interner but resets the memo, so
        // per-entry statistics are identical to solo runs even when
        // entries share structure.
        let s = Simplifier::standard();
        let shared = Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1));
        let exprs = vec![
            shared.clone(),
            Expr::bin(BinOp::Add, shared.clone(), Expr::int(0)),
            Expr::bin(BinOp::Sub, shared.clone(), shared),
        ];
        let batched = s.simplify_batch(&exprs);
        for (e, (out_b, stats_b)) in exprs.iter().zip(&batched) {
            let (out_s, stats_s) = s.simplify(e);
            assert_eq!(&out_s, out_b);
            assert_eq!(&stats_s, stats_b);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(11);
        let exprs: Vec<Expr> = (0..64).map(|_| random_int_expr(&mut rng, 5)).collect();
        let s = Simplifier::standard();
        let seq: Vec<_> = exprs.iter().map(|e| s.simplify(e)).collect();
        let par = s.simplify_batch_parallel(&exprs);
        assert_eq!(seq.len(), par.len());
        for ((a, sa), (b, sb)) in seq.iter().zip(&par) {
            assert_eq!(a, b);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn dag_shaped_input_is_linear_in_distinct_terms() {
        // (t - t) doubled k times: 2^k tree nodes, O(k) distinct terms.
        // The interned engine must report distinct_terms ≈ k, not 2^k.
        let mut e = Expr::var("x", Type::Int);
        for _ in 0..12 {
            e = Expr::bin(BinOp::Add, e.clone(), e);
        }
        let s = Simplifier::standard();
        let (_, stats) = s.simplify(&e);
        assert!(stats.size_before > 4000, "tree is exponentially large");
        assert!(
            stats.distinct_terms < 100,
            "interned engine visited {} distinct terms",
            stats.distinct_terms
        );
        assert!(stats.memo_hits > 0);
    }

    #[test]
    fn id_level_entry_point_simplifies_native_dags() {
        // Callers can skip trees entirely: build 2^40-node (virtual)
        // expressions directly in the store and simplify by id.
        let s = Simplifier::standard();
        let mut sess = s.session();
        let st = sess.store_mut();
        let x = st.var("x", Type::Int);
        let one = st.lit(&Value::Int(1));
        let mut t = x;
        for _ in 0..40 {
            let m = st.binary(BinOp::Mul, t, one);
            t = st.binary(BinOp::Add, m, m);
        }
        let (nf, stats) = sess.simplify_id(t);
        // (x*1 + x*1) → (x + x) each level; nothing folds x + x, so the
        // normal form is the doubling DAG itself — but with the *1 gone.
        assert!(stats.size_before > 1 << 40);
        assert!(stats.applications["right-identity"] >= 40);
        assert!(sess.store().size(nf) < stats.size_before as u64);
    }
}
