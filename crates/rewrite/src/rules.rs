//! The rewrite-rule concept and the built-in concept-based rule library.
//!
//! Each rule states its concept **requirements** (the middle column of
//! Fig. 5) and fires only when the concept environment confirms the
//! operands' types model them. The two headline rules are
//! [`RightIdentity`]/[`LeftIdentity`] (`x + 0 → x`, Monoid) and
//! [`RightInverse`]/[`LeftInverse`] (`x + (-x) → 0`, Group); the library
//! adds the equally concept-generic annihilator, idempotence,
//! double-inverse, and constant-folding rules.

use crate::env::{AlgConcept, ConceptEnv};
use crate::expr::{BinOp, Expr, Type, UnOp, Value};
use crate::intern::{Head, Term, TermId, TermStore};
use std::collections::BTreeMap;

/// The `(Type, head)` keys a rule can possibly fire on, used to build the
/// dispatch index. `Any` (the default) places the rule in every bucket —
/// always correct, never fast. `Keys` must be a **superset** of the keys
/// the rule fires on under the environment it was derived from: an
/// over-approximation only costs a failed `try_apply`, an
/// under-approximation silently disables the rule.
#[derive(Clone, Debug)]
pub enum IndexHints {
    /// Consult this rule at every node (the safe default for user rules).
    Any,
    /// Consult this rule only at nodes with one of these `(type, head)`
    /// keys.
    Keys(Vec<(Type, Head)>),
}

/// The rewrite-rule concept: try to rewrite the *root* of an expression.
/// The engine handles traversal and iteration.
pub trait RewriteRule {
    /// Rule name (statistics, diagnostics).
    fn name(&self) -> &'static str;

    /// Human-readable concept requirement, e.g. `(x, op) models Monoid`.
    fn requirements(&self) -> &'static str;

    /// Rewrite the root of `e` if the rule matches and its concept
    /// requirements hold in `env`.
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr>;

    /// The `(type, head)` dispatch keys this rule can fire on under
    /// `env`. The engine rebuilds the index whenever the environment or
    /// rule set changes, so hints may (and should) consult `env`.
    /// Defaults to [`IndexHints::Any`], which is always correct.
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        let _ = env;
        IndexHints::Any
    }

    /// Rewrite the root of the interned term `id` — the hash-consed fast
    /// path. The default extracts the whole subtree, applies
    /// [`RewriteRule::try_apply`], and re-interns the result, which is
    /// correct for any user rule but pays a tree materialization; the
    /// built-in rules override it with direct id-level matching.
    ///
    /// Implementations must preserve `try_apply` semantics exactly; in
    /// particular, subterm equality is `Expr::eq` — use
    /// [`TermStore::exprs_eq`], never raw id equality (NaN and `-0.0`
    /// literals make the two differ).
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let out = self.try_apply(&st.extract(id), env)?;
        Some(st.intern_expr(&out))
    }
}

/// `x op e → x` when `(x, op)` models Monoid and `e` is its identity.
pub struct RightIdentity;

impl RewriteRule for RightIdentity {
    fn name(&self) -> &'static str {
        "right-identity"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Monoid"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let ty = l.ty();
        if env.models(ty, *op, AlgConcept::Monoid) {
            if let Expr::Lit(v) = &**r {
                if Some(v) == env.identity(ty, *op) {
                    return Some((**l).clone());
                }
            }
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        // Dispatch key is (l.ty(), op); the rule needs a Monoid model and
        // a declared identity for exactly that pair.
        IndexHints::Keys(
            env.declared_identities()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Monoid))
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let ty = st.ty(l);
        if env.models(ty, op, AlgConcept::Monoid) {
            if let Term::Lit(v) = st.term(r) {
                if Some(v) == env.identity(ty, op) {
                    return Some(l);
                }
            }
        }
        None
    }
}

/// `e op x → x` when `(x, op)` models Monoid and `e` is its identity.
pub struct LeftIdentity;

impl RewriteRule for LeftIdentity {
    fn name(&self) -> &'static str {
        "left-identity"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Monoid"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let ty = r.ty();
        if env.models(ty, *op, AlgConcept::Monoid) {
            if let Expr::Lit(v) = &**l {
                if Some(v) == env.identity(ty, *op) {
                    return Some((**r).clone());
                }
            }
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        // The node's dispatch type is l.ty(); here l must be the identity
        // *literal*, whose intrinsic type can differ from the declared
        // type in exotic environments — key on the literal's type.
        IndexHints::Keys(
            env.declared_identities()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Monoid))
                .map(|(_, op, v)| (v.ty(), Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let ty = st.ty(r);
        if env.models(ty, op, AlgConcept::Monoid) {
            if let Term::Lit(v) = st.term(l) {
                if Some(v) == env.identity(ty, op) {
                    return Some(r);
                }
            }
        }
        None
    }
}

/// `x op inv(x) → identity` when `(x, op, inv)` models Group.
/// Also matches the sugared forms `x - x` (additive) and `x / x`
/// (multiplicative).
pub struct RightInverse;

/// `inv(x) op x → identity` when `(x, op, inv)` models Group.
pub struct LeftInverse;

fn inverse_matches(env: &ConceptEnv, ty: Type, op: BinOp, x: &Expr, candidate: &Expr) -> bool {
    let Some(inv) = env.inverse_op(ty, op) else {
        return false;
    };
    matches!(candidate, Expr::Unary(u, inner) if *u == inv && **inner == *x)
}

/// Interned mirror of [`inverse_matches`]: `candidate` must be `inv(x)`
/// for the declared inverse operator, with `inv`'s operand expr-equal to
/// `x` (O(1) via the store's normalized ids).
fn inverse_matches_interned(
    st: &TermStore,
    env: &ConceptEnv,
    ty: Type,
    op: BinOp,
    x: TermId,
    candidate: TermId,
) -> bool {
    let Some(inv) = env.inverse_op(ty, op) else {
        return false;
    };
    matches!(st.term(candidate), &Term::Unary(u, inner) if u == inv && st.exprs_eq(inner, x))
}

fn group_identity(env: &ConceptEnv, ty: Type, op: BinOp) -> Option<Expr> {
    env.identity(ty, op).cloned().map(Expr::Lit)
}

fn group_identity_interned(
    st: &mut TermStore,
    env: &ConceptEnv,
    ty: Type,
    op: BinOp,
) -> Option<TermId> {
    env.identity(ty, op).cloned().map(|v| st.lit(&v))
}

impl RewriteRule for RightInverse {
    fn name(&self) -> &'static str {
        "right-inverse"
    }
    fn requirements(&self) -> &'static str {
        "(x, op, inv) models Group"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let ty = l.ty();
        // Sugared forms first: x - x and x / x.
        let (base_op, rhs_is_inverse) = match op {
            BinOp::Sub => (BinOp::Add, **l == **r),
            BinOp::Div => (BinOp::Mul, **l == **r),
            other => (*other, inverse_matches(env, ty, *other, l, r)),
        };
        if rhs_is_inverse && env.models(ty, base_op, AlgConcept::Group) {
            return group_identity(env, ty, base_op);
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        let mut keys = Vec::new();
        for (ty, op, _) in env.declared_models() {
            if !env.models(ty, op, AlgConcept::Group) {
                continue;
            }
            // Sugared spellings of the group operation.
            if op == BinOp::Add {
                keys.push((ty, Head::Bin(BinOp::Sub)));
            }
            if op == BinOp::Mul {
                keys.push((ty, Head::Bin(BinOp::Div)));
            }
        }
        // Explicit `x op inv(x)` requires a declared inverse operator.
        for (ty, op, _) in env.declared_inverse_ops() {
            if env.models(ty, op, AlgConcept::Group) {
                keys.push((ty, Head::Bin(op)));
            }
        }
        IndexHints::Keys(keys)
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let ty = st.ty(l);
        let (base_op, rhs_is_inverse) = match op {
            BinOp::Sub => (BinOp::Add, st.exprs_eq(l, r)),
            BinOp::Div => (BinOp::Mul, st.exprs_eq(l, r)),
            other => (other, inverse_matches_interned(st, env, ty, other, l, r)),
        };
        if rhs_is_inverse && env.models(ty, base_op, AlgConcept::Group) {
            return group_identity_interned(st, env, ty, base_op);
        }
        None
    }
}

impl RewriteRule for LeftInverse {
    fn name(&self) -> &'static str {
        "left-inverse"
    }
    fn requirements(&self) -> &'static str {
        "(x, op, inv) models Group"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let ty = r.ty();
        if inverse_matches(env, ty, *op, r, l) && env.models(ty, *op, AlgConcept::Group) {
            return group_identity(env, ty, *op);
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        // Node dispatch type is l.ty() where l = inv(x) with x == r; for
        // Not the unary's type is Bool regardless of the operand.
        IndexHints::Keys(
            env.declared_inverse_ops()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Group))
                .map(|(ty, op, inv)| {
                    let node_ty = if inv == UnOp::Not { Type::Bool } else { ty };
                    (node_ty, Head::Bin(op))
                })
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let ty = st.ty(r);
        if inverse_matches_interned(st, env, ty, op, r, l) && env.models(ty, op, AlgConcept::Group)
        {
            return group_identity_interned(st, env, ty, op);
        }
        None
    }
}

/// `x op a → a` when `a` is a declared annihilator of `(x, op)`
/// (e.g. `x * 0 → 0`, `b && false → false`).
pub struct Annihilator;

impl RewriteRule for Annihilator {
    fn name(&self) -> &'static str {
        "annihilator"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) has a declared annihilator"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let ty = l.ty();
        let a = env.annihilator(ty, *op)?;
        for side in [&**l, &**r] {
            if let Expr::Lit(v) = side {
                if v == a {
                    return Some(Expr::Lit(a.clone()));
                }
            }
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        // The annihilator lookup keys on l.ty() itself, so the declared
        // pair is exactly the dispatch key.
        IndexHints::Keys(
            env.declared_annihilators()
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let a = env.annihilator(st.ty(l), op)?;
        for side in [l, r] {
            if let Term::Lit(v) = st.term(side) {
                if v == a {
                    let a = a.clone();
                    return Some(st.lit(&a));
                }
            }
        }
        None
    }
}

/// `x op x → x` when `(x, op)` models an idempotent operation
/// (e.g. `b && b → b`, `i & i → i`).
pub struct Idempotence;

impl RewriteRule for Idempotence {
    fn name(&self) -> &'static str {
        "idempotence"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Idempotent"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        if l == r && env.models(l.ty(), *op, AlgConcept::Idempotent) {
            return Some((**l).clone());
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        IndexHints::Keys(
            env.declared_models()
                .filter(|&(_, _, c)| c == AlgConcept::Idempotent)
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        if st.exprs_eq(l, r) && env.models(st.ty(l), op, AlgConcept::Idempotent) {
            return Some(l);
        }
        None
    }
}

/// `inv(inv(x)) → x` when the type's operation with that inverse models
/// Group (e.g. `-(-x) → x`, `1/(1/x) → x`).
pub struct DoubleInverse;

impl RewriteRule for DoubleInverse {
    fn name(&self) -> &'static str {
        "double-inverse"
    }
    fn requirements(&self) -> &'static str {
        "(x, op, inv) models Group"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Unary(u1, inner) = e else {
            return None;
        };
        let Expr::Unary(u2, x) = &**inner else {
            return None;
        };
        if u1 != u2 {
            return None;
        }
        let ty = x.ty();
        // Find a group operation whose inverse op is u1.
        for op in [BinOp::Add, BinOp::Mul] {
            if env.inverse_op(ty, op) == Some(*u1) && env.models(ty, op, AlgConcept::Group) {
                return Some((**x).clone());
            }
        }
        None
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        IndexHints::Keys(
            env.declared_inverse_ops()
                .filter(|&(ty, op, _)| {
                    (op == BinOp::Add || op == BinOp::Mul) && env.models(ty, op, AlgConcept::Group)
                })
                .map(|(ty, _, inv)| {
                    let node_ty = if inv == UnOp::Not { Type::Bool } else { ty };
                    (node_ty, Head::Un(inv))
                })
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Unary(u1, inner) = st.term(id) else {
            return None;
        };
        let &Term::Unary(u2, x) = st.term(inner) else {
            return None;
        };
        if u1 != u2 {
            return None;
        }
        let ty = st.ty(x);
        for op in [BinOp::Add, BinOp::Mul] {
            if env.inverse_op(ty, op) == Some(u1) && env.models(ty, op, AlgConcept::Group) {
                return Some(x);
            }
        }
        None
    }
}

/// Fold operations on literals (`2 + 3 → 5`) — the traditional simplifier
/// retained alongside the concept rules.
pub struct ConstantFold;

impl RewriteRule for ConstantFold {
    fn name(&self) -> &'static str {
        "constant-fold"
    }
    fn requirements(&self) -> &'static str {
        "all operands are literals"
    }
    fn try_apply(&self, e: &Expr, _env: &ConceptEnv) -> Option<Expr> {
        match e {
            Expr::Binary(_, l, r) if matches!(**l, Expr::Lit(_)) && matches!(**r, Expr::Lit(_)) => {
                e.eval(&BTreeMap::new()).map(Expr::Lit)
            }
            Expr::Unary(_, x) if matches!(**x, Expr::Lit(_)) => {
                e.eval(&BTreeMap::new()).map(Expr::Lit)
            }
            _ => None,
        }
    }
    fn index_hints(&self, _env: &ConceptEnv) -> IndexHints {
        // Fires on any unary/binary node whose operands are literals; a
        // literal-headed binary node's dispatch type is its left literal's
        // intrinsic type, so Matrix (which has no literal form) is the
        // only impossible type.
        let value_types = [
            Type::Int,
            Type::UInt,
            Type::Float,
            Type::Bool,
            Type::Str,
            Type::Rational,
            Type::BigFloat,
        ];
        let bin_ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::And,
            BinOp::Or,
            BinOp::BitAnd,
            BinOp::Concat,
        ];
        let un_ops = [UnOp::Neg, UnOp::Recip, UnOp::Not];
        let mut keys = Vec::new();
        for ty in value_types {
            for op in bin_ops {
                keys.push((ty, Head::Bin(op)));
            }
            for op in un_ops {
                keys.push((ty, Head::Un(op)));
            }
        }
        IndexHints::Keys(keys)
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        _env: &ConceptEnv,
    ) -> Option<TermId> {
        // Rebuild only the two-level literal node as a tree and reuse the
        // evaluator — cheap (a couple of `Value` clones) and guaranteed to
        // fold exactly as the tree engine does.
        let folded = match *st.term(id) {
            Term::Binary(op, l, r) => {
                let (Term::Lit(a), Term::Lit(b)) = (st.term(l), st.term(r)) else {
                    return None;
                };
                Expr::Binary(
                    op,
                    Box::new(Expr::Lit(a.clone())),
                    Box::new(Expr::Lit(b.clone())),
                )
                .eval(&BTreeMap::new())?
            }
            Term::Unary(op, x) => {
                let Term::Lit(a) = st.term(x) else {
                    return None;
                };
                Expr::Unary(op, Box::new(Expr::Lit(a.clone()))).eval(&BTreeMap::new())?
            }
            _ => return None,
        };
        Some(st.lit(&folded))
    }
}

/// Associativity-based constant gathering: `(x op c1) op c2 → x op (c1 op
/// c2)` when `(x, op)` models Semigroup and `c1`, `c2` are literals — after
/// which constant folding collapses the right operand. The commutative
/// variant also matches `(c1 op x) op c2`.
pub struct AssocFold;

impl RewriteRule for AssocFold {
    fn name(&self) -> &'static str {
        "assoc-fold"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Semigroup (plus Commutative for the left variant)"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let Expr::Lit(c2) = &**r else { return None };
        let Expr::Binary(op2, x, c1) = &**l else {
            return None;
        };
        if op2 != op {
            return None;
        }
        let ty = e.ty();
        if !env.models(ty, *op, AlgConcept::Semigroup) {
            return None;
        }
        match (&**x, &**c1) {
            // (x op c1) op c2 → x op (c1 op c2): pure associativity.
            (inner, Expr::Lit(c1v)) if !matches!(inner, Expr::Lit(_)) => Some(Expr::Binary(
                *op,
                Box::new(inner.clone()),
                Box::new(Expr::Binary(
                    *op,
                    Box::new(Expr::Lit(c1v.clone())),
                    Box::new(Expr::Lit(c2.clone())),
                )),
            )),
            // (c1 op x) op c2 → x op (c1 op c2): needs commutativity.
            (Expr::Lit(c1v), inner)
                if !matches!(inner, Expr::Lit(_))
                    && env.models(ty, *op, AlgConcept::Commutative) =>
            {
                Some(Expr::Binary(
                    *op,
                    Box::new(inner.clone()),
                    Box::new(Expr::Binary(
                        *op,
                        Box::new(Expr::Lit(c1v.clone())),
                        Box::new(Expr::Lit(c2.clone())),
                    )),
                ))
            }
            _ => None,
        }
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        IndexHints::Keys(
            env.declared_models()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Semigroup))
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        if !matches!(st.term(r), Term::Lit(_)) {
            return None;
        }
        let &Term::Binary(op2, x, c1) = st.term(l) else {
            return None;
        };
        if op2 != op || !env.models(st.ty(id), op, AlgConcept::Semigroup) {
            return None;
        }
        let (x_lit, c1_lit) = (
            matches!(st.term(x), Term::Lit(_)),
            matches!(st.term(c1), Term::Lit(_)),
        );
        if !x_lit && c1_lit {
            // (x op c1) op c2 → x op (c1 op c2): pure associativity.
            let consts = st.binary(op, c1, r);
            Some(st.binary(op, x, consts))
        } else if x_lit && !c1_lit && env.models(st.ty(id), op, AlgConcept::Commutative) {
            // (c1 op x) op c2 → x op (c1 op c2): needs commutativity.
            let consts = st.binary(op, x, r);
            Some(st.binary(op, c1, consts))
        } else {
            None
        }
    }
}

/// Boolean double negation: `!!b → b` (involution of `Not`).
pub struct NotNot;

impl RewriteRule for NotNot {
    fn name(&self) -> &'static str {
        "not-not"
    }
    fn requirements(&self) -> &'static str {
        "negation is an involution on bool"
    }
    fn try_apply(&self, e: &Expr, _env: &ConceptEnv) -> Option<Expr> {
        if let Expr::Unary(UnOp::Not, inner) = e {
            if let Expr::Unary(UnOp::Not, b) = &**inner {
                return Some((**b).clone());
            }
        }
        None
    }
    fn index_hints(&self, _env: &ConceptEnv) -> IndexHints {
        // A `!`-headed node always has type Bool.
        IndexHints::Keys(vec![(Type::Bool, Head::Un(UnOp::Not))])
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        _env: &ConceptEnv,
    ) -> Option<TermId> {
        if let &Term::Unary(UnOp::Not, inner) = st.term(id) {
            if let &Term::Unary(UnOp::Not, b) = st.term(inner) {
                return Some(b);
            }
        }
        None
    }
}

/// The LiDIA-style **user-defined, library-specific** rule of §3.2:
/// `1.0/f → f.Inverse()` (and `recip(f) → f.Inverse()`) for
/// arbitrary-precision floats, "often … specializing general expressions to
/// specific function calls".
pub struct LidiaInverse;

impl RewriteRule for LidiaInverse {
    fn name(&self) -> &'static str {
        "lidia-inverse"
    }
    fn requirements(&self) -> &'static str {
        "f is a LiDIA bigfloat"
    }
    fn try_apply(&self, e: &Expr, _env: &ConceptEnv) -> Option<Expr> {
        let make_call =
            |f: &Expr| Expr::Call("Inverse".to_string(), Type::BigFloat, vec![f.clone()]);
        match e {
            Expr::Unary(UnOp::Recip, f) if f.ty() == Type::BigFloat => Some(make_call(f)),
            Expr::Binary(BinOp::Div, one, f)
                if f.ty() == Type::BigFloat
                    && matches!(&**one, Expr::Lit(crate::expr::Value::BigFloat(v)) if *v == 1.0) =>
            {
                Some(make_call(f))
            }
            _ => None,
        }
    }
    fn index_hints(&self, _env: &ConceptEnv) -> IndexHints {
        // recip(f): node type is f's type (BigFloat); 1.0/f: node type is
        // the left literal's type (BigFloat).
        IndexHints::Keys(vec![
            (Type::BigFloat, Head::Un(UnOp::Recip)),
            (Type::BigFloat, Head::Bin(BinOp::Div)),
        ])
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        _env: &ConceptEnv,
    ) -> Option<TermId> {
        let f = match *st.term(id) {
            Term::Unary(UnOp::Recip, f) if st.ty(f) == Type::BigFloat => f,
            Term::Binary(BinOp::Div, one, f)
                if st.ty(f) == Type::BigFloat
                    && matches!(st.term(one), Term::Lit(Value::BigFloat(v)) if *v == 1.0) =>
            {
                f
            }
            _ => return None,
        };
        Some(st.call("Inverse", Type::BigFloat, &[f]))
    }
}

/// Commutativity as a pure equality: `x op y → y op x` when `(x, op)`
/// models Commutative.
///
/// This is an **exploration** rule for the e-graph: as a directed
/// reduction it never terminates (the two orientations rewrite into each
/// other forever), so it is *not* in [`standard_rules`]. Under equality
/// saturation it merely merges the two orientations into one e-class,
/// which is exactly what lets cost-based extraction consider both.
pub struct Commute;

impl RewriteRule for Commute {
    fn name(&self) -> &'static str {
        "commute"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Commutative"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        if l == r || !env.models(e.ty(), *op, AlgConcept::Commutative) {
            return None;
        }
        Some(Expr::Binary(*op, r.clone(), l.clone()))
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        IndexHints::Keys(
            env.declared_models()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Commutative))
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        if l == r || !env.models(st.ty(id), op, AlgConcept::Commutative) {
            return None;
        }
        Some(st.binary(op, r, l))
    }
}

/// Associativity as a pure equality: `(a op b) op c → a op (b op c)` when
/// `(x, op)` models Semigroup.
///
/// Like [`Commute`], an **exploration** rule for the e-graph only: the
/// general re-association (unlike [`AssocFold`]'s constant-gathering
/// special case) does not reduce anything by itself, but it exposes
/// cancellation the directed engine cannot see — `(x + y) + (-y)`
/// re-associates to `x + (y + (-y))`, where the Group inverse rule fires.
pub struct Associate;

impl RewriteRule for Associate {
    fn name(&self) -> &'static str {
        "associate"
    }
    fn requirements(&self) -> &'static str {
        "(x, op) models Semigroup"
    }
    fn try_apply(&self, e: &Expr, env: &ConceptEnv) -> Option<Expr> {
        let Expr::Binary(op, l, r) = e else {
            return None;
        };
        let Expr::Binary(op2, a, b) = &**l else {
            return None;
        };
        if op2 != op || !env.models(e.ty(), *op, AlgConcept::Semigroup) {
            return None;
        }
        Some(Expr::Binary(
            *op,
            a.clone(),
            Box::new(Expr::Binary(*op, b.clone(), r.clone())),
        ))
    }
    fn index_hints(&self, env: &ConceptEnv) -> IndexHints {
        IndexHints::Keys(
            env.declared_models()
                .filter(|&(ty, op, _)| env.models(ty, op, AlgConcept::Semigroup))
                .map(|(ty, op, _)| (ty, Head::Bin(op)))
                .collect(),
        )
    }
    fn try_apply_interned(
        &self,
        st: &mut TermStore,
        id: TermId,
        env: &ConceptEnv,
    ) -> Option<TermId> {
        let &Term::Binary(op, l, r) = st.term(id) else {
            return None;
        };
        let &Term::Binary(op2, a, b) = st.term(l) else {
            return None;
        };
        if op2 != op || !env.models(st.ty(id), op, AlgConcept::Semigroup) {
            return None;
        }
        let right = st.binary(op, b, r);
        Some(st.binary(op, a, right))
    }
}

/// The default concept-based rule set.
pub fn standard_rules() -> Vec<Box<dyn RewriteRule + Send + Sync>> {
    vec![
        Box::new(ConstantFold),
        Box::new(RightIdentity),
        Box::new(LeftIdentity),
        Box::new(RightInverse),
        Box::new(LeftInverse),
        Box::new(Annihilator),
        Box::new(Idempotence),
        Box::new(DoubleInverse),
        Box::new(AssocFold),
        Box::new(NotNot),
    ]
}

/// The exploration rules the equality-saturation engine adds on top of
/// [`standard_rules`]: non-reducing equalities (commutativity,
/// associativity) that a directed engine cannot run without looping, but
/// that merely merge e-classes under saturation.
pub fn exploration_rules() -> Vec<Box<dyn RewriteRule + Send + Sync>> {
    vec![Box::new(Commute), Box::new(Associate)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Value;

    fn env() -> ConceptEnv {
        ConceptEnv::standard()
    }

    #[test]
    fn right_identity_fires_only_under_monoid() {
        let e = Expr::bin(BinOp::Mul, Expr::var("i", Type::Int), Expr::int(1));
        assert_eq!(
            RightIdentity.try_apply(&e, &env()),
            Some(Expr::var("i", Type::Int))
        );
        // Without the concept declaration, nothing fires.
        let bare = ConceptEnv::empty();
        assert_eq!(RightIdentity.try_apply(&e, &bare), None);
        // Wrong element: no fire.
        let e = Expr::bin(BinOp::Mul, Expr::var("i", Type::Int), Expr::int(2));
        assert_eq!(RightIdentity.try_apply(&e, &env()), None);
    }

    #[test]
    fn identity_rules_cover_fig5_row1_instances() {
        let cases = vec![
            Expr::bin(BinOp::Mul, Expr::var("i", Type::Int), Expr::int(1)),
            Expr::bin(BinOp::Mul, Expr::var("f", Type::Float), Expr::float(1.0)),
            Expr::bin(BinOp::And, Expr::var("b", Type::Bool), Expr::boolean(true)),
            Expr::bin(
                BinOp::BitAnd,
                Expr::var("i", Type::UInt),
                Expr::uint(u64::MAX),
            ),
            Expr::bin(BinOp::Concat, Expr::var("s", Type::Str), Expr::string("")),
            Expr::bin(BinOp::Add, Expr::var("x", Type::Int), Expr::int(0)),
        ];
        for c in cases {
            let out = RightIdentity.try_apply(&c, &env());
            assert!(out.is_some(), "no fire on {c}");
            assert!(
                matches!(out.unwrap(), Expr::Var(..)),
                "wrong result for {c}"
            );
        }
    }

    #[test]
    fn left_identity_respects_non_commutativity_correctly() {
        // "" ++ s → s is valid in any monoid (identity is two-sided), even
        // a non-commutative one.
        let e = Expr::bin(BinOp::Concat, Expr::string(""), Expr::var("s", Type::Str));
        assert_eq!(
            LeftIdentity.try_apply(&e, &env()),
            Some(Expr::var("s", Type::Str))
        );
    }

    #[test]
    fn group_inverse_rules_cover_fig5_row2_instances() {
        // i + (-i) → 0
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("i", Type::Int),
            Expr::un(UnOp::Neg, Expr::var("i", Type::Int)),
        );
        assert_eq!(RightInverse.try_apply(&e, &env()), Some(Expr::int(0)));
        // f * (1/f) → 1
        let e = Expr::bin(
            BinOp::Mul,
            Expr::var("f", Type::Float),
            Expr::un(UnOp::Recip, Expr::var("f", Type::Float)),
        );
        assert_eq!(RightInverse.try_apply(&e, &env()), Some(Expr::float(1.0)));
        // r * r^{-1} → 1 (rationals)
        let e = Expr::bin(
            BinOp::Mul,
            Expr::var("r", Type::Rational),
            Expr::un(UnOp::Recip, Expr::var("r", Type::Rational)),
        );
        assert!(RightInverse.try_apply(&e, &env()).is_some());
        // (-i) + i → 0 (left form)
        let e = Expr::bin(
            BinOp::Add,
            Expr::un(UnOp::Neg, Expr::var("i", Type::Int)),
            Expr::var("i", Type::Int),
        );
        assert_eq!(LeftInverse.try_apply(&e, &env()), Some(Expr::int(0)));
    }

    #[test]
    fn inverse_rule_does_not_fire_for_non_groups() {
        // i * (1/i) for Int: Int multiplication is not a group — no rule.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::var("i", Type::Int),
            Expr::un(UnOp::Recip, Expr::var("i", Type::Int)),
        );
        assert_eq!(RightInverse.try_apply(&e, &env()), None);
    }

    #[test]
    fn sugar_forms_x_minus_x_and_x_div_x() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::var("i", Type::Int),
            Expr::var("i", Type::Int),
        );
        assert_eq!(RightInverse.try_apply(&e, &env()), Some(Expr::int(0)));
        let e = Expr::bin(
            BinOp::Div,
            Expr::var("f", Type::Float),
            Expr::var("f", Type::Float),
        );
        assert_eq!(RightInverse.try_apply(&e, &env()), Some(Expr::float(1.0)));
    }

    #[test]
    fn annihilator_and_idempotence() {
        let e = Expr::bin(BinOp::Mul, Expr::var("i", Type::Int), Expr::int(0));
        assert_eq!(Annihilator.try_apply(&e, &env()), Some(Expr::int(0)));
        let e = Expr::bin(BinOp::And, Expr::boolean(false), Expr::var("b", Type::Bool));
        assert_eq!(
            Annihilator.try_apply(&e, &env()),
            Some(Expr::boolean(false))
        );
        let e = Expr::bin(
            BinOp::And,
            Expr::var("b", Type::Bool),
            Expr::var("b", Type::Bool),
        );
        assert_eq!(
            Idempotence.try_apply(&e, &env()),
            Some(Expr::var("b", Type::Bool))
        );
        // Addition is not idempotent.
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("i", Type::Int),
            Expr::var("i", Type::Int),
        );
        assert_eq!(Idempotence.try_apply(&e, &env()), None);
    }

    #[test]
    fn double_inverse_unwraps() {
        let e = Expr::un(UnOp::Neg, Expr::un(UnOp::Neg, Expr::var("i", Type::Int)));
        assert_eq!(
            DoubleInverse.try_apply(&e, &env()),
            Some(Expr::var("i", Type::Int))
        );
        let e = Expr::un(
            UnOp::Recip,
            Expr::un(UnOp::Recip, Expr::var("f", Type::Float)),
        );
        assert_eq!(
            DoubleInverse.try_apply(&e, &env()),
            Some(Expr::var("f", Type::Float))
        );
    }

    #[test]
    fn constant_folding() {
        let e = Expr::bin(BinOp::Add, Expr::int(2), Expr::int(3));
        assert_eq!(ConstantFold.try_apply(&e, &env()), Some(Expr::int(5)));
        let e = Expr::un(UnOp::Neg, Expr::int(7));
        assert_eq!(ConstantFold.try_apply(&e, &env()), Some(Expr::int(-7)));
        let e = Expr::bin(BinOp::Add, Expr::var("x", Type::Int), Expr::int(3));
        assert_eq!(ConstantFold.try_apply(&e, &env()), None);
    }

    #[test]
    fn lidia_rule_specializes_bigfloat_reciprocals_only() {
        let f = Expr::var("f", Type::BigFloat);
        let e = Expr::bin(BinOp::Div, Expr::bigfloat(1.0), f.clone());
        let out = LidiaInverse.try_apply(&e, &env()).unwrap();
        assert_eq!(out.to_string(), "Inverse(f)");
        let e = Expr::un(UnOp::Recip, f);
        assert!(LidiaInverse.try_apply(&e, &env()).is_some());
        // Plain floats are untouched: the rule is library-specific.
        let e = Expr::un(UnOp::Recip, Expr::var("g", Type::Float));
        assert_eq!(LidiaInverse.try_apply(&e, &env()), None);
        assert_eq!(
            Value::BigFloat(1.0).ty(),
            Type::BigFloat // sanity: literals carry the library type
        );
    }

    #[test]
    fn assoc_fold_gathers_constants() {
        // (x + 1) + 2 → x + (1 + 2); the engine then folds to x + 3.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::var("x", Type::Int), Expr::int(1)),
            Expr::int(2),
        );
        let out = AssocFold.try_apply(&e, &env()).unwrap();
        assert_eq!(out.to_string(), "(x + (1 + 2))");
        // Commutative variant: (1 + x) + 2 → x + (1 + 2).
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::int(1), Expr::var("x", Type::Int)),
            Expr::int(2),
        );
        assert!(AssocFold.try_apply(&e, &env()).is_some());
        // Non-commutative concat: left variant must NOT fire.
        let e = Expr::bin(
            BinOp::Concat,
            Expr::bin(BinOp::Concat, Expr::string("a"), Expr::var("s", Type::Str)),
            Expr::string("b"),
        );
        assert_eq!(AssocFold.try_apply(&e, &env()), None);
        // But the right-nested concat form does (pure associativity).
        let e = Expr::bin(
            BinOp::Concat,
            Expr::bin(BinOp::Concat, Expr::var("s", Type::Str), Expr::string("a")),
            Expr::string("b"),
        );
        assert!(AssocFold.try_apply(&e, &env()).is_some());
    }

    #[test]
    fn assoc_fold_composes_with_constant_fold_in_engine() {
        use crate::simplify::Simplifier;
        // ((((x + 1) + 2) + 3) + 4) → x + 10.
        let mut e = Expr::var("x", Type::Int);
        for c in 1..=4 {
            e = Expr::bin(BinOp::Add, e, Expr::int(c));
        }
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&e);
        assert_eq!(out.to_string(), "(x + 10)");
        assert!(stats.applications["assoc-fold"] >= 3);
        assert!(stats.applications["constant-fold"] >= 3);
    }

    #[test]
    fn not_not_unwraps() {
        let b = Expr::var("b", Type::Bool);
        let e = Expr::un(UnOp::Not, Expr::un(UnOp::Not, b.clone()));
        assert_eq!(NotNot.try_apply(&e, &env()), Some(b.clone()));
        let e = Expr::un(UnOp::Not, b);
        assert_eq!(NotNot.try_apply(&e, &env()), None);
    }
}
