//! The typed expression AST Simplicissimus rewrites, with an evaluator used
//! to verify that rewriting preserves semantics.

use gp_core::numeric::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// Expression types. Deliberately first-order and nominal: the rewrite
/// rules dispatch on `(Type, BinOp)` pairs through the concept environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Unsigned integer (bitwise instances).
    UInt,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// Exact rational.
    Rational,
    /// Square matrix (symbolic; evaluation is not supported for all rules).
    Matrix,
    /// Arbitrary-precision float (the LiDIA `bigfloat` stand-in).
    BigFloat,
}

/// Runtime values for the evaluator.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Unsigned value.
    UInt(u64),
    /// Float value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
    /// Rational value.
    Rational(Rational),
    /// Arbitrary-precision float stand-in (evaluated as f64).
    BigFloat(f64),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::UInt(_) => Type::UInt,
            Value::Float(_) => Type::Float,
            Value::Bool(_) => Type::Bool,
            Value::Str(_) => Type::Str,
            Value::Rational(_) => Type::Rational,
            Value::BigFloat(_) => Type::BigFloat,
        }
    }

    /// Approximate equality (exact for discrete types, epsilon for floats) —
    /// used when checking that simplification preserved the value.
    pub fn approx_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) | (Value::BigFloat(a), Value::BigFloat(b)) => {
                (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
            }
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::UInt(v) => write!(f, "{v:#x}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Rational(v) => write!(f, "{v}"),
            Value::BigFloat(v) => write!(f, "big({v:?})"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition / group operation written additively.
    Add,
    /// Subtraction (sugar for `a + (-b)` on group types).
    Sub,
    /// Multiplication / matrix product.
    Mul,
    /// Division (sugar for `a * recip(b)` on field types).
    Div,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Bitwise and.
    BitAnd,
    /// String/sequence concatenation.
    Concat,
}

impl BinOp {
    /// Operator spelling for display.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::Concat => "++",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Additive inverse.
    Neg,
    /// Multiplicative inverse.
    Recip,
    /// Logical not.
    Not,
}

/// Expressions. Variables carry their type (the AST arrives type-checked,
/// as it would from a compiler front end).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Typed variable.
    Var(String, Type),
    /// Unary application.
    Unary(UnOp, Box<Expr>),
    /// Binary application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Named function call (library functions such as `Inverse`).
    Call(String, Type, Vec<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }
    /// Unsigned literal.
    pub fn uint(v: u64) -> Expr {
        Expr::Lit(Value::UInt(v))
    }
    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }
    /// Boolean literal.
    pub fn boolean(v: bool) -> Expr {
        Expr::Lit(Value::Bool(v))
    }
    /// String literal.
    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Lit(Value::Str(v.into()))
    }
    /// Big-float literal.
    pub fn bigfloat(v: f64) -> Expr {
        Expr::Lit(Value::BigFloat(v))
    }
    /// Typed variable.
    pub fn var(name: impl Into<String>, ty: Type) -> Expr {
        Expr::Var(name.into(), ty)
    }
    /// Binary application.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }
    /// Unary application.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Static type of the expression (operands of a binary op share its
    /// type in this first-order language).
    pub fn ty(&self) -> Type {
        match self {
            Expr::Lit(v) => v.ty(),
            Expr::Var(_, t) => *t,
            Expr::Unary(UnOp::Not, _) => Type::Bool,
            Expr::Unary(_, e) => e.ty(),
            Expr::Binary(_, l, _) => l.ty(),
            Expr::Call(_, t, _) => *t,
        }
    }

    /// Number of AST nodes — the simplifier's cost metric.
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(..) => 1,
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, l, r) => 1 + l.size() + r.size(),
            Expr::Call(_, _, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Evaluate under variable bindings. Returns `None` for ill-typed
    /// expressions or unbound variables.
    pub fn eval(&self, env: &BTreeMap<String, Value>) -> Option<Value> {
        match self {
            Expr::Lit(v) => Some(v.clone()),
            Expr::Var(name, _) => env.get(name).cloned(),
            Expr::Unary(op, e) => {
                let v = e.eval(env)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Some(Value::Int(-x)),
                    (UnOp::Neg, Value::Float(x)) => Some(Value::Float(-x)),
                    (UnOp::Neg, Value::BigFloat(x)) => Some(Value::BigFloat(-x)),
                    (UnOp::Neg, Value::Rational(x)) => Some(Value::Rational(-x)),
                    (UnOp::Recip, Value::Float(x)) => Some(Value::Float(1.0 / x)),
                    (UnOp::Recip, Value::BigFloat(x)) => Some(Value::BigFloat(1.0 / x)),
                    (UnOp::Recip, Value::Rational(x)) => {
                        if x.is_zero() {
                            None
                        } else {
                            Some(Value::Rational(gp_core::algebra::Recip::recip(&x)))
                        }
                    }
                    (UnOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                    _ => None,
                }
            }
            Expr::Binary(op, l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                eval_bin(*op, l, r)
            }
            Expr::Call(name, _, args) => {
                // Library calls known to the evaluator.
                if name == "Inverse" && args.len() == 1 {
                    match args[0].eval(env)? {
                        Value::BigFloat(x) => Some(Value::BigFloat(1.0 / x)),
                        Value::Float(x) => Some(Value::Float(1.0 / x)),
                        _ => None,
                    }
                } else {
                    None
                }
            }
        }
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use BinOp::*;
    use Value::*;
    Some(match (op, l, r) {
        (Add, Int(a), Int(b)) => Int(a.wrapping_add(b)),
        (Sub, Int(a), Int(b)) => Int(a.wrapping_sub(b)),
        (Mul, Int(a), Int(b)) => Int(a.wrapping_mul(b)),
        (Add, Float(a), Float(b)) => Float(a + b),
        (Sub, Float(a), Float(b)) => Float(a - b),
        (Mul, Float(a), Float(b)) => Float(a * b),
        (Div, Float(a), Float(b)) => Float(a / b),
        (Add, BigFloat(a), BigFloat(b)) => BigFloat(a + b),
        (Sub, BigFloat(a), BigFloat(b)) => BigFloat(a - b),
        (Mul, BigFloat(a), BigFloat(b)) => BigFloat(a * b),
        (Div, BigFloat(a), BigFloat(b)) => BigFloat(a / b),
        (Add, Rational(a), Rational(b)) => Rational(a + b),
        (Sub, Rational(a), Rational(b)) => Rational(a - b),
        (Mul, Rational(a), Rational(b)) => Rational(a * b),
        (And, Bool(a), Bool(b)) => Bool(a && b),
        (Or, Bool(a), Bool(b)) => Bool(a || b),
        (BitAnd, UInt(a), UInt(b)) => UInt(a & b),
        (Concat, Str(a), Str(b)) => Str(a + &b),
        _ => return None,
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(name, _) => write!(f, "{name}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Recip, e) => write!(f, "(1/{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(!{e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Call(name, _, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(3)),
            Expr::int(1),
        );
        assert_eq!(e.eval(&env(&[("x", Value::Int(5))])), Some(Value::Int(16)));
        assert_eq!(e.ty(), Type::Int);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn eval_mixed_domains() {
        let e = Expr::bin(BinOp::Concat, Expr::string("ab"), Expr::string("cd"));
        assert_eq!(e.eval(&BTreeMap::new()), Some(Value::Str("abcd".into())));
        let e = Expr::bin(BinOp::BitAnd, Expr::uint(0xF0), Expr::uint(0xFF));
        assert_eq!(e.eval(&BTreeMap::new()), Some(Value::UInt(0xF0)));
        let e = Expr::bin(
            BinOp::Mul,
            Expr::Lit(Value::Rational(Rational::new(2, 3))),
            Expr::Lit(Value::Rational(Rational::new(3, 2))),
        );
        assert_eq!(
            e.eval(&BTreeMap::new()),
            Some(Value::Rational(Rational::from_int(1)))
        );
    }

    #[test]
    fn ill_typed_evaluates_to_none() {
        let e = Expr::bin(BinOp::Add, Expr::int(1), Expr::boolean(true));
        assert_eq!(e.eval(&BTreeMap::new()), None);
        let e = Expr::un(UnOp::Recip, Expr::int(3));
        assert_eq!(e.eval(&BTreeMap::new()), None);
    }

    #[test]
    fn unbound_variable_is_none() {
        let e = Expr::var("missing", Type::Int);
        assert_eq!(e.eval(&BTreeMap::new()), None);
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("x", Type::Int),
            Expr::un(UnOp::Neg, Expr::var("x", Type::Int)),
        );
        assert_eq!(e.to_string(), "(x + (-x))");
        let e = Expr::Call(
            "Inverse".into(),
            Type::BigFloat,
            vec![Expr::var("f", Type::BigFloat)],
        );
        assert_eq!(e.to_string(), "Inverse(f)");
    }

    #[test]
    fn approx_eq_handles_floats() {
        assert!(Value::Float(0.1 + 0.2).approx_eq(&Value::Float(0.3)));
        assert!(!Value::Float(1.0).approx_eq(&Value::Float(1.1)));
        assert!(Value::Int(3).approx_eq(&Value::Int(3)));
    }

    #[test]
    fn zero_recip_of_rational_is_none() {
        let e = Expr::un(
            UnOp::Recip,
            Expr::Lit(Value::Rational(Rational::from_int(0))),
        );
        assert_eq!(e.eval(&BTreeMap::new()), None);
    }
}
