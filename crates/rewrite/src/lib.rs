//! # gp-rewrite — Simplicissimus: concept-based expression rewriting
//!
//! Reproduction of the paper's §3.2 optimizer. A traditional compiler
//! simplifier rewrites `x + 0 → x` only when `x` is a built-in integer;
//! Simplicissimus applies rewrite rules **keyed on the concepts the data
//! types model**: `x + 0 → x` is valid whenever `(x, +)` models *Monoid*,
//! `x + (-x) → 0` whenever `(x, +, -)` models *Group* (Fig. 5). Two generic
//! rules thereby subsume the ten type-specific instances of Fig. 5 — and
//! every future type that declares the concepts, "for free".
//!
//! The engine is **user-extensible** (the paper: "of paramount
//! importance"): libraries register their own rules, e.g. LiDIA's
//! `1.0/f → f.Inverse()` specialization for arbitrary-precision floats.
//!
//! Modules:
//!
//! * [`expr`] — the typed expression AST, evaluator, and pretty printer.
//! * [`mod@env`] — the concept environment: which `(type, operation)` pairs
//!   model Monoid/Group/…, their identity and annihilator elements.
//! * [`rules`] — the [`rules::RewriteRule`] concept and the built-in
//!   concept-based rule library.
//! * [`intern`] — the hash-consed term store: every distinct subterm
//!   interned once, `u32` ids, O(1) equality.
//! * [`simplify`] — the rewrite engine: indexed rule dispatch plus a
//!   normal-form memo over the interner (and the original clone-per-pass
//!   engine as a measured baseline), with application statistics.
//! * [`egraph`] — the opt-in equality-saturation mode: e-classes and
//!   congruence closure layered over the interner, bounded saturation of
//!   the same concept-gated rules, and cost-based extraction (the
//!   concept superoptimizer).

pub mod egraph;
pub mod env;
pub mod expr;
pub mod intern;
pub mod rules;
pub mod simplify;

pub use egraph::{
    AstSizeCost, ComplexityCost, CostModel, EGraph, EGraphConfig, MeasuredCost, OptimizeStats,
};
pub use env::ConceptEnv;
pub use expr::{BinOp, Expr, Type, UnOp, Value};
pub use intern::{TermId, TermStore};
pub use rules::RewriteRule;
pub use simplify::{Session, Simplifier, SimplifyStats};
