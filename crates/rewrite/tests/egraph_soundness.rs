//! Extraction-soundness properties for the e-graph: whatever equalities
//! saturation discovers, the extracted term must still *mean* the same
//! thing as the input.
//!
//! Two oracles, two rule sets:
//!
//! * **Directed oracle** (standard rules only): without the exploration
//!   equalities, every union the e-graph performs is justified by a rule
//!   the directed engine also runs, so the extracted term must simplify
//!   to the directed engine's normal form.
//! * **Numeric oracle** (superoptimizer rules): commutativity and
//!   associativity have no directed counterpart, so the check is
//!   semantic — evaluate input and output under random integer bindings
//!   and require identical values. The integer fragment is exact
//!   (wrapping arithmetic is truly associative/commutative), so equality
//!   is `==`, with no float-NaN/-0.0 caveats to paper over.
//!
//! Both properties also pin the cost contract: `cost_after <=
//! cost_before` always, and extraction never invents a term the input's
//! class cannot explain.

use gp_rewrite::egraph::{AstSizeCost, EGraphConfig, MeasuredCost};
use gp_rewrite::expr::{BinOp, Type, UnOp, Value};
use gp_rewrite::{ConceptEnv, Expr, Simplifier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

fn gen_int_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4) {
            0 => Expr::int(rng.gen_range(-3..4)),
            1 => Expr::int(0),
            2 => Expr::var("a", Type::Int),
            _ => Expr::var("b", Type::Int),
        };
    }
    match rng.gen_range(0..4) {
        0 => Expr::bin(
            BinOp::Add,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        1 => Expr::bin(
            BinOp::Sub,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        2 => Expr::bin(
            BinOp::Mul,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        _ => Expr::un(UnOp::Neg, gen_int_expr(rng, depth - 1)),
    }
}

/// A random integer expression over variables `a` and `b`, plus a set of
/// random bindings to evaluate it under.
struct IntExprWithBindings {
    depth: usize,
}

impl Strategy for IntExprWithBindings {
    type Value = (Expr, Vec<BTreeMap<String, Value>>);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let e = gen_int_expr(rng, self.depth);
        let bindings = (0..4)
            .map(|_| {
                let mut env = BTreeMap::new();
                env.insert("a".to_string(), Value::Int(rng.gen_range(-50..50)));
                env.insert("b".to_string(), Value::Int(rng.gen_range(-50..50)));
                env
            })
            .collect();
        (e, bindings)
    }
}

/// Tight-but-sufficient budgets: small random terms saturate well inside
/// these, and when they don't, soundness must hold anyway.
fn cfg() -> EGraphConfig {
    EGraphConfig {
        max_nodes: 2_000,
        max_classes: 2_000,
        max_iters: 8,
    }
}

proptest! {
    /// Standard rules only: the e-graph discovers a subset of what the
    /// directed engine computes, so re-simplifying the extracted term
    /// must land on the directed normal form.
    #[test]
    fn standard_rule_extraction_agrees_with_the_directed_engine(
        (e, _) in IntExprWithBindings { depth: 4 }
    ) {
        let s = Simplifier::standard();
        let (directed_nf, _) = s.simplify(&e);
        let (extracted, stats) = s.session().optimize(&e, &cfg(), &AstSizeCost);
        prop_assert!(stats.cost_after <= stats.cost_before);
        let (renf, _) = s.simplify(&extracted);
        prop_assert_eq!(
            renf,
            directed_nf,
            "extracted term drifted from the directed normal form on {}",
            e
        );
    }

    /// Superoptimizer rules (with commutativity/associativity): semantic
    /// equality under random bindings. Int arithmetic wraps, so the
    /// exploration equalities are *exact* — any value difference is an
    /// unsound union or a broken extraction.
    #[test]
    fn superopt_extraction_preserves_value_under_random_bindings(
        (e, bindings) in IntExprWithBindings { depth: 4 }
    ) {
        let s = Simplifier::superopt(ConceptEnv::standard());
        let measured = MeasuredCost::from_counts(gp_taxonomy_free_counts());
        let (extracted, stats) = s.session().optimize(&e, &cfg(), &measured);
        prop_assert!(stats.cost_after <= stats.cost_before);
        for env in &bindings {
            let want = e.eval(env);
            let got = extracted.eval(env);
            prop_assert_eq!(
                &got, &want,
                "{} -> {} changed value under {:?}",
                e, extracted, env
            );
        }
    }

    /// Determinism rides along: two saturations of the same input are
    /// bit-equal in output and statistics (budgets make this meaningful
    /// even on explosive terms).
    #[test]
    fn superopt_extraction_is_deterministic((e, _) in IntExprWithBindings { depth: 4 }) {
        let s = Simplifier::superopt(ConceptEnv::standard());
        let (out1, stats1) = s.session().optimize(&e, &cfg(), &AstSizeCost);
        let (out2, stats2) = s.session().optimize(&e, &cfg(), &AstSizeCost);
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(stats1, stats2);
    }
}

/// A stand-in for `gp_taxonomy::measured_op_counts()` — the rewrite
/// crate cannot depend on the taxonomy (the dependency points the other
/// way), so this test weights the integer fragment directly: multiplies
/// are worth more than adds, negation is free-ish. Any positive weights
/// exercise the same extraction code paths.
fn gp_taxonomy_free_counts() -> Vec<(&'static str, u64)> {
    vec![
        ("int.mul", 4),
        ("int.add", 1),
        ("int.sub", 1),
        ("int.neg", 1),
    ]
}
