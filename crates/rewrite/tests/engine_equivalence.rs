//! Property tests pinning the hash-consed engine to the clone-per-pass
//! baseline: for random expressions — including DAG-shaped ones with
//! forced shared subterms — both engines must produce the same output
//! and the same per-rule application counts, and the interned engine
//! must actually exploit the sharing (memo hit-rate > 0).

use gp_rewrite::expr::{BinOp, Type, UnOp};
use gp_rewrite::{Expr, Simplifier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy over the integer fragment (the fragment with rich rule
/// coverage: identities, inverses, annihilators, constant folding,
/// associative re-folding). The offline proptest subset has no
/// `prop_recursive`, so this is a hand-rolled recursive sampler.
struct IntExpr {
    depth: usize,
}

fn gen_int_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4) {
            0 => Expr::int(rng.gen_range(-3..4)),
            1 => Expr::int(0),
            2 => Expr::var("a", Type::Int),
            _ => Expr::var("b", Type::Int),
        };
    }
    match rng.gen_range(0..4) {
        0 => Expr::bin(
            BinOp::Add,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        1 => Expr::bin(
            BinOp::Sub,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        2 => Expr::bin(
            BinOp::Mul,
            gen_int_expr(rng, depth - 1),
            gen_int_expr(rng, depth - 1),
        ),
        _ => Expr::un(UnOp::Neg, gen_int_expr(rng, depth - 1)),
    }
}

impl Strategy for IntExpr {
    type Value = Expr;

    fn sample(&self, rng: &mut StdRng) -> Expr {
        gen_int_expr(rng, self.depth)
    }
}

/// Builds a tree with *forced* shared subterms: starting from a pool of
/// independent seeds, each step combines two previously built nodes
/// (chosen by index, so reuse — and thus structural sharing once
/// interned — is the norm, not the exception). The returned `Expr` is a
/// plain tree whose clones of shared nodes the interner must collapse.
struct SharedDagExpr;

impl Strategy for SharedDagExpr {
    type Value = Expr;

    fn sample(&self, rng: &mut StdRng) -> Expr {
        let mut nodes: Vec<Expr> = (0..rng.gen_range(1..4))
            .map(|_| gen_int_expr(rng, 2))
            .collect();
        for _ in 0..rng.gen_range(1..12) {
            let l = nodes[rng.gen_range(0..nodes.len())].clone();
            let r = nodes[rng.gen_range(0..nodes.len())].clone();
            let op = match rng.gen_range(0..3) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                _ => BinOp::Mul,
            };
            nodes.push(Expr::bin(op, l, r));
        }
        nodes.pop().expect("at least one seed")
    }
}

/// Both engines must agree on the output; the interned engine may fire
/// each rule *fewer* times (a shared subterm is rewritten once, not once
/// per occurrence — the point of the memo), but never more, and never a
/// rule the baseline didn't need.
fn assert_engines_agree(s: &Simplifier, e: &Expr) {
    let (out_new, stats_new) = s.simplify(e);
    let (out_old, stats_old) = s.simplify_baseline(e);
    assert_eq!(out_new, out_old, "engines diverged on {e}");
    assert_eq!(stats_new.size_before, stats_old.size_before);
    assert_eq!(stats_new.size_after, stats_old.size_after);
    let new_rules: Vec<&String> = stats_new.applications.keys().collect();
    let old_rules: Vec<&String> = stats_old.applications.keys().collect();
    assert_eq!(new_rules, old_rules, "different rule sets fired on {e}");
    for (rule, n_new) in &stats_new.applications {
        let n_old = stats_old.applications[rule];
        assert!(
            *n_new <= n_old,
            "rule {rule} fired {n_new} > baseline {n_old} times on {e}"
        );
    }
}

proptest! {
    #[test]
    fn interned_engine_matches_baseline_on_random_expressions(e in IntExpr { depth: 4 }) {
        assert_engines_agree(&Simplifier::standard(), &e);
    }

    #[test]
    fn interned_engine_matches_baseline_on_shared_subterm_dags(e in SharedDagExpr) {
        assert_engines_agree(&Simplifier::standard(), &e);
    }

    #[test]
    fn doubled_expressions_always_memo_hit(e in IntExpr { depth: 3 }) {
        // t + t: the second occurrence of t is, by construction, shared —
        // the interner must collapse it and the memo must catch it.
        let doubled = Expr::bin(BinOp::Add, e.clone(), e);
        let s = Simplifier::standard();
        let (out, stats) = s.simplify(&doubled);
        prop_assert!(stats.memo_hits > 0, "no memo hits on a doubled term");
        let (out_old, _) = s.simplify_baseline(&doubled);
        prop_assert_eq!(out, out_old);
    }
}
