//! Property tests for the incremental frame codec.
//!
//! The reactor reads whatever byte spans the kernel hands it — a frame
//! can arrive one byte at a time, split inside the length prefix, or
//! glued to its neighbors in one read. The decoder must produce the
//! exact same frame sequence for **every** chunking of the same byte
//! stream, reject oversized frames as soon as the prefix is complete,
//! and flag a stream that ends mid-frame as truncated rather than
//! silently dropping the tail.

use gp_service::wire::{encode_frame, read_frame, write_frame, FrameDecoder, MAX_FRAME};
use gp_service::{decode_request, encode_request, Request};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// A valid frame stream: payloads of printable text (some empty, some
/// multibyte) of varied lengths.
struct FrameStream {
    max_frames: usize,
}

impl Strategy for FrameStream {
    type Value = Vec<String>;

    fn sample(&self, rng: &mut StdRng) -> Vec<String> {
        let n = rng.gen_range(0..self.max_frames);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0usize..200);
                (0..len)
                    .map(|_| {
                        // Mix ASCII with multibyte so UTF-8 boundaries land
                        // inside chunks.
                        match rng.gen_range(0u8..10) {
                            0 => 'é',
                            1 => '🚀',
                            2 => '\n',
                            _ => rng.gen_range(b' '..b'~') as char,
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Cut points for a byte stream: a sorted set of split positions.
fn random_chunks(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let cuts = rng.gen_range(0..20.min(len + 1));
    let mut points: Vec<usize> = (0..cuts).map(|_| rng.gen_range(0..=len)).collect();
    points.push(0);
    points.push(len);
    points.sort_unstable();
    points.dedup();
    points
}

fn decode_all(bytes: &[u8], cuts: &[usize]) -> (Vec<String>, bool) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for w in cuts.windows(2) {
        dec.feed(&bytes[w[0]..w[1]]);
        while let Some(f) = dec.next_frame().expect("valid stream decodes") {
            frames.push(f);
        }
    }
    (frames, dec.is_idle())
}

proptest! {
    /// Any chunking of a valid frame stream decodes to the same frames,
    /// and a fully consumed stream leaves the decoder idle.
    #[test]
    fn any_chunking_decodes_to_the_same_frame_sequence(
        payloads in FrameStream { max_frames: 12 },
        seed in 0u64..1_000_000,
    ) {
        use rand::SeedableRng;
        let mut bytes = Vec::new();
        for p in &payloads {
            encode_frame(&mut bytes, p);
        }
        // Whole stream in one feed is the reference...
        let all = vec![0, bytes.len()];
        let (reference, idle) = decode_all(&bytes, &all);
        prop_assert_eq!(&reference, &payloads);
        prop_assert!(idle);
        // ...and three random chunkings must agree with it.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let cuts = random_chunks(&mut rng, bytes.len());
            let (frames, idle) = decode_all(&bytes, &cuts);
            prop_assert_eq!(&frames, &payloads);
            prop_assert!(idle);
        }
        // Byte-at-a-time is the worst case.
        let every: Vec<usize> = (0..=bytes.len()).collect();
        let (frames, idle) = decode_all(&bytes, &every);
        prop_assert_eq!(&frames, &payloads);
        prop_assert!(idle);
    }

    /// Chunked request frames decode to the same (id, request) sequence
    /// the sender encoded — the reactor's actual input path.
    #[test]
    fn chunked_request_frames_recover_the_request_sequence(
        ids in prop::collection::vec(1u64..1_000, 1..8),
        seed in 0u64..1_000_000,
    ) {
        use rand::SeedableRng;
        let reqs: Vec<(u64, Request)> = ids
            .iter()
            .map(|&id| {
                (id, Request::Lint(gp_service::lint::LintRequest {
                    name: format!("p{id}"),
                    program: "container xs vector\niter it = begin xs\n".into(),
                }))
            })
            .collect();
        let mut bytes = Vec::new();
        for (id, req) in &reqs {
            encode_frame(&mut bytes, &encode_request(*id, req));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let cuts = random_chunks(&mut rng, bytes.len());
        let (frames, idle) = decode_all(&bytes, &cuts);
        prop_assert!(idle);
        prop_assert_eq!(frames.len(), reqs.len());
        for (frame, (id, req)) in frames.iter().zip(&reqs) {
            let (got_id, got_req) = decode_request(frame).expect("decodes");
            prop_assert_eq!(got_id, *id);
            prop_assert_eq!(got_req.canonical(), req.canonical());
        }
    }

    /// A stream cut anywhere strictly inside a frame is truncated: the
    /// decoder reports not-idle rather than inventing a frame.
    #[test]
    fn truncated_streams_are_flagged_not_silently_dropped(
        payload_len in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: String = (0..payload_len)
            .map(|_| rng.gen_range(b'a'..=b'z') as char)
            .collect();
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, &payload);
        let cut = rng.gen_range(1..bytes.len());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes[..cut]);
        prop_assert_eq!(dec.next_frame().unwrap(), None, "no frame yet");
        prop_assert!(!dec.is_idle(), "mid-frame EOF must look truncated");
        // Feeding the rest completes it — nothing was lost.
        dec.feed(&bytes[cut..]);
        prop_assert_eq!(dec.next_frame().unwrap().as_deref(), Some(payload.as_str()));
        prop_assert!(dec.is_idle());
    }
}

/// An oversized length prefix is rejected as soon as the prefix is
/// complete — before any payload allocation, whatever the chunking.
#[test]
fn oversized_frames_are_rejected_at_the_prefix() {
    let prefix = ((MAX_FRAME + 1) as u32).to_be_bytes();
    // All four prefix chunkings: 4, 2+2, 1+3, 1+1+1+1.
    for cuts in [
        vec![0, 4],
        vec![0, 2, 4],
        vec![0, 1, 4],
        vec![0, 1, 2, 3, 4],
    ] {
        let mut dec = FrameDecoder::new();
        let mut err = false;
        for w in cuts.windows(2) {
            dec.feed(&prefix[w[0]..w[1]]);
            if dec.next_frame().is_err() {
                err = true;
                break;
            }
        }
        assert!(err, "oversized prefix must error before payload bytes");
    }
    // Exactly MAX_FRAME is allowed (boundary).
    let mut dec = FrameDecoder::new();
    dec.feed(&(MAX_FRAME as u32).to_be_bytes());
    assert!(dec.next_frame().is_ok(), "MAX_FRAME itself is legal");
}

/// Zero-length payloads are real frames, not EOF: both the blocking
/// reader and the incremental decoder must yield `Some("")`, and only a
/// stream that ends *between* frames reads as clean EOF.
#[test]
fn zero_length_frames_round_trip_on_both_paths() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, "").unwrap();
    write_frame(&mut bytes, "x").unwrap();
    write_frame(&mut bytes, "").unwrap();
    assert_eq!(bytes.len(), 4 + 4 + 1 + 4, "empty frames are bare prefixes");

    // Blocking path: read_frame distinguishes empty frame from EOF.
    let mut r = &bytes[..];
    assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
    assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("x"));
    assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
    assert_eq!(read_frame(&mut r).unwrap(), None, "then clean EOF");

    // Incremental path, worst-case chunking: byte at a time.
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for b in &bytes {
        dec.feed(std::slice::from_ref(b));
        while let Some(f) = dec.next_frame().unwrap() {
            frames.push(f);
        }
    }
    assert_eq!(frames, ["", "x", ""]);
    assert!(dec.is_idle());
}

/// A payload of exactly `MAX_FRAME` bytes passes both paths, and one
/// byte more is rejected by the writer before it touches the wire.
#[test]
fn max_frame_payloads_round_trip_and_one_more_byte_is_refused() {
    let payload = "m".repeat(MAX_FRAME);
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &payload).unwrap();
    assert_eq!(bytes.len(), 4 + MAX_FRAME);

    // Blocking path.
    let mut r = &bytes[..];
    assert_eq!(read_frame(&mut r).unwrap(), Some(payload.clone()));
    assert_eq!(read_frame(&mut r).unwrap(), None);

    // Incremental path, split mid-prefix and mid-payload.
    let mut dec = FrameDecoder::new();
    dec.feed(&bytes[..2]);
    assert_eq!(dec.next_frame().unwrap(), None, "prefix incomplete");
    dec.feed(&bytes[2..MAX_FRAME / 2]);
    assert_eq!(dec.next_frame().unwrap(), None, "payload incomplete");
    assert!(!dec.is_idle());
    dec.feed(&bytes[MAX_FRAME / 2..]);
    assert_eq!(dec.next_frame().unwrap(), Some(payload.clone()));
    assert!(dec.is_idle());

    // MAX_FRAME + 1 never leaves the sender.
    let oversize = "m".repeat(MAX_FRAME + 1);
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &oversize).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(sink.is_empty(), "nothing was written before the refusal");
}
