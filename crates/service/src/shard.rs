//! The consistent-hash shard router: N [`Service`] instances, each
//! owning a true partition of the response cache.
//!
//! One big service instance shares one cache and one queue between all
//! workers; under heavy load the cache stripes contend and the
//! micro-batcher's queue scan wades through every environment's
//! requests. The router splits the tier into `shards` independent
//! `Service` instances and routes each request by a **routing key**
//! hashed onto a consistent ring ([`HashRing`], `vnodes` virtual nodes
//! per shard so a shard's arc is spread across the key space and
//! adding/removing a shard moves only `1/n` of the keys):
//!
//! - `Simplify` routes by its **environment fingerprint**, so every
//!   request that could share a micro-batch lands on the same shard —
//!   the batcher sees denser same-env runs, and a given cache key still
//!   maps to exactly one shard (the environment is part of the
//!   canonical form).
//! - Every other kind routes by the hash of its **canonical form** (the
//!   cache key), spreading load uniformly.
//!
//! Either way the map from canonical form to shard is deterministic, so
//! the per-shard caches partition the key space with zero cross-shard
//! duplication: `service.shard.<i>.cache.{hit,miss}` counters make the
//! partition observable, and the E14 experiment checks that the union of
//! shard caches holds each key at most once.

use crate::reactor::{Reactor, ReactorConfig, ReactorHandle, ReplyFn, SubmitRequest};
use crate::request::{fnv1a, Request, Response};
use crate::server::{Service, ServiceConfig, ServiceStats, Ticket};
use gp_telemetry::trace::{TraceHandle, TraceStore};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consistent-hash ring over shard indices.
///
/// Points are `(hash, shard)` pairs sorted by hash; a key routes to the
/// first point clockwise from its own hash. With `vnodes` points per
/// shard the expected fraction of keys moved by adding or removing one
/// shard is `1/n`, not the `(n-1)/n` a modulo hash pays.
pub struct HashRing {
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring of `shards` shards with `vnodes` virtual nodes each.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let mut points: Vec<(u64, u32)> = (0..shards.max(1))
            .flat_map(|s| {
                (0..vnodes.max(1)).map(move |v| (fnv1a(&format!("shard-{s}-vnode-{v}")), s as u32))
            })
            .collect();
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points }
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(h, _)| h < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }

    /// The first *eligible* shard clockwise from `key`: a dead shard's
    /// vnode ranges fall through to the next live point on the ring, so a
    /// failover moves only the dead shard's arcs — exactly the property
    /// consistent hashing buys. Falls back to plain [`route`](Self::route)
    /// if no point is eligible.
    pub fn route_where(&self, key: u64, eligible: impl Fn(usize) -> bool) -> usize {
        let start = self.points.partition_point(|&(h, _)| h < key);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if eligible(shard as usize) {
                return shard as usize;
            }
        }
        self.route(key)
    }

    /// Number of ring points owned by `shard` — the vnode ranges that move
    /// when the shard dies.
    pub fn points_of(&self, shard: usize) -> usize {
        self.points
            .iter()
            .filter(|&&(_, s)| s as usize == shard)
            .count()
    }

    /// Number of virtual-node points on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Rings are never empty (shards and vnodes are clamped to ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Tuning for a [`ShardRouter`].
#[derive(Clone, Debug)]
pub struct ShardRouterConfig {
    /// Independent `Service` instances.
    pub shards: usize,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Per-shard service configuration (the router overrides each
    /// shard's `cache_label` with `service.shard.<i>.cache`).
    pub base: ServiceConfig,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            shards: 2,
            vnodes: 64,
            base: ServiceConfig::default(),
        }
    }
}

/// The control plane's hook into the routing table: whoever is elected
/// leader calls [`mark_dead`](FailoverTarget::mark_dead) to re-route a
/// crashed shard's vnode ranges to survivors. Implemented by the router's
/// shared inner state so reactors and control-plane nodes see one table.
pub trait FailoverTarget: Send + Sync {
    /// Take `shard` out of the routing table; its vnode ranges fall
    /// through to the next live shards clockwise. Returns the number of
    /// ring points reassigned — 0 if the shard was already dead, and 0
    /// (refusing the operation) if it is the last live shard.
    fn mark_dead(&self, shard: usize) -> usize;

    /// Bitmask of live shards (bit `i` set = shard `i` routable).
    fn alive_mask(&self) -> u64;
}

/// The routing state shared with reactors and the control plane: ring,
/// per-shard submitters, and the live-shard mask.
struct RouterInner {
    ring: HashRing,
    submitters: Vec<Arc<dyn SubmitRequest>>,
    /// Each shard's completed-trace store, in shard order: a `trace`
    /// query must probe all of them, because the trace lives on whichever
    /// shard *executed* the original request.
    trace_stores: Vec<Arc<TraceStore>>,
    /// Bit `i` set = shard `i` is routable. The mask caps the tier at 64
    /// shards, enforced in [`ShardRouter::start`].
    alive: AtomicU64,
}

impl RouterInner {
    /// The routing key: environment fingerprint for `Simplify` (batch
    /// density), canonical-form hash otherwise. Both are functions of
    /// the canonical form, so the cache partition is deterministic.
    fn routing_key(request: &Request) -> u64 {
        match request {
            Request::Simplify(r) => r.env.fingerprint(),
            // Optimize deliberately hash-routes on its canonical form
            // (not the env fingerprint): e-graph runs don't micro-batch,
            // so spreading them across shards beats cache-partition
            // affinity with simplify traffic.
            other => fnv1a(&other.canonical()),
        }
    }

    /// Route among live shards only.
    fn route(&self, key: u64) -> usize {
        let alive = self.alive.load(Ordering::Acquire);
        self.ring.route_where(key, |s| alive & (1 << s) != 0)
    }

    /// The shard that should answer `request`. A `trace` query routes to
    /// the shard whose store holds the trace (any shard may have executed
    /// it); everything else — including a trace id no store holds, which
    /// the routed shard reports as not-found — hash-routes.
    fn shard_for(&self, request: &Request) -> usize {
        if let Request::Trace(q) = request {
            if let Some(shard) = self.trace_stores.iter().position(|s| s.get(q.id).is_some()) {
                return shard;
            }
        }
        self.route(Self::routing_key(request))
    }
}

impl FailoverTarget for RouterInner {
    fn mark_dead(&self, shard: usize) -> usize {
        let bit = 1u64 << shard;
        let mut cur = self.alive.load(Ordering::Acquire);
        loop {
            if cur & bit == 0 {
                return 0; // already dead: assignment floods are idempotent
            }
            let next = cur & !bit;
            if next == 0 {
                return 0; // never un-route the last live shard
            }
            match self
                .alive
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return self.ring.points_of(shard),
                Err(seen) => cur = seen,
            }
        }
    }

    fn alive_mask(&self) -> u64 {
        self.alive.load(Ordering::Acquire)
    }
}

impl SubmitRequest for RouterInner {
    fn submit_traced(&self, request: Request, trace: Option<TraceHandle>, reply: ReplyFn) {
        let shard = self.shard_for(&request);
        match trace {
            Some(h) => {
                // The `router` span brackets the routing decision and the
                // hand-off into the shard's admission path; the shard's
                // spans parent under it.
                let span = h.span("router");
                let child = h.child_of(&span);
                drop(h);
                self.submitters[shard].submit_traced(request, Some(child), reply);
                span.finish();
            }
            None => self.submitters[shard].submit_traced(request, None, reply),
        }
    }
}

/// A fleet of [`Service`] shards behind one consistent-hash front door.
pub struct ShardRouter {
    services: Vec<Service>,
    inner: Arc<RouterInner>,
    reactor: Option<ReactorHandle>,
}

impl ShardRouter {
    /// Start `config.shards` service instances, each with its own
    /// workers, queue, and cache partition.
    pub fn start(config: ShardRouterConfig) -> ShardRouter {
        assert!(
            config.shards <= 64,
            "the live-shard mask supports at most 64 shards"
        );
        let services: Vec<Service> = (0..config.shards.max(1))
            .map(|i| {
                Service::start(ServiceConfig {
                    cache_label: Some(format!("service.shard.{i}.cache")),
                    ..config.base.clone()
                })
            })
            .collect();
        let inner = Arc::new(RouterInner {
            ring: HashRing::new(services.len(), config.vnodes),
            submitters: services.iter().map(Service::submitter).collect(),
            trace_stores: services.iter().map(Service::trace_store).collect(),
            alive: AtomicU64::new(if services.len() == 64 {
                u64::MAX
            } else {
                (1u64 << services.len()) - 1
            }),
        });
        ShardRouter {
            services,
            inner,
            reactor: None,
        }
    }

    /// Which shard `request` routes to (stable for its canonical form
    /// while the live-shard set is stable; a failover re-routes only the
    /// dead shard's vnode ranges). A `trace` query routes to the shard
    /// whose store holds the trace.
    pub fn shard_of(&self, request: &Request) -> usize {
        self.inner.shard_for(request)
    }

    /// Submit without waiting; the [`Ticket`] resolves to the response.
    pub fn submit(&self, request: Request) -> Ticket {
        let shard = self.shard_of(&request);
        self.services[shard].submit(request)
    }

    /// Submit carrying a trace handle: the router opens a `router` span
    /// and the chosen shard's spans nest under it.
    pub fn submit_traced(&self, request: Request, trace: Option<TraceHandle>) -> Ticket {
        let shard = self.shard_of(&request);
        let traced = trace.map(|h| {
            let span = h.span("router");
            let child = h.child_of(&span);
            (child, span)
        });
        match traced {
            Some((child, span)) => {
                let ticket = self.services[shard].submit_traced(request, Some(child));
                span.finish();
                ticket
            }
            None => self.services[shard].submit_traced(request, None),
        }
    }

    /// Route, submit, and block for the answer.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// This router as a reactor request sink.
    pub fn submitter(&self) -> Arc<dyn SubmitRequest> {
        Arc::clone(&self.inner) as Arc<dyn SubmitRequest>
    }

    /// This router's assignment table as a control-plane hook: the
    /// elected leader re-routes a dead shard's vnodes through it.
    pub fn failover_target(&self) -> Arc<dyn FailoverTarget> {
        Arc::clone(&self.inner) as Arc<dyn FailoverTarget>
    }

    /// Crash-stop shard `i` *without touching the routing table*: the
    /// shard drains and joins, and until the control plane detects the
    /// death and re-floods the assignment, requests routed to it shed as
    /// retriable [`Response::Overloaded`] — the real detection window.
    /// Returns the dead shard's final stats (its conservation law holds:
    /// `accepted = completed + shed`).
    ///
    /// [`Response::Overloaded`]: crate::request::Response::Overloaded
    pub fn kill_shard(&mut self, i: usize) -> ServiceStats {
        self.services[i].shutdown()
    }

    /// Serve the whole fleet over one reactor front end on `addr`.
    pub fn listen_reactor(&mut self, addr: &str, config: ReactorConfig) -> io::Result<SocketAddr> {
        let handle = Reactor::start(addr, self.submitter(), config)?;
        let local = handle.local_addr();
        self.reactor = Some(handle);
        Ok(local)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.services.len()
    }

    /// Per-shard counter snapshots.
    pub fn stats(&self) -> Vec<ServiceStats> {
        self.services.iter().map(Service::stats).collect()
    }

    /// Fleet-wide totals (sum over shards).
    pub fn aggregate_stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in self.stats() {
            total.accepted += s.accepted;
            total.completed += s.completed;
            total.shed += s.shed;
            total.batched += s.batched;
            total.cache.hits += s.cache.hits;
            total.cache.misses += s.cache.misses;
            total.cache.evictions += s.cache.evictions;
        }
        total
    }

    /// Stop the reactor (if any), then drain and join every shard.
    /// Returns per-shard stats; the conservation law holds per shard and
    /// therefore in aggregate.
    pub fn shutdown(&mut self) -> Vec<ServiceStats> {
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        self.services.iter_mut().map(Service::shutdown).collect()
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::{EnvSpec, SimplifyRequest};
    use gp_core::json::Json;
    use gp_rewrite::{BinOp, Expr, Type};

    fn simplify_req(i: usize) -> Request {
        Request::Simplify(SimplifyRequest {
            expr: Expr::bin(
                BinOp::Mul,
                Expr::var(format!("x{i}"), Type::Int),
                Expr::int(1),
            ),
            env: EnvSpec::Standard,
        })
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(4, 64);
        assert_eq!(ring.len(), 4 * 64);
        let mut hit = [false; 4];
        for k in 0..10_000u64 {
            let s = ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(s, ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            hit[s] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 vnodes reach every shard");
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = HashRing::new(4, 64);
        let after = HashRing::new(5, 64);
        let keys = 10_000u64;
        let moved = (0..keys)
            .filter(|k| {
                let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                before.route(h) != after.route(h)
            })
            .count();
        // Ideal is 1/5 = 20%; allow slack for hash unevenness. A modulo
        // hash would move ~80%.
        assert!(
            moved < keys as usize * 2 / 5,
            "only a minority of keys move: {moved}/{keys}"
        );
    }

    #[test]
    fn same_env_simplify_requests_share_a_shard() {
        let router = ShardRouter::start(ShardRouterConfig {
            shards: 4,
            ..ShardRouterConfig::default()
        });
        let shard = router.shard_of(&simplify_req(0));
        for i in 1..16 {
            assert_eq!(
                router.shard_of(&simplify_req(i)),
                shard,
                "standard-env simplify requests all batch on one shard"
            );
        }
    }

    #[test]
    fn routing_is_stable_so_caches_partition() {
        let mut router = ShardRouter::start(ShardRouterConfig {
            shards: 3,
            ..ShardRouterConfig::default()
        });
        // A mixed stream: each distinct request repeats; the repeat must
        // hit the same shard's cache.
        let reqs: Vec<Request> = (0..6)
            .map(|i| {
                Request::Prove(crate::prove::ProveRequest {
                    theory: "monoid".into(),
                    instance: format!("i{i}"),
                    model: vec![("op".into(), format!("op{i}"))],
                })
            })
            .collect();
        let mut first = Vec::new();
        for r in &reqs {
            match router.call(r.clone()) {
                Response::Ok { payload } => first.push(payload),
                other => panic!("{other:?}"),
            }
        }
        for (r, f) in reqs.iter().zip(&first) {
            match router.call(r.clone()) {
                Response::Ok { payload } => {
                    assert_eq!(&payload, f, "repeat answered byte-identically")
                }
                other => panic!("{other:?}"),
            }
        }
        let stats = router.shutdown();
        let hits: u64 = stats.iter().map(|s| s.cache.hits).sum();
        assert_eq!(hits, reqs.len() as u64, "every repeat was a cache hit");
        let total: u64 = stats.iter().map(|s| s.accepted).sum();
        assert_eq!(total, 2 * reqs.len() as u64);
        for s in &stats {
            assert_eq!(s.in_flight(), 0, "each shard drained: {s:?}");
        }
    }

    fn prove_req(i: usize) -> Request {
        Request::Prove(crate::prove::ProveRequest {
            theory: "monoid".into(),
            instance: format!("i{i}"),
            model: vec![("op".into(), format!("op{i}"))],
        })
    }

    #[test]
    fn failover_moves_only_the_dead_shards_keys() {
        let router = ShardRouter::start(ShardRouterConfig {
            shards: 3,
            ..ShardRouterConfig::default()
        });
        let reqs: Vec<Request> = (0..64).map(prove_req).collect();
        let before: Vec<usize> = reqs.iter().map(|r| router.shard_of(r)).collect();
        assert!(
            (0..3).all(|s| before.contains(&s)),
            "64 keys reach all 3 shards"
        );

        let target = router.failover_target();
        let dead = before[0];
        let moved = target.mark_dead(dead);
        assert!(moved > 0, "vnode points were reassigned");
        assert_eq!(target.mark_dead(dead), 0, "idempotent: already dead");
        assert_eq!(target.alive_mask().count_ones(), 2);

        for (r, &was) in reqs.iter().zip(&before) {
            let now = router.shard_of(r);
            assert_ne!(now, dead, "nothing routes to the dead shard");
            if was != dead {
                assert_eq!(now, was, "live shards keep their keys");
            }
        }
    }

    #[test]
    fn the_last_live_shard_cannot_be_marked_dead() {
        let router = ShardRouter::start(ShardRouterConfig {
            shards: 2,
            ..ShardRouterConfig::default()
        });
        let target = router.failover_target();
        assert!(target.mark_dead(0) > 0);
        assert_eq!(target.mark_dead(1), 0, "refused: last live shard");
        assert_eq!(target.alive_mask(), 0b10);
        assert_eq!(router.shard_of(&prove_req(3)), 1);
    }

    #[test]
    fn killed_shard_sheds_retriably_then_failover_restores_service() {
        let mut router = ShardRouter::start(ShardRouterConfig {
            shards: 2,
            ..ShardRouterConfig::default()
        });
        let reqs: Vec<Request> = (0..32).map(prove_req).collect();
        let victim = router.shard_of(&reqs[0]);

        // The detection window: the shard is down but still routed to.
        let dead_stats = router.kill_shard(victim);
        assert_eq!(dead_stats.in_flight(), 0, "victim drained cleanly");
        let mut shed = 0;
        for r in &reqs {
            if router.shard_of(r) != victim {
                continue;
            }
            match router.call(r.clone()) {
                Response::Overloaded => shed += 1, // retriable by contract
                other => panic!("expected shed, got {other:?}"),
            }
        }
        assert!(shed > 0, "the window is observable");

        // Failover: the leader (here, the test) re-routes the vnodes.
        assert!(router.failover_target().mark_dead(victim) > 0);
        for r in &reqs {
            match router.call(r.clone()) {
                Response::Ok { .. } => {}
                other => panic!("post-failover request failed: {other:?}"),
            }
        }
        let agg = router.aggregate_stats();
        assert_eq!(
            agg.accepted,
            agg.completed + agg.shed,
            "conservation holds across the failover"
        );
        router.shutdown();
    }

    #[test]
    fn router_answers_all_kinds_and_conserves() {
        let mut router = ShardRouter::start(ShardRouterConfig::default());
        for i in 0..8 {
            match router.call(simplify_req(i)) {
                Response::Ok { payload } => {
                    Json::parse(&payload).expect("valid JSON");
                }
                other => panic!("{other:?}"),
            }
        }
        let agg = {
            let stats = router.shutdown();
            stats.iter().fold(0i64, |acc, s| acc + s.in_flight())
        };
        assert_eq!(agg, 0);
    }
}
