//! The consistent-hash shard router: N [`Service`] instances, each
//! owning a true partition of the response cache.
//!
//! One big service instance shares one cache and one queue between all
//! workers; under heavy load the cache stripes contend and the
//! micro-batcher's queue scan wades through every environment's
//! requests. The router splits the tier into `shards` independent
//! `Service` instances and routes each request by a **routing key**
//! hashed onto a consistent ring ([`HashRing`], `vnodes` virtual nodes
//! per shard so a shard's arc is spread across the key space and
//! adding/removing a shard moves only `1/n` of the keys):
//!
//! - `Simplify` routes by its **environment fingerprint**, so every
//!   request that could share a micro-batch lands on the same shard —
//!   the batcher sees denser same-env runs, and a given cache key still
//!   maps to exactly one shard (the environment is part of the
//!   canonical form).
//! - Every other kind routes by the hash of its **canonical form** (the
//!   cache key), spreading load uniformly.
//!
//! Either way the map from canonical form to shard is deterministic, so
//! the per-shard caches partition the key space with zero cross-shard
//! duplication: `service.shard.<i>.cache.{hit,miss}` counters make the
//! partition observable, and the E14 experiment checks that the union of
//! shard caches holds each key at most once.

use crate::reactor::{Reactor, ReactorConfig, ReactorHandle, ReplyFn, SubmitRequest};
use crate::request::{fnv1a, Request, Response};
use crate::server::{Service, ServiceConfig, ServiceStats, Ticket};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

/// A consistent-hash ring over shard indices.
///
/// Points are `(hash, shard)` pairs sorted by hash; a key routes to the
/// first point clockwise from its own hash. With `vnodes` points per
/// shard the expected fraction of keys moved by adding or removing one
/// shard is `1/n`, not the `(n-1)/n` a modulo hash pays.
pub struct HashRing {
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring of `shards` shards with `vnodes` virtual nodes each.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let mut points: Vec<(u64, u32)> = (0..shards.max(1))
            .flat_map(|s| {
                (0..vnodes.max(1)).map(move |v| (fnv1a(&format!("shard-{s}-vnode-{v}")), s as u32))
            })
            .collect();
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points }
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(h, _)| h < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }

    /// Number of virtual-node points on the ring.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Rings are never empty (shards and vnodes are clamped to ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Tuning for a [`ShardRouter`].
#[derive(Clone, Debug)]
pub struct ShardRouterConfig {
    /// Independent `Service` instances.
    pub shards: usize,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Per-shard service configuration (the router overrides each
    /// shard's `cache_label` with `service.shard.<i>.cache`).
    pub base: ServiceConfig,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        ShardRouterConfig {
            shards: 2,
            vnodes: 64,
            base: ServiceConfig::default(),
        }
    }
}

/// The routing state shared with reactors: ring + per-shard submitters.
struct RouterInner {
    ring: HashRing,
    submitters: Vec<Arc<dyn SubmitRequest>>,
}

impl RouterInner {
    /// The routing key: environment fingerprint for `Simplify` (batch
    /// density), canonical-form hash otherwise. Both are functions of
    /// the canonical form, so the cache partition is deterministic.
    fn routing_key(request: &Request) -> u64 {
        match request {
            Request::Simplify(r) => r.env.fingerprint(),
            other => fnv1a(&other.canonical()),
        }
    }
}

impl SubmitRequest for RouterInner {
    fn submit_with(&self, request: Request, reply: ReplyFn) {
        let shard = self.ring.route(Self::routing_key(&request));
        self.submitters[shard].submit_with(request, reply);
    }
}

/// A fleet of [`Service`] shards behind one consistent-hash front door.
pub struct ShardRouter {
    services: Vec<Service>,
    inner: Arc<RouterInner>,
    reactor: Option<ReactorHandle>,
}

impl ShardRouter {
    /// Start `config.shards` service instances, each with its own
    /// workers, queue, and cache partition.
    pub fn start(config: ShardRouterConfig) -> ShardRouter {
        let services: Vec<Service> = (0..config.shards.max(1))
            .map(|i| {
                Service::start(ServiceConfig {
                    cache_label: Some(format!("service.shard.{i}.cache")),
                    ..config.base.clone()
                })
            })
            .collect();
        let inner = Arc::new(RouterInner {
            ring: HashRing::new(services.len(), config.vnodes),
            submitters: services.iter().map(Service::submitter).collect(),
        });
        ShardRouter {
            services,
            inner,
            reactor: None,
        }
    }

    /// Which shard `request` routes to (stable for its canonical form).
    pub fn shard_of(&self, request: &Request) -> usize {
        self.inner.ring.route(RouterInner::routing_key(request))
    }

    /// Submit without waiting; the [`Ticket`] resolves to the response.
    pub fn submit(&self, request: Request) -> Ticket {
        let shard = self.shard_of(&request);
        self.services[shard].submit(request)
    }

    /// Route, submit, and block for the answer.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// This router as a reactor request sink.
    pub fn submitter(&self) -> Arc<dyn SubmitRequest> {
        Arc::clone(&self.inner) as Arc<dyn SubmitRequest>
    }

    /// Serve the whole fleet over one reactor front end on `addr`.
    pub fn listen_reactor(&mut self, addr: &str, config: ReactorConfig) -> io::Result<SocketAddr> {
        let handle = Reactor::start(addr, self.submitter(), config)?;
        let local = handle.local_addr();
        self.reactor = Some(handle);
        Ok(local)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.services.len()
    }

    /// Per-shard counter snapshots.
    pub fn stats(&self) -> Vec<ServiceStats> {
        self.services.iter().map(Service::stats).collect()
    }

    /// Fleet-wide totals (sum over shards).
    pub fn aggregate_stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in self.stats() {
            total.accepted += s.accepted;
            total.completed += s.completed;
            total.shed += s.shed;
            total.batched += s.batched;
            total.cache.hits += s.cache.hits;
            total.cache.misses += s.cache.misses;
            total.cache.evictions += s.cache.evictions;
        }
        total
    }

    /// Stop the reactor (if any), then drain and join every shard.
    /// Returns per-shard stats; the conservation law holds per shard and
    /// therefore in aggregate.
    pub fn shutdown(&mut self) -> Vec<ServiceStats> {
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        self.services.iter_mut().map(Service::shutdown).collect()
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::{EnvSpec, SimplifyRequest};
    use gp_core::json::Json;
    use gp_rewrite::{BinOp, Expr, Type};

    fn simplify_req(i: usize) -> Request {
        Request::Simplify(SimplifyRequest {
            expr: Expr::bin(
                BinOp::Mul,
                Expr::var(format!("x{i}"), Type::Int),
                Expr::int(1),
            ),
            env: EnvSpec::Standard,
        })
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(4, 64);
        assert_eq!(ring.len(), 4 * 64);
        let mut hit = [false; 4];
        for k in 0..10_000u64 {
            let s = ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(s, ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            hit[s] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 vnodes reach every shard");
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = HashRing::new(4, 64);
        let after = HashRing::new(5, 64);
        let keys = 10_000u64;
        let moved = (0..keys)
            .filter(|k| {
                let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                before.route(h) != after.route(h)
            })
            .count();
        // Ideal is 1/5 = 20%; allow slack for hash unevenness. A modulo
        // hash would move ~80%.
        assert!(
            moved < keys as usize * 2 / 5,
            "only a minority of keys move: {moved}/{keys}"
        );
    }

    #[test]
    fn same_env_simplify_requests_share_a_shard() {
        let router = ShardRouter::start(ShardRouterConfig {
            shards: 4,
            ..ShardRouterConfig::default()
        });
        let shard = router.shard_of(&simplify_req(0));
        for i in 1..16 {
            assert_eq!(
                router.shard_of(&simplify_req(i)),
                shard,
                "standard-env simplify requests all batch on one shard"
            );
        }
    }

    #[test]
    fn routing_is_stable_so_caches_partition() {
        let mut router = ShardRouter::start(ShardRouterConfig {
            shards: 3,
            ..ShardRouterConfig::default()
        });
        // A mixed stream: each distinct request repeats; the repeat must
        // hit the same shard's cache.
        let reqs: Vec<Request> = (0..6)
            .map(|i| {
                Request::Prove(crate::prove::ProveRequest {
                    theory: "monoid".into(),
                    instance: format!("i{i}"),
                    model: vec![("op".into(), format!("op{i}"))],
                })
            })
            .collect();
        let mut first = Vec::new();
        for r in &reqs {
            match router.call(r.clone()) {
                Response::Ok { payload } => first.push(payload),
                other => panic!("{other:?}"),
            }
        }
        for (r, f) in reqs.iter().zip(&first) {
            match router.call(r.clone()) {
                Response::Ok { payload } => {
                    assert_eq!(&payload, f, "repeat answered byte-identically")
                }
                other => panic!("{other:?}"),
            }
        }
        let stats = router.shutdown();
        let hits: u64 = stats.iter().map(|s| s.cache.hits).sum();
        assert_eq!(hits, reqs.len() as u64, "every repeat was a cache hit");
        let total: u64 = stats.iter().map(|s| s.accepted).sum();
        assert_eq!(total, 2 * reqs.len() as u64);
        for s in &stats {
            assert_eq!(s.in_flight(), 0, "each shard drained: {s:?}");
        }
    }

    #[test]
    fn router_answers_all_kinds_and_conserves() {
        let mut router = ShardRouter::start(ShardRouterConfig::default());
        for i in 0..8 {
            match router.call(simplify_req(i)) {
                Response::Ok { payload } => {
                    Json::parse(&payload).expect("valid JSON");
                }
                other => panic!("{other:?}"),
            }
        }
        let agg = {
            let stats = router.shutdown();
            stats.iter().fold(0i64, |acc, s| acc + s.in_flight())
        };
        assert_eq!(agg, 0);
    }
}
