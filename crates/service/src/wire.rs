//! Length-prefixed framing over byte streams, and the TCP client.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. Length prefixes (rather than newline delimiting) keep the
//! framing independent of payload content — programs shipped to `Lint`
//! contain newlines — and make the read loop allocation-exact. Frames
//! above [`MAX_FRAME`] are rejected before allocation, so a corrupt or
//! hostile length prefix cannot balloon memory.

use crate::request::{decode_response, encode_request, Request, Response};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Maximum frame payload (16 MiB) — far above any real request, far
/// below an allocation-of-garbage DoS.
pub const MAX_FRAME: usize = 16 << 20;

/// Write one frame and flush.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF (peer closed between frames);
/// an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

/// A blocking request/response client over one TCP connection.
///
/// Correlation ids are assigned per connection; `call` is synchronous
/// (one frame out, one frame in), which is all the closed-loop load
/// generator and smoke tests need.
pub struct TcpClient {
    stream: TcpStream,
    next_id: u64,
}

impl TcpClient {
    /// Connect to a listening service.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream, next_id: 1 })
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_request(id, req))
            .map_err(|e| format!("send: {e}"))?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("recv: connection closed")?;
        let (resp_id, resp) = decode_response(&frame)?;
        if resp_id != id {
            return Err(format!(
                "response id {resp_id} does not match request id {id}"
            ));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_including_empty_and_multibyte() {
        let payloads = ["", "{}", "newlines\nand\ttabs", "célérité 🚀 ∀x"];
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut cursor = &buf[..];
        for p in payloads {
            assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(p));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_truncated_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world").unwrap();
        let mut cursor = &buf[..buf.len() - 3];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        assert!(read_frame(&mut &buf[..]).is_err());
        let huge = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }
}
