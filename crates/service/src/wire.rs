//! Length-prefixed framing over byte streams, and the TCP client.
//!
//! The frame codec itself lives in [`gp_core::frame`] — a frame is a
//! 4-byte big-endian length followed by that many bytes of UTF-8 JSON —
//! so that `gp-distsim`'s socket runner can share the exact
//! implementation the service uses without a dependency cycle. This
//! module re-exports it under the service's historical paths and adds
//! the request/response [`TcpClient`].
//!
//! Two consumers share the format: the blocking path reads whole frames
//! with [`read_frame`], and the reactor feeds whatever bytes the kernel
//! handed it into a [`FrameDecoder`], which buffers partial frames across
//! reads — a frame split inside the length prefix, a 1-byte-at-a-time
//! trickle, and several pipelined frames in one read all decode to the
//! same frame sequence (property-tested in `tests/frame_codec.rs`).

pub use gp_core::frame::{encode_frame, read_frame, write_frame, FrameDecoder, MAX_FRAME};

use crate::request::{decode_response, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking request/response client over one TCP connection.
///
/// Correlation ids are assigned per connection. [`TcpClient::call`] is
/// synchronous (one frame out, one frame in); [`TcpClient::send`] /
/// [`TcpClient::recv`] split the two halves so a client can keep several
/// requests in flight on one connection — the pipelining the reactor
/// front end exists to serve. Responses come back in request order
/// (the server reorders out-of-order completions), so `recv` matches
/// sends first-in-first-out.
pub struct TcpClient {
    stream: TcpStream,
    next_id: u64,
    /// Ids sent but not yet received, oldest first.
    inflight: std::collections::VecDeque<u64>,
}

impl TcpClient {
    /// Connect to a listening service with no I/O timeouts (reads block
    /// until the server answers — the closed-loop load generator's mode).
    pub fn connect(addr: SocketAddr) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            next_id: 1,
            inflight: std::collections::VecDeque::new(),
        })
    }

    /// Connect with read/write timeouts: a server that stalls mid-frame
    /// (half-written length prefix, wedged worker) surfaces as a clean
    /// `timed out` error instead of hanging the client forever.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<TcpClient> {
        let client = TcpClient::connect(addr)?;
        client.set_timeouts(Some(timeout))?;
        Ok(client)
    }

    /// Set (or clear) both the read and write timeout.
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn io_error(stage: &str, e: io::Error) -> String {
        match e.kind() {
            // Platform-dependent spelling of a read/write timeout.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                format!("{stage}: timed out waiting for the server")
            }
            _ => format!("{stage}: {e}"),
        }
    }

    /// Send one request without waiting; returns its correlation id.
    pub fn send(&mut self, req: &Request) -> Result<u64, String> {
        self.send_traced(req, None)
    }

    /// Send one request carrying an optional wire trace id. A `None`
    /// trace produces a byte-identical frame to [`send`](Self::send).
    pub fn send_traced(&mut self, req: &Request, trace: Option<u64>) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &crate::request::encode_request_traced(id, req, trace),
        )
        .map_err(|e| Self::io_error("send", e))?;
        self.inflight.push_back(id);
        Ok(id)
    }

    /// Receive the next response in send order; errors if it does not
    /// correlate with the oldest in-flight request.
    pub fn recv(&mut self) -> Result<(u64, Response), String> {
        let expect = self
            .inflight
            .pop_front()
            .ok_or("recv: no request in flight")?;
        let frame = read_frame(&mut self.stream)
            .map_err(|e| Self::io_error("recv", e))?
            .ok_or("recv: connection closed")?;
        let (resp_id, resp) = decode_response(&frame)?;
        if resp_id != expect {
            return Err(format!(
                "response id {resp_id} does not match request id {expect}"
            ));
        }
        Ok((resp_id, resp))
    }

    /// Requests currently awaiting responses.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        self.send(req)?;
        Ok(self.recv()?.1)
    }

    /// [`call`](Self::call) with an optional wire trace id attached.
    pub fn call_traced(&mut self, req: &Request, trace: Option<u64>) -> Result<Response, String> {
        self.send_traced(req, trace)?;
        Ok(self.recv()?.1)
    }

    /// Send every request, then collect every response — `depth`-deep
    /// pipelining on one connection (one round trip of latency amortized
    /// over the whole slice instead of paid per request).
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, String> {
        for req in reqs {
            self.send(req)?;
        }
        (0..reqs.len()).map(|_| Ok(self.recv()?.1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_codec_round_trips() {
        // The codec's own unit tests live in gp_core::frame; this pins
        // the re-export so the historical `crate::wire` paths keep
        // resolving to the shared implementation.
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"id\":1}").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("{\"id\":1}")
        );
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some("{\"id\":1}"));
        assert!(dec.is_idle());
    }

    #[test]
    fn client_times_out_cleanly_on_a_half_written_length_prefix() {
        use crate::lint::LintRequest;
        use std::io::Write as _;
        use std::net::TcpListener;
        use std::time::Instant;

        // A stub server that writes half a length prefix and then stalls
        // forever — the nastiest spot to hang a client, because the
        // response is "in progress" but can never complete.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stub = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut drain = vec![0u8; 4096];
            use std::io::Read as _;
            let _ = conn.read(&mut drain); // swallow the request
            conn.write_all(&[0x00, 0x00]).unwrap(); // half a prefix
            conn // keep the socket open until the test ends
        });

        let mut client = TcpClient::connect_with_timeout(addr, Duration::from_millis(200)).unwrap();
        let req = Request::Lint(LintRequest {
            name: "p".into(),
            program: "container xs vector\n".into(),
        });
        let started = Instant::now();
        let err = client.call(&req).expect_err("must not hang");
        assert!(
            err.contains("timed out waiting for the server"),
            "clean timeout error, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must fire promptly, took {:?}",
            started.elapsed()
        );
        drop(client);
        drop(stub.join().unwrap());
    }
}
