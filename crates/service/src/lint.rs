//! The `Lint` request: STLlint as a service (`gp-checker` backing).
//!
//! A client ships a program in the checker's line-oriented source format
//! (`gp_checker::parse`); the handler parses it and runs the abstract
//! interpreter, returning every diagnostic with its severity, stable
//! category code, subject, and message. A source-level parse error is a
//! *handler* error (the request was well-formed JSON but not a checkable
//! program), reported through the error status; so is an analysis limit
//! (context-depth or fixpoint cap).
//!
//! Analysis runs through the interprocedural engine against the
//! process-wide [`gp_checker::SummaryCache`], so function summaries are
//! keyed by *content hash* and survive across requests: two requests
//! sharing a helper function — or re-submitting an edited program —
//! re-analyze only what changed. This is a semantic layer above the
//! service's byte-level response cache: that one only hits on identical
//! request bodies, this one hits per function body inside *different*
//! requests. SCCs at equal call-graph height run on the gp-parallel
//! global pool.

use gp_checker::analyze::Severity;
use gp_checker::CheckConfig;
use gp_core::json::Json;

/// Lint a program against library semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct LintRequest {
    /// Program name, echoed in diagnostics (defaults to `"request"`).
    pub name: String,
    /// Program source in the checker's text format.
    pub program: String,
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Suggestion => "suggestion",
    }
}

impl LintRequest {
    /// Canonical JSON form (field order fixed — cache keys depend on it).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("program", self.program.as_str())
    }

    /// Decode from the `req` object of a request envelope.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let program = j
            .get("program")
            .and_then(Json::as_str)
            .ok_or("lint: missing string field 'program'")?
            .to_string();
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("request")
            .to_string();
        Ok(LintRequest { name, program })
    }
}

/// Parse and analyze; the response payload lists every diagnostic.
pub fn handle(req: &LintRequest) -> Result<Json, String> {
    let program =
        gp_checker::parse::parse(&req.name, &req.program).map_err(|e| format!("parse: {e}"))?;
    let cfg = CheckConfig {
        parallel: true,
        ..CheckConfig::default()
    };
    let diags =
        gp_checker::analyze_program_cached(&program, &cfg).map_err(|e| format!("check: {e}"))?;
    let rows: Vec<Json> = diags
        .iter()
        .map(|d| {
            Json::obj()
                .field("severity", severity_str(d.severity))
                .field("code", d.code.as_str())
                .field("subject", d.subject.as_str())
                .field("message", d.message.as_str())
        })
        .collect();
    Ok(Json::obj()
        .field("program", req.name.as_str())
        .field("count", rows.len())
        .field("diagnostics", rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 erase-loop bug in checker source form.
    pub(crate) const FIG4: &str = "\
container students list
container failures list
iter it = begin students
while it != end {
    deref it
    if {
        deref it
        push_back failures
        erase students it
    } else {
        advance it
    }
}
";

    #[test]
    fn fig4_yields_the_singular_dereference_diagnostic() {
        let req = LintRequest {
            name: "fig4".into(),
            program: FIG4.into(),
        };
        let payload = handle(&req).unwrap();
        let diags = payload.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(!diags.is_empty());
        assert!(
            diags.iter().any(|d| {
                d.get("message")
                    .and_then(Json::as_str)
                    .is_some_and(|m| m.contains("singular iterator"))
            }),
            "expected the paper's diagnostic in {payload:?}"
        );
    }

    #[test]
    fn source_parse_errors_surface_as_handler_errors() {
        let req = LintRequest {
            name: "bad".into(),
            program: "container x vectorr\n".into(),
        };
        let err = handle(&req).unwrap_err();
        assert!(err.starts_with("parse:"), "got {err}");
    }

    /// Two different requests sharing a helper function: the second
    /// request's summaries come from the process-wide cache, and both
    /// responses are byte-identical to the cacheless oracle.
    #[test]
    fn summary_cache_hits_across_requests_without_changing_answers() {
        const HELPER: &str = "\
fn grow(C) {
    push_back C
}
";
        let prog_a = format!(
            "{HELPER}container V vector\npush_back V\niter I = begin V\ninvoke grow(V)\nderef I\n"
        );
        let prog_b = format!("{HELPER}container W vector\ninvoke grow(W)\nderef Z\n");
        let hits = gp_telemetry::counter("checker.summary.hit");
        let before = hits.get();
        let pay_a = handle(&LintRequest {
            name: "a".into(),
            program: prog_a.clone(),
        })
        .unwrap();
        let pay_b = handle(&LintRequest {
            name: "b".into(),
            program: prog_b.clone(),
        })
        .unwrap();
        assert!(
            hits.get() > before,
            "second request should hit the shared `grow` summary"
        );
        // Oracle: same analysis with no cache at all.
        for (name, src, pay) in [("a", &prog_a, &pay_a), ("b", &prog_b, &pay_b)] {
            let p = gp_checker::parse::parse(name, src).unwrap();
            let oracle =
                gp_checker::analyze_program(&p, &gp_checker::CheckConfig::default()).unwrap();
            let got = pay.get("diagnostics").and_then(Json::as_arr).unwrap();
            assert_eq!(got.len(), oracle.len(), "{name}: {pay:?}");
            for (row, d) in got.iter().zip(&oracle) {
                assert_eq!(
                    row.get("subject").and_then(Json::as_str),
                    Some(d.subject.as_str())
                );
                assert_eq!(
                    row.get("message").and_then(Json::as_str),
                    Some(d.message.as_str())
                );
            }
        }
    }

    /// Mutual recursion terminates (widening) and lints cleanly end to
    /// end — the service must never hang on a recursive program.
    #[test]
    fn recursive_programs_lint_through_the_service() {
        let req = LintRequest {
            name: "deep".into(),
            program: "\
fn f(C) {
    invoke g(C)
}
fn g(C) {
    invoke f(C)
}
container V vector
invoke f(V)
"
            .into(),
        };
        let payload = handle(&req).unwrap();
        assert_eq!(payload.get("count").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn request_json_round_trips() {
        let req = LintRequest {
            name: "fig4".into(),
            program: FIG4.into(),
        };
        let back = LintRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }
}
