//! The `Lint` request: STLlint as a service (`gp-checker` backing).
//!
//! A client ships a program in the checker's line-oriented source format
//! (`gp_checker::parse`); the handler parses it and runs the abstract
//! interpreter, returning every diagnostic with its severity, stable
//! category code, subject, and message. A source-level parse error is a
//! *handler* error (the request was well-formed JSON but not a checkable
//! program), reported through the error status.

use gp_checker::analyze::{analyze, Severity};
use gp_core::json::Json;

/// Lint a program against library semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct LintRequest {
    /// Program name, echoed in diagnostics (defaults to `"request"`).
    pub name: String,
    /// Program source in the checker's text format.
    pub program: String,
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Suggestion => "suggestion",
    }
}

impl LintRequest {
    /// Canonical JSON form (field order fixed — cache keys depend on it).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("program", self.program.as_str())
    }

    /// Decode from the `req` object of a request envelope.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let program = j
            .get("program")
            .and_then(Json::as_str)
            .ok_or("lint: missing string field 'program'")?
            .to_string();
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("request")
            .to_string();
        Ok(LintRequest { name, program })
    }
}

/// Parse and analyze; the response payload lists every diagnostic.
pub fn handle(req: &LintRequest) -> Result<Json, String> {
    let program =
        gp_checker::parse::parse(&req.name, &req.program).map_err(|e| format!("parse: {e}"))?;
    let diags = analyze(&program);
    let rows: Vec<Json> = diags
        .iter()
        .map(|d| {
            Json::obj()
                .field("severity", severity_str(d.severity))
                .field("code", d.code.as_str())
                .field("subject", d.subject.as_str())
                .field("message", d.message.as_str())
        })
        .collect();
    Ok(Json::obj()
        .field("program", req.name.as_str())
        .field("count", rows.len())
        .field("diagnostics", rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 erase-loop bug in checker source form.
    pub(crate) const FIG4: &str = "\
container students list
container failures list
iter it = begin students
while it != end {
    deref it
    if {
        deref it
        push_back failures
        erase students it
    } else {
        advance it
    }
}
";

    #[test]
    fn fig4_yields_the_singular_dereference_diagnostic() {
        let req = LintRequest {
            name: "fig4".into(),
            program: FIG4.into(),
        };
        let payload = handle(&req).unwrap();
        let diags = payload.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(!diags.is_empty());
        assert!(
            diags.iter().any(|d| {
                d.get("message")
                    .and_then(Json::as_str)
                    .is_some_and(|m| m.contains("singular iterator"))
            }),
            "expected the paper's diagnostic in {payload:?}"
        );
    }

    #[test]
    fn source_parse_errors_surface_as_handler_errors() {
        let req = LintRequest {
            name: "bad".into(),
            program: "container x vectorr\n".into(),
        };
        let err = handle(&req).unwrap_err();
        assert!(err.starts_with("parse:"), "got {err}");
    }

    #[test]
    fn request_json_round_trips() {
        let req = LintRequest {
            name: "fig4".into(),
            program: FIG4.into(),
        };
        let back = LintRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }
}
