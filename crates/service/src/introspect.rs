//! The live introspection plane: `stats` and `trace` wire requests.
//!
//! A running cluster must be inspectable without restart. Two request
//! kinds ride the existing envelope:
//!
//! * `stats` — `{"prefix": "..."}` — a snapshot of the process-wide
//!   telemetry registry (optionally filtered by metric-name prefix), with
//!   p50/p95/p99 derived from each histogram's log2 buckets via
//!   [`gp_telemetry::HistSnapshot::percentile`].
//! * `trace` — `{"id": N}` — the assembled span tree of a completed
//!   sampled trace, fetched from the serving shard's bounded
//!   [`gp_telemetry::TraceStore`] (a router probes every shard's store).
//!
//! Both are answered synchronously at admission — they never enter the
//! work queue, are never cached, and work identically on the blocking
//! and reactor front ends because both funnel through the same
//! submission path.

use gp_core::json::Json;

/// The `stats` request: export the telemetry registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsRequest {
    /// Restrict the export to metrics whose name starts with this prefix
    /// (empty = everything).
    pub prefix: String,
}

impl StatsRequest {
    /// Canonical `req` object.
    pub fn to_json(&self) -> Json {
        Json::obj().field("prefix", self.prefix.as_str())
    }

    /// Decode from a `req` object (a missing prefix means "everything").
    pub fn from_json(j: &Json) -> Result<StatsRequest, String> {
        Ok(StatsRequest {
            prefix: j
                .get("prefix")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }
}

/// The `trace` request: fetch one assembled trace tree by id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceQuery {
    /// The trace id the client sent in its original request's `trace`
    /// field.
    pub id: u64,
}

impl TraceQuery {
    /// Canonical `req` object.
    pub fn to_json(&self) -> Json {
        Json::obj().field("id", self.id)
    }

    /// Decode from a `req` object.
    pub fn from_json(j: &Json) -> Result<TraceQuery, String> {
        Ok(TraceQuery {
            id: j
                .get("id")
                .and_then(Json::as_f64)
                .ok_or("trace: missing numeric field 'id'")? as u64,
        })
    }
}

/// Render the `stats` payload: the registry snapshot (exact-integer JSON
/// from [`gp_telemetry::Snapshot::to_json`]) plus derived percentiles for
/// every non-empty histogram:
/// `{"enabled":bool,"sampling":N,"metrics":{...},"percentiles":
/// {"<hist>":{"p50":N,"p95":N,"p99":N},..}}`.
pub fn stats_payload(prefix: &str) -> String {
    let snap = gp_telemetry::snapshot();
    let snap = if prefix.is_empty() {
        snap
    } else {
        snap.filter(prefix)
    };
    let mut out = format!(
        "{{\"enabled\":{},\"sampling\":{},\"metrics\":{},\"percentiles\":{{",
        gp_telemetry::enabled(),
        gp_telemetry::trace::sampling(),
        snap.to_json()
    );
    let mut first = true;
    for (name, hist) in &snap.histograms {
        if hist.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        // Metric names are registry-controlled identifiers (no quotes or
        // control characters), so they embed directly.
        out.push_str(&format!(
            "\"{}\":{{\"p50\":{},\"p95\":{},\"p99\":{}}}",
            name,
            hist.percentile(0.50),
            hist.percentile(0.95),
            hist.percentile(0.99)
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_request_round_trips_and_defaults_prefix() {
        let r = StatsRequest {
            prefix: "service.".into(),
        };
        let back = StatsRequest::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let empty = StatsRequest::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(empty.prefix, "");
    }

    #[test]
    fn trace_query_round_trips_and_requires_id() {
        let q = TraceQuery { id: 42 };
        assert_eq!(TraceQuery::from_json(&q.to_json()).unwrap(), q);
        assert!(TraceQuery::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn stats_payload_is_valid_json_with_percentiles() {
        gp_telemetry::histogram("introspect.test.lat.ns").record(1000);
        gp_telemetry::histogram("introspect.test.lat.ns").record(2000);
        let payload = stats_payload("introspect.test.");
        let parsed = Json::parse(&payload).expect("stats payload parses");
        let p50 = parsed
            .get("percentiles")
            .and_then(|p| p.get("introspect.test.lat.ns"))
            .and_then(|h| h.get("p50"))
            .and_then(Json::as_f64)
            .expect("p50 present");
        assert!((500.0..=4000.0).contains(&p50), "p50 {p50} within 2x");
        assert!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("histograms"))
                .is_some(),
            "snapshot spliced under 'metrics'"
        );
        // Prefix filtering drops unrelated metrics.
        assert!(payload.contains("introspect.test.lat.ns"));
        assert!(!payload.contains("\"pool."));
    }
}
