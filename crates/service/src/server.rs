//! The serving core: admission control, worker pool, micro-batching,
//! response cache, TCP front end, and graceful shutdown.
//!
//! A request's life: `submit` stamps it, counts it as **accepted**, and
//! either answers from the cache (**completed**), sheds it when the
//! bounded queue is full (**shed**, a retriable `Overloaded` — the
//! load-shedding design choice documented in DESIGN.md), or queues it.
//! Workers pop jobs, pull queued `Simplify` requests with the same
//! environment fingerprint into a micro-batch (one `Simplifier` build
//! amortized over the batch), execute on the `gp-parallel` global pool,
//! and reply through the job's channel.
//!
//! The conservation law `accepted == completed + shed + in_flight` holds
//! at every instant, and `in_flight == 0` after [`Service::shutdown`]
//! drains — provable from one telemetry snapshot delta, which is exactly
//! how `exp_service --smoke` and the coherence proptests check it.

use crate::cache::{CacheStats, ResponseCache};
use crate::queue::BoundedQueue;
use crate::reactor::{Reactor, ReactorConfig, ReactorHandle, ReplyFn, SubmitRequest};
use crate::request::{decode_request_traced, encode_response, fnv1a, Request, Response};
use crate::simplify::SimplifyRequest;
use crate::wire::{read_frame, write_frame};
use gp_telemetry::flight::{self, FlightKind};
use gp_telemetry::trace::{SpanId, TraceContext, TraceHandle, TraceId, TraceSpan, TraceStore};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for one [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Whether the response cache answers repeat requests.
    pub cache_enabled: bool,
    /// Mutex stripes in the cache.
    pub cache_shards: usize,
    /// Total cache entries across stripes.
    pub cache_capacity: usize,
    /// Most `Simplify` requests merged into one micro-batch.
    pub batch_max: usize,
    /// Concurrent connections the **blocking** TCP path serves; one
    /// beyond this is shed at accept with a retriable `Overloaded` frame
    /// (the reactor path has its own cap in [`ReactorConfig`]).
    pub max_connections: usize,
    /// Telemetry prefix for the response cache's counters. `None` means
    /// the process-wide `service.cache`; a shard router labels each
    /// shard's cache `service.shard.<i>.cache` so partitioning is
    /// observable per shard.
    pub cache_label: Option<String>,
    /// Completed traces this shard's bounded trace store retains for
    /// `trace` queries (oldest evicted beyond it).
    pub trace_capacity: usize,
    /// Artificial per-batch handler delay — the load generator's knob for
    /// making overload reproducible; `None` in production paths.
    pub handler_delay: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            cache_enabled: true,
            cache_shards: 8,
            cache_capacity: 512,
            batch_max: 8,
            max_connections: 1024,
            cache_label: None,
            trace_capacity: 256,
            handler_delay: None,
        }
    }
}

/// Counter snapshot for one service instance (telemetry counters
/// aggregate the same events process-wide).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests that entered `submit` (sheds included).
    pub accepted: u64,
    /// Requests answered with `Ok`/`Error` (cache hits included).
    pub completed: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that joined another request's micro-batch.
    pub batched: u64,
    /// Cache counters (all zero when the cache is disabled).
    pub cache: CacheStats,
}

impl ServiceStats {
    /// `accepted - completed - shed`: zero at quiescence, and provably
    /// zero after a drained shutdown.
    pub fn in_flight(&self) -> i64 {
        self.accepted as i64 - self.completed as i64 - self.shed as i64
    }
}

/// One queued request plus everything needed to answer it. The reply is
/// a one-shot callback: the blocking paths hand it an `mpsc` sender (a
/// [`Ticket`] waits on the other end), the reactor hands it a completion
/// push + wakeup — the serving core cannot tell the difference.
struct Job {
    request: Request,
    canonical: String,
    hash: u64,
    /// Environment fingerprint for `Simplify` (batching key).
    batch_key: Option<u64>,
    reply: ReplyFn,
    enqueued: Instant,
    /// Trace state riding with a sampled request (None = untraced).
    trace: Option<JobTrace>,
}

/// The per-job slice of a sampled trace: the shared context, the open
/// `queue` span (dropped when a worker picks the job up, so it measures
/// queued wait), and that span's id for parenting the `worker` span.
struct JobTrace {
    ctx: TraceContext,
    queue_id: SpanId,
    queue_span: Option<TraceSpan>,
}

/// A pending response; `wait` blocks until the worker replies.
pub struct Ticket {
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Block for the response. A service that dropped the job without
    /// replying (cannot happen through public paths) reads as an error.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Response::Error {
            message: "service dropped the request without replying".into(),
        })
    }
}

struct ServiceInner {
    config: ServiceConfig,
    queue: BoundedQueue<Job>,
    cache: Option<ResponseCache>,
    trace_store: Arc<TraceStore>,
    accepting: AtomicBool,
    stop_listener: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    batched: AtomicU64,
}

fn span_name(kind: &str) -> &'static str {
    match kind {
        "lint" => "service.lint",
        "simplify" => "service.simplify",
        "optimize" => "service.optimize",
        "prove" => "service.prove",
        _ => "service.select",
    }
}

/// The engine-stage trace span name for a request kind.
fn engine_span_name(kind: &str) -> &'static str {
    match kind {
        "lint" => "engine.lint",
        "simplify" => "engine.simplify",
        "optimize" => "engine.optimize",
        "prove" => "engine.prove",
        _ => "engine.select",
    }
}

/// Compact request-kind code for flight-recorder payload words.
fn kind_code(kind: &str) -> u64 {
    match kind {
        "lint" => 1,
        "simplify" => 2,
        "prove" => 3,
        "select" => 4,
        "stats" => 5,
        "trace" => 6,
        "optimize" => 7,
        _ => 0,
    }
}

impl ServiceInner {
    fn submit(self: &Arc<Self>, request: Request) -> Ticket {
        self.submit_traced(request, None)
    }

    fn submit_traced(self: &Arc<Self>, request: Request, trace: Option<TraceHandle>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        self.submit_traced_callback(
            request,
            trace,
            Box::new(move |resp| {
                let _ = tx.send(resp);
            }),
        );
        Ticket { rx }
    }

    /// Answer an introspection request (`stats`/`trace`) synchronously at
    /// admission: never queued, never cached, identical on every front
    /// end because all of them funnel through the submission path.
    fn answer_introspection(&self, request: &Request) -> Option<Response> {
        match request {
            Request::Stats(r) => Some(Response::Ok {
                payload: crate::introspect::stats_payload(&r.prefix),
            }),
            Request::Trace(q) => Some(match self.trace_store.get(q.id) {
                Some(spans) => Response::Ok {
                    payload: gp_telemetry::trace::render_tree(TraceId(q.id), &spans),
                },
                None => Response::Error {
                    message: format!(
                        "trace {} not found (unsampled, still in flight, or evicted)",
                        q.id
                    ),
                },
            }),
            _ => None,
        }
    }

    /// The one submission path: admission control, cache, queue. `reply`
    /// is invoked exactly once — synchronously for sheds, cache hits, and
    /// introspection, from a worker otherwise.
    fn submit_traced_callback(
        &self,
        request: Request,
        mut trace: Option<TraceHandle>,
        reply: ReplyFn,
    ) {
        let kind = request.kind();
        self.accepted.fetch_add(1, Ordering::Relaxed);
        gp_telemetry::counter("service.accepted").incr();
        gp_telemetry::counter(&format!("service.req.{kind}")).incr();

        // Introspection answers even while draining — the whole point is
        // inspecting a server that is misbehaving.
        if let Some(response) = self.answer_introspection(&request) {
            drop(trace);
            self.complete_one(kind, Instant::now());
            reply(response);
            return;
        }

        if !self.accepting.load(Ordering::Acquire) {
            drop(trace);
            self.shed_one(kind, reply);
            return;
        }
        let canonical = request.canonical();
        let hash = fnv1a(&canonical);
        if let Some(cache) = &self.cache {
            if let Some(payload) = cache.get(hash, &canonical) {
                flight::record(FlightKind::CacheHit, kind_code(kind), hash & 0xffff_ffff);
                if let Some(t) = trace.take() {
                    // The hit never reaches a queue; a lone `cache` span
                    // under the caller's parent is the whole story. Drop
                    // the handle before replying so the trace publishes
                    // strictly before the response can be observed.
                    t.ctx.set_sink(&self.trace_store);
                    t.span("cache").finish();
                }
                self.complete_one(kind, Instant::now());
                reply(Response::Ok { payload });
                return;
            }
            flight::record(FlightKind::CacheMiss, kind_code(kind), hash & 0xffff_ffff);
        }
        let batch_key = match &request {
            Request::Simplify(r) => Some(r.env.fingerprint()),
            _ => None,
        };
        let job_trace = trace.take().map(|t| {
            // The executing shard owns the completed trace (first claim
            // wins, so a failover retry landing elsewhere re-claims).
            t.ctx.set_sink(&self.trace_store);
            let queue_span = t.span("queue");
            JobTrace {
                queue_id: queue_span.id(),
                ctx: t.ctx,
                queue_span: Some(queue_span),
            }
        });
        let job = Job {
            request,
            canonical,
            hash,
            batch_key,
            reply,
            enqueued: Instant::now(),
            trace: job_trace,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                gp_telemetry::gauge("service.queue.depth").add(1);
                flight::record(
                    FlightKind::Enqueue,
                    kind_code(kind),
                    self.queue.len() as u64,
                );
            }
            Err(mut job) => {
                // Drop the trace (publishing the partial trace: the queue
                // span never opened past this point) before replying.
                drop(job.trace.take());
                self.shed_one(kind, job.reply);
            }
        }
    }

    fn shed_one(&self, kind: &str, reply: ReplyFn) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        gp_telemetry::counter("service.shed").incr();
        flight::record(FlightKind::Shed, kind_code(kind), 0);
        reply(Response::Overloaded);
    }

    fn complete_one(&self, kind: &str, enqueued: Instant) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        gp_telemetry::counter("service.completed").incr();
        gp_telemetry::histogram(&format!("service.latency.{kind}.ns"))
            .record(enqueued.elapsed().as_nanos() as u64);
    }

    /// Answer one job from a handler result: render, cache, count, reply.
    fn finish(&self, mut job: Job, result: Result<gp_core::json::Json, String>) {
        let response = match result {
            Ok(json) => {
                let payload = json.render();
                if let Some(cache) = &self.cache {
                    cache.put(job.hash, &job.canonical, &payload);
                }
                Response::Ok { payload }
            }
            Err(message) => Response::Error { message },
        };
        self.complete_one(job.request.kind(), job.enqueued);
        // Drop the job's trace handle before replying: if these are the
        // last live clones the trace publishes here, strictly before the
        // response can reach a client — so a `trace` query issued after
        // the response always finds the completed trace.
        drop(job.trace.take());
        (job.reply)(response);
    }

    /// Execute a popped batch (always non-empty; len > 1 only for
    /// `Simplify` jobs sharing an environment fingerprint).
    fn execute_batch(&self, mut batch: Vec<Job>) {
        if let Some(delay) = self.config.handler_delay {
            thread::sleep(delay);
        }
        // For every traced job: close its `queue` span (measuring queued
        // wait) and open `worker` → `engine.<kind>` spans here, on the
        // pool thread — the explicit parent ids are what keep the tree
        // intact across the hop from the submitting thread. Batched jobs
        // each get their own span pair over the shared handler run.
        let mut stage_spans: Vec<(TraceSpan, TraceSpan)> = Vec::new();
        for job in &mut batch {
            if let Some(t) = &mut job.trace {
                t.queue_span.take();
                let worker = t.ctx.span("worker", Some(t.queue_id));
                let engine = t
                    .ctx
                    .span(engine_span_name(job.request.kind()), Some(worker.id()));
                stage_spans.push((worker, engine));
            }
        }
        if batch.len() > 1 {
            let reqs: Vec<SimplifyRequest> = batch
                .iter()
                .map(|j| match &j.request {
                    Request::Simplify(r) => r.clone(),
                    _ => unreachable!("only Simplify jobs carry a batch key"),
                })
                .collect();
            let _span = gp_telemetry::span("service.simplify");
            let results = catch_unwind(AssertUnwindSafe(|| crate::simplify::handle_batch(&reqs)));
            drop(stage_spans); // engine/worker spans end with the handler
            match results {
                Ok(results) => {
                    for (job, result) in batch.drain(..).zip(results) {
                        self.finish(job, result);
                    }
                }
                Err(_) => {
                    for job in batch.drain(..) {
                        self.finish(job, Err("handler panicked".into()));
                    }
                }
            }
        } else {
            let job = batch.pop().expect("batch is non-empty");
            let _span = gp_telemetry::span(span_name(job.request.kind()));
            let result = catch_unwind(AssertUnwindSafe(|| job.request.handle()))
                .unwrap_or_else(|_| Err("handler panicked".into()));
            drop(stage_spans); // engine/worker spans end with the handler
            self.finish(job, result);
        }
    }

    /// Worker loop: pop, gather batch-mates, run on the global pool.
    fn worker_loop(self: Arc<Self>) {
        while let Some(job) = self.queue.pop() {
            gp_telemetry::gauge("service.queue.depth").sub(1);
            let mut batch = vec![job];
            if let Some(key) = batch[0].batch_key {
                while batch.len() < self.config.batch_max {
                    match self.queue.try_take_matching(|j| j.batch_key == Some(key)) {
                        Some(mate) => {
                            gp_telemetry::gauge("service.queue.depth").sub(1);
                            self.batched.fetch_add(1, Ordering::Relaxed);
                            gp_telemetry::counter("service.batch.merged").incr();
                            batch.push(mate);
                        }
                        None => break,
                    }
                }
            }
            for job in &batch {
                flight::record(
                    FlightKind::Dequeue,
                    kind_code(job.request.kind()),
                    batch.len() as u64,
                );
            }
            // Execute on the gp-parallel global pool; the worker blocks
            // until its batch is done, so worker count bounds service
            // concurrency and shutdown-join implies no in-flight work.
            let (done_tx, done_rx) = mpsc::channel();
            let inner = Arc::clone(&self);
            gp_parallel::pool::global().execute(move || {
                inner.execute_batch(batch);
                let _ = done_tx.send(());
            });
            let _ = done_rx.recv();
        }
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            cache: self
                .cache
                .as_ref()
                .map(ResponseCache::stats)
                .unwrap_or_default(),
        }
    }
}

impl SubmitRequest for ServiceInner {
    fn submit_traced(&self, request: Request, trace: Option<TraceHandle>, reply: ReplyFn) {
        self.submit_traced_callback(request, trace, reply);
    }
}

/// The concept-query server. Construct with [`Service::start`], query
/// in-process with [`Service::call`] (or [`Service::submit`] for
/// pipelining), optionally expose over TCP with [`Service::listen`], and
/// stop with [`Service::shutdown`].
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
    listen_thread: Option<JoinHandle<()>>,
    listen_addr: Option<SocketAddr>,
    reactor: Option<ReactorHandle>,
}

impl Service {
    /// Start workers and (optionally) the cache.
    pub fn start(config: ServiceConfig) -> Service {
        let cache = config.cache_enabled.then(|| {
            ResponseCache::with_label(
                config.cache_shards,
                config.cache_capacity,
                config.cache_label.as_deref().unwrap_or("service.cache"),
            )
        });
        let inner = Arc::new(ServiceInner {
            queue: BoundedQueue::new(config.queue_depth),
            cache,
            trace_store: TraceStore::new(config.trace_capacity),
            accepting: AtomicBool::new(true),
            stop_listener: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || inner.worker_loop())
            })
            .collect();
        Service {
            inner,
            workers,
            listen_thread: None,
            listen_addr: None,
            reactor: None,
        }
    }

    /// This service as a request sink for a [`Reactor`] or shard router.
    pub fn submitter(&self) -> Arc<dyn SubmitRequest> {
        Arc::clone(&self.inner) as Arc<dyn SubmitRequest>
    }

    /// Submit without waiting; the [`Ticket`] resolves to the response.
    pub fn submit(&self, request: Request) -> Ticket {
        self.inner.submit(request)
    }

    /// Submit carrying a trace handle: the service opens `queue` →
    /// `worker` → `engine.<kind>` spans under the handle's parent and
    /// publishes the completed trace to this shard's store. `None`
    /// behaves exactly like [`Service::submit`].
    pub fn submit_traced(&self, request: Request, trace: Option<TraceHandle>) -> Ticket {
        self.inner.submit_traced(request, trace)
    }

    /// This shard's bounded store of completed traces (what `trace`
    /// queries read).
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.inner.trace_store)
    }

    /// The in-process client: submit and block for the answer — same
    /// admission control, cache, and batching as the socket path, minus
    /// the socket.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// Serve TCP on `addr` (use port 0 for an ephemeral port) with the
    /// legacy blocking thread-per-connection path; returns the bound
    /// address. Connections beyond `max_connections` are shed at accept
    /// with one retriable `Overloaded` frame — a connection flood turns
    /// into explicit sheds instead of unbounded thread spawn.
    pub fn listen(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::clone(&self.inner);
        let open = Arc::new(AtomicUsize::new(0));
        self.listen_thread = Some(thread::spawn(move || {
            for stream in listener.incoming() {
                if inner.stop_listener.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    if open.load(Ordering::Acquire) >= inner.config.max_connections {
                        gp_telemetry::counter("service.conn.shed").incr();
                        let _ =
                            write_frame(&mut stream, &encode_response(0, &Response::Overloaded));
                        continue;
                    }
                    open.fetch_add(1, Ordering::AcqRel);
                    gp_telemetry::gauge("service.conn.open").add(1);
                    let inner = Arc::clone(&inner);
                    let open = Arc::clone(&open);
                    thread::spawn(move || {
                        serve_connection(&inner, stream);
                        open.fetch_sub(1, Ordering::AcqRel);
                        gp_telemetry::gauge("service.conn.open").sub(1);
                    });
                }
            }
        }));
        self.listen_addr = Some(local);
        Ok(local)
    }

    /// Serve TCP on `addr` with the readiness-polled reactor front end
    /// (Linux): one event-loop thread multiplexing every connection,
    /// incremental frame decoding, request pipelining with in-order
    /// response delivery, and per-connection write backpressure. The
    /// serving core behind it — admission control, cache, batching,
    /// workers — is exactly the one [`Service::listen`] uses, so
    /// responses are byte-identical between the two paths.
    pub fn listen_reactor(&mut self, addr: &str, config: ReactorConfig) -> io::Result<SocketAddr> {
        let handle = Reactor::start(addr, self.submitter(), config)?;
        let local = handle.local_addr();
        self.reactor = Some(handle);
        Ok(local)
    }

    /// This instance's counters (telemetry carries the same events
    /// process-wide).
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Graceful shutdown: refuse new work, stop the listener, drain every
    /// admitted job, join the workers. On return `in_flight == 0` and the
    /// conservation law has collapsed to `accepted == completed + shed`.
    pub fn shutdown(&mut self) -> ServiceStats {
        if self.inner.accepting.swap(false, Ordering::Release) {
            // First shutdown call: the black box records that a drain
            // began, with the admission count so far.
            flight::record(
                FlightKind::Drain,
                self.inner.accepted.load(Ordering::Relaxed),
                self.inner.queue.len() as u64,
            );
        }
        self.inner.stop_listener.store(true, Ordering::Release);
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        if let Some(addr) = self.listen_addr.take() {
            // Unblock the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(addr);
        }
        if let Some(t) = self.listen_thread.take() {
            let _ = t.join();
        }
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.stats()
    }

    /// [`Service::shutdown`], then dump the process-wide flight recorder
    /// — the drained server's black box, with the `drain` event and the
    /// enqueue/dequeue history leading up to it.
    pub fn shutdown_with_dump(&mut self) -> (ServiceStats, String) {
        let stats = self.shutdown();
        (stats, flight::dump_json())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: frames in, frames out, until the peer hangs up. A
/// frame that is not a well-formed request gets an error response with
/// correlation id 0 (the decoder could not recover the client's id).
fn serve_connection(inner: &Arc<ServiceInner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            _ => return,
        };
        let reply = match decode_request_traced(&frame) {
            Ok((id, request, wire_trace)) => {
                // Tracing is strictly opt-in: only a frame carrying a
                // `trace` field can be sampled, and an unsampled or
                // untraced request takes the identical path.
                let sampled = wire_trace.and_then(gp_telemetry::trace::sample);
                let (handle, root) = match sampled {
                    Some(ctx) => {
                        let root = ctx.span("server", None);
                        (
                            Some(TraceHandle {
                                ctx: ctx.clone(),
                                parent: Some(root.id()),
                            }),
                            Some(root),
                        )
                    }
                    None => (None, None),
                };
                let response = inner.submit_traced(request, handle).wait();
                // Close the root span before writing the response so the
                // assembled trace is queryable the moment the client
                // reads its answer.
                drop(root);
                encode_response(id, &response)
            }
            Err(e) => encode_response(0, &Response::Error { message: e }),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRequest;
    use crate::prove::ProveRequest;
    use crate::select::SelectRequest;
    use crate::simplify::{EnvSpec, SimplifyRequest};
    use crate::wire::TcpClient;
    use gp_core::json::Json;
    use gp_rewrite::{BinOp, Expr, Type};

    fn sample(kind: usize, salt: usize) -> Request {
        match kind {
            0 => Request::Lint(LintRequest {
                name: format!("p{salt}"),
                program: "container xs vector\niter it = begin xs\nderef it\n".into(),
            }),
            1 => Request::Simplify(SimplifyRequest {
                expr: Expr::bin(
                    BinOp::Mul,
                    Expr::var(format!("x{salt}"), Type::Int),
                    Expr::int(1),
                ),
                env: EnvSpec::Standard,
            }),
            2 => Request::Prove(ProveRequest {
                theory: "monoid".into(),
                instance: format!("i{salt}"),
                model: vec![("op".into(), format!("op{salt}"))],
            }),
            _ => Request::Select(
                SelectRequest::from_json(
                    &Json::parse(
                        r#"{"problem":"broadcast","topology":"tree","timing":"asynchronous"}"#,
                    )
                    .unwrap(),
                )
                .unwrap(),
            ),
        }
    }

    #[test]
    fn all_four_kinds_answer_in_process_and_conservation_holds() {
        let mut svc = Service::start(ServiceConfig::default());
        for kind in 0..4 {
            match svc.call(sample(kind, kind)) {
                Response::Ok { payload } => {
                    Json::parse(&payload).expect("payload is valid JSON");
                }
                other => panic!("kind {kind} answered {other:?}"),
            }
        }
        let stats = svc.shutdown();
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_bytes() {
        let mut svc = Service::start(ServiceConfig::default());
        let req = sample(2, 0);
        let first = match svc.call(req.clone()) {
            Response::Ok { payload } => payload,
            other => panic!("{other:?}"),
        };
        let second = match svc.call(req) {
            Response::Ok { payload } => payload,
            other => panic!("{other:?}"),
        };
        assert_eq!(first, second, "cached response must be byte-identical");
        let stats = svc.shutdown();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.completed, 2, "a cache hit still completes");
    }

    #[test]
    fn handler_errors_are_responses_not_cache_entries() {
        let mut svc = Service::start(ServiceConfig::default());
        let bad = Request::Lint(LintRequest {
            name: "bad".into(),
            program: "container x vectorr\n".into(),
        });
        for _ in 0..2 {
            match svc.call(bad.clone()) {
                Response::Error { message } => assert!(message.starts_with("parse:")),
                other => panic!("{other:?}"),
            }
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache.hits, 0, "errors are never cached");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn overload_sheds_with_overloaded_not_collapse() {
        let mut svc = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 1,
            cache_enabled: false,
            handler_delay: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        });
        // Distinct lint requests (no batching) flood a 1-deep queue.
        let tickets: Vec<Ticket> = (0..32).map(|i| svc.submit(sample(0, i))).collect();
        let responses: Vec<Response> = tickets.into_iter().map(Ticket::wait).collect();
        let sheds = responses
            .iter()
            .filter(|r| matches!(r, Response::Overloaded))
            .count();
        let served = responses
            .iter()
            .filter(|r| matches!(r, Response::Ok { .. }))
            .count();
        assert!(sheds > 0, "a 1-deep queue under flood must shed");
        assert!(served > 0, "shedding must not starve admitted work");
        let stats = svc.shutdown();
        assert_eq!(stats.accepted, 32);
        assert_eq!(stats.shed as usize, sheds);
        assert_eq!(stats.completed as usize, served);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn queued_simplify_requests_merge_into_micro_batches() {
        let mut svc = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 64,
            cache_enabled: false,
            batch_max: 8,
            handler_delay: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..16).map(|i| svc.submit(sample(1, i))).collect();
        for t in tickets {
            match t.wait() {
                Response::Ok { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.batched > 0,
            "a busy single worker must batch same-env simplify requests: {stats:?}"
        );
    }

    #[test]
    fn shutdown_drains_admitted_work_before_returning() {
        let mut svc = Service::start(ServiceConfig {
            workers: 2,
            queue_depth: 64,
            cache_enabled: false,
            handler_delay: Some(Duration::from_millis(5)),
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..12).map(|i| svc.submit(sample(i % 4, i))).collect();
        let stats = svc.shutdown();
        assert_eq!(stats.in_flight(), 0, "shutdown drained: {stats:?}");
        for t in tickets {
            assert!(
                matches!(t.wait(), Response::Ok { .. }),
                "admitted work is finished, not dropped"
            );
        }
    }

    #[test]
    fn tcp_round_trip_and_malformed_frames() {
        let mut svc = Service::start(ServiceConfig::default());
        let addr = svc.listen("127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        for kind in 0..4 {
            match client.call(&sample(kind, kind)).unwrap() {
                Response::Ok { payload } => {
                    Json::parse(&payload).expect("payload is valid JSON");
                }
                other => panic!("kind {kind} answered {other:?}"),
            }
        }
        // A malformed frame gets an error reply (id 0), not a hangup.
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, "this is not a request").unwrap();
        let reply = read_frame(&mut raw).unwrap().unwrap();
        let j = Json::parse(&reply).unwrap();
        assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
        drop(raw);
        let stats = svc.shutdown();
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn blocking_listener_sheds_connections_beyond_the_cap() {
        let mut svc = Service::start(ServiceConfig {
            max_connections: 2,
            ..ServiceConfig::default()
        });
        let addr = svc.listen("127.0.0.1:0").unwrap();
        // Two connections get in and answer; hold them open.
        let mut a = TcpClient::connect(addr).unwrap();
        let mut b = TcpClient::connect(addr).unwrap();
        assert!(matches!(a.call(&sample(0, 0)), Ok(Response::Ok { .. })));
        assert!(matches!(b.call(&sample(0, 1)), Ok(Response::Ok { .. })));
        // The third is shed with one retriable Overloaded frame, then EOF.
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = read_frame(&mut raw).unwrap().expect("shed frame");
        let (id, resp) = crate::request::decode_response(&frame).unwrap();
        assert_eq!(id, 0);
        assert_eq!(resp, Response::Overloaded);
        assert_eq!(read_frame(&mut raw).unwrap(), None, "then EOF");
        // Freeing a slot lets a retry in.
        drop(a);
        std::thread::sleep(Duration::from_millis(100));
        let mut retry = TcpClient::connect(addr).unwrap();
        match retry.call(&sample(0, 2)) {
            Ok(Response::Ok { .. }) => {}
            other => panic!("retry after a slot freed should serve: {other:?}"),
        }
        drop(b);
        drop(retry);
        let stats = svc.shutdown();
        assert_eq!(stats.in_flight(), 0);
    }
}
