//! A bounded MPMC queue with admission control — the service's
//! load-shedding valve.
//!
//! `try_push` never blocks: when the queue is at capacity the caller gets
//! the item back and maps it to an `Overloaded` response, so overload
//! degrades into explicit, retriable sheds instead of unbounded memory
//! growth and collapsing latency. `pop` blocks (workers park on a
//! condvar) and keeps draining after `close()` until the queue is empty —
//! graceful shutdown finishes admitted work, it only refuses new work.
//!
//! `try_take_matching` lets a worker that just popped a request pull
//! queued *compatible* requests (same environment fingerprint) into a
//! micro-batch without blocking on more arrivals.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
            }),
            nonempty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Non-blocking admit. `Err(item)` hands the item back when the queue
    /// is full or closed — the caller sheds it.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.items.len() >= self.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocking take. `None` only after `close()` once every admitted
    /// item has been drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.nonempty.wait(s).unwrap();
        }
    }

    /// Non-blocking take of the first queued item matching `pred` — the
    /// batch-mate scan. Skipped items keep their order.
    pub fn try_take_matching(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        let idx = s.items.iter().position(pred)?;
        s.items.remove(idx)
    }

    /// Stop admitting; wake every parked consumer so it can drain and
    /// exit.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// Current depth (racy by nature; for gauges and tests).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when empty at the instant of the check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn capacity_is_enforced_and_rejects_hand_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "slot freed by pop");
    }

    #[test]
    fn close_drains_admitted_items_then_returns_none() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue admits nothing");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_take_matching_preserves_order_of_skipped_items() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4] {
            q.try_push(v).unwrap();
        }
        assert_eq!(q.try_take_matching(|v| v % 2 == 0), Some(2));
        assert_eq!(q.try_take_matching(|v| *v > 10), None);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn parked_consumers_wake_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0usize;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0usize;
        while pushed < 50 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                thread::yield_now();
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, pushed, "every admitted item consumed exactly once");
    }
}
