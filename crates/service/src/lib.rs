//! # gp-service: the concept-query server
//!
//! A batched, cached, load-shedding request/response front end over the
//! repo's library stack — the paper's generic components packaged behind
//! one wire protocol:
//!
//! | kind       | backing crate | question                                   |
//! |------------|---------------|--------------------------------------------|
//! | `lint`     | `gp-checker`  | does this program misuse library semantics? |
//! | `simplify` | `gp-rewrite`  | what does this expression reduce to here?   |
//! | `optimize` | `gp-rewrite`  | what is the *cheapest* equivalent form?     |
//! | `prove`    | `gp-proofs`   | do the theory's proofs hold on this model?  |
//! | `select`   | `gp-taxonomy` | which algorithm fits this deployment?       |
//!
//! `simplify` runs the directed engine — one pass to a normal form, the
//! fast path. `optimize` escalates to the equality-saturation e-graph
//! ([`optimize`], backed by `gp_rewrite::egraph`): bounded saturation
//! under the same concept-gated rules plus exploration equalities, then
//! cost-based extraction against the taxonomy's per-operator cost
//! annotations. The server never escalates on its own; the client asks
//! for the superoptimizer by kind.
//!
//! The wire is length-prefixed JSON frames over TCP ([`wire`]); the same
//! serving core answers in-process through [`Service::call`]. Three
//! mechanisms make it a *server* rather than four function calls:
//!
//! - **Admission control** ([`queue`]): a bounded queue sheds overflow as
//!   retriable [`Response::Overloaded`] instead of queueing unboundedly.
//! - **Micro-batching** ([`server`]): queued `Simplify` requests sharing
//!   an environment fingerprint execute under one `Simplifier` build.
//! - **Response caching** ([`cache`]): mutex-striped LRU keyed by the
//!   request's canonical form; hits are byte-identical to fresh answers.
//!
//! Two TCP front ends expose the same serving core:
//!
//! - **Blocking** ([`Service::listen`]): thread per connection, capped at
//!   `max_connections` (beyond it, a retriable `Overloaded` frame and a
//!   close). Simple, portable, and the correctness oracle.
//! - **Reactor** ([`Service::listen_reactor`], [`reactor`]): one
//!   epoll-driven event-loop thread multiplexing thousands of
//!   connections — incremental frame decoding, request pipelining with
//!   in-order responses, per-connection write backpressure. Responses
//!   are byte-identical to the blocking path's for the same request
//!   stream (property-tested in `gp-bench`).
//!
//! For horizontal scale, [`shard::ShardRouter`] consistent-hashes
//! requests across N service instances so each shard's cache owns a true
//! partition of the key space and the micro-batcher sees denser same-
//! environment runs. The [`control`] plane runs unmodified `gp-distsim`
//! catalog algorithms (heartbeat failure detection, epoch-fenced
//! FT-FloodMax election) over real TCP: the elected leader owns the
//! router's assignment table and floods vnode reassignments when a shard
//! dies (`control.*` counters).
//!
//! Everything is observable through `gp-telemetry` (`service.*` counters,
//!  queue-depth gauge, per-kind latency histograms, `service.conn.open`,
//! `service.reactor.*`, `service.shard.<i>.cache.*`), and the counters
//! obey `accepted == completed + shed + in_flight` — checked from
//! snapshot deltas by `exp_service`, `exp_service_reactor`, and the
//! coherence proptests. On top of the metrics sit three deeper lenses
//! ([`introspect`]): sampled end-to-end *traces* whose spans follow a
//! request across thread hops (`"trace":N` on the wire, assembled into a
//! per-shard `TraceStore`), a process-wide lock-free *flight recorder* of
//! recent structured events (dumped on drain and on failover), and the
//! `stats`/`trace` wire request kinds that export both — served on either
//! front end, even while draining.

pub mod cache;
pub mod control;
pub mod introspect;
pub mod lint;
pub mod optimize;
pub mod prove;
pub mod queue;
pub mod reactor;
pub mod request;
pub mod select;
pub mod server;
pub mod shard;
pub mod simplify;
pub mod wire;

pub use cache::{CacheStats, ResponseCache};
pub use control::{ControlConfig, ControlPlane, NodeStatus};
pub use introspect::{stats_payload, StatsRequest, TraceQuery};
pub use optimize::{CostSpec, OptimizeRequest};
pub use reactor::{Reactor, ReactorConfig, ReactorHandle, SubmitRequest};
pub use request::{
    decode_request, decode_request_traced, decode_response, encode_request, encode_request_traced,
    encode_response, Request, Response,
};
pub use server::{Service, ServiceConfig, ServiceStats, Ticket};
pub use shard::{FailoverTarget, HashRing, ShardRouter, ShardRouterConfig};
pub use wire::{FrameDecoder, TcpClient};
