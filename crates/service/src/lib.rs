//! # gp-service: the concept-query server
//!
//! A batched, cached, load-shedding request/response front end over the
//! repo's library stack — the paper's generic components packaged behind
//! one wire protocol:
//!
//! | kind       | backing crate | question                                   |
//! |------------|---------------|--------------------------------------------|
//! | `lint`     | `gp-checker`  | does this program misuse library semantics? |
//! | `simplify` | `gp-rewrite`  | what does this expression reduce to here?   |
//! | `prove`    | `gp-proofs`   | do the theory's proofs hold on this model?  |
//! | `select`   | `gp-taxonomy` | which algorithm fits this deployment?       |
//!
//! The wire is length-prefixed JSON frames over TCP ([`wire`]); the same
//! serving core answers in-process through [`Service::call`]. Three
//! mechanisms make it a *server* rather than four function calls:
//!
//! - **Admission control** ([`queue`]): a bounded queue sheds overflow as
//!   retriable [`Response::Overloaded`] instead of queueing unboundedly.
//! - **Micro-batching** ([`server`]): queued `Simplify` requests sharing
//!   an environment fingerprint execute under one `Simplifier` build.
//! - **Response caching** ([`cache`]): mutex-striped LRU keyed by the
//!   request's canonical form; hits are byte-identical to fresh answers.
//!
//! Everything is observable through `gp-telemetry` (`service.*` counters,
//!  queue-depth gauge, per-kind latency histograms), and the counters
//! obey `accepted == completed + shed + in_flight` — checked from
//! snapshot deltas by `exp_service` and the coherence proptests.

pub mod cache;
pub mod lint;
pub mod prove;
pub mod queue;
pub mod request;
pub mod select;
pub mod server;
pub mod simplify;
pub mod wire;

pub use cache::{CacheStats, ResponseCache};
pub use request::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
pub use server::{Service, ServiceConfig, ServiceStats, Ticket};
pub use wire::TcpClient;
