//! The `Prove` request: theory instantiation as a service (`gp-proofs`
//! backing).
//!
//! A client names a packaged theory, an instance name, and a symbol map
//! (abstract symbol → model symbol); the handler renames the axioms *and*
//! proofs onto the model and re-checks every theorem. A failed proof is a
//! **verdict**, not a transport error: the payload carries `ok: false`
//! plus which theorem broke and why, so a client probing a bogus model
//! still gets a cacheable, well-formed answer.

use gp_core::json::Json;
use gp_proofs::logic::SymbolMap;
use gp_proofs::theories::{group, monoid, order, ring, Theory};

/// Check a named theory, optionally instantiated onto a model.
#[derive(Clone, Debug, PartialEq)]
pub struct ProveRequest {
    /// Theory name (see [`lookup_theory`] for the registry).
    pub theory: String,
    /// Instance name used when renaming (empty = check the base theory).
    pub instance: String,
    /// Symbol map, abstract → concrete, sorted by key for canonical form.
    pub model: Vec<(String, String)>,
}

/// Resolve a theory name to its packaged theory.
pub fn lookup_theory(name: &str) -> Result<Theory, String> {
    Ok(match name {
        "monoid" => monoid::theory(),
        "monoid-identity-uniqueness" => monoid::identity_uniqueness_theory(),
        "group" => group::theory(),
        "ring" => ring::theory(),
        "order" | "strict-weak-order" => order::theory(),
        other => {
            return Err(format!(
                "unknown theory {other:?} (known: monoid, monoid-identity-uniqueness, \
                 group, ring, order)"
            ))
        }
    })
}

impl ProveRequest {
    /// Canonical JSON form (field order fixed, model sorted — cache keys
    /// depend on it).
    pub fn to_json(&self) -> Json {
        let mut model = self.model.clone();
        model.sort();
        let mut m = Json::obj();
        for (from, to) in &model {
            m = m.field(from, to.as_str());
        }
        Json::obj()
            .field("theory", self.theory.as_str())
            .field("instance", self.instance.as_str())
            .field("model", m)
    }

    /// Decode from the `req` object of a request envelope.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let theory = j
            .get("theory")
            .and_then(Json::as_str)
            .ok_or("prove: missing string field 'theory'")?
            .to_string();
        let instance = j
            .get("instance")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let mut model = Vec::new();
        if let Some(Json::Obj(fields)) = j.get("model") {
            for (from, to) in fields {
                let to = to
                    .as_str()
                    .ok_or_else(|| format!("prove: model entry {from:?} must map to a string"))?;
                model.push((from.clone(), to.to_string()));
            }
        }
        model.sort();
        Ok(ProveRequest {
            theory,
            instance,
            model,
        })
    }
}

/// Look up, optionally instantiate, and check. The payload reports the
/// verdict plus the proved theorems (success) or the failing theorem and
/// its error (failure).
pub fn handle(req: &ProveRequest) -> Result<Json, String> {
    let base = lookup_theory(&req.theory)?;
    let theory = if req.instance.is_empty() && req.model.is_empty() {
        base
    } else {
        let map = SymbolMap::new(req.model.iter().map(|(a, b)| (a.clone(), b.clone())));
        base.instantiate(&req.instance, &map)
    };
    let payload = Json::obj()
        .field("theory", theory.name.as_str())
        .field("axioms", theory.axioms.len())
        .field("proof_size", theory.proof_size());
    Ok(match theory.check() {
        Ok(props) => payload.field("ok", true).field(
            "theorems",
            Json::Arr(
                theory
                    .theorems
                    .iter()
                    .zip(&props)
                    .map(|(t, p)| {
                        Json::obj()
                            .field("name", t.name.as_str())
                            .field("statement", p.to_string())
                    })
                    .collect(),
            ),
        ),
        Err(e) => payload
            .field("ok", false)
            .field("failed_theorem", e.theorem.as_str())
            .field("error", format!("{:?}", e.error)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_theories_check_clean() {
        for name in [
            "monoid",
            "monoid-identity-uniqueness",
            "group",
            "ring",
            "order",
        ] {
            let payload = handle(&ProveRequest {
                theory: name.into(),
                instance: String::new(),
                model: Vec::new(),
            })
            .unwrap();
            assert_eq!(
                payload.get("ok").and_then(Json::as_bool),
                Some(true),
                "theory {name} should verify"
            );
        }
    }

    #[test]
    fn instantiated_monoid_reports_renamed_theorems() {
        let req = ProveRequest {
            theory: "monoid".into(),
            instance: "int-add".into(),
            model: vec![
                ("op".into(), "add".into()),
                ("e".into(), "zero".into()),
                ("M".into(), "Int".into()),
            ],
        };
        let payload = handle(&req).unwrap();
        assert_eq!(payload.get("ok").and_then(Json::as_bool), Some(true));
        let theorems = payload.get("theorems").and_then(Json::as_arr).unwrap();
        assert!(!theorems.is_empty());
        let all = payload.render();
        assert!(all.contains("add"), "instantiated symbols in {all}");
    }

    #[test]
    fn unknown_theory_is_a_handler_error() {
        let err = handle(&ProveRequest {
            theory: "field".into(),
            instance: String::new(),
            model: Vec::new(),
        })
        .unwrap_err();
        assert!(err.contains("unknown theory"), "got {err}");
    }

    #[test]
    fn request_json_is_canonical_under_model_reordering() {
        let a = ProveRequest {
            theory: "monoid".into(),
            instance: "i".into(),
            model: vec![("op".into(), "add".into()), ("e".into(), "zero".into())],
        };
        let b = ProveRequest {
            theory: "monoid".into(),
            instance: "i".into(),
            model: vec![("e".into(), "zero".into()), ("op".into(), "add".into())],
        };
        assert_eq!(a.to_json().render(), b.to_json().render());
        let back = ProveRequest::from_json(&Json::parse(&a.to_json().render()).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), a.to_json().render());
    }
}
