//! Request/response envelopes and the canonical form that keys the
//! response cache.
//!
//! A request frame is `{"id": N, "kind": "...", "req": {...}}`; a
//! response frame is `{"id": N, "status": "ok", "resp": {...}}`,
//! `{"id": N, "status": "error", "error": "..."}`, or
//! `{"id": N, "status": "overloaded"}`. The `id` is a client-chosen
//! correlation number echoed verbatim; it is *excluded* from the
//! canonical form, so two clients asking the same question share a cache
//! entry.
//!
//! Every `to_json` emits fields in a fixed order and every decoder
//! re-canonicalizes on entry, so `canonical()` is a stable cache key for
//! semantically equal requests however the client ordered its fields.

use crate::{introspect, lint, optimize, prove, select, simplify};
use gp_core::json::Json;

/// One query against the library stack.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Lint a program (`gp-checker`).
    Lint(lint::LintRequest),
    /// Simplify an expression under a concept environment (`gp-rewrite`,
    /// directed engine — the fast path).
    Simplify(simplify::SimplifyRequest),
    /// Superoptimize an expression by equality saturation and cost-based
    /// extraction (`gp-rewrite` e-graph mode).
    Optimize(optimize::OptimizeRequest),
    /// Check an instantiated theory (`gp-proofs`).
    Prove(prove::ProveRequest),
    /// Select a distributed algorithm (`gp-taxonomy`).
    Select(select::SelectRequest),
    /// Export the telemetry registry with derived percentiles
    /// (introspection; answered at admission, never queued or cached).
    Stats(introspect::StatsRequest),
    /// Fetch an assembled trace tree by id (introspection; answered at
    /// admission from the shard trace stores).
    Trace(introspect::TraceQuery),
}

/// The server's answer to one request.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Success; `payload` is the rendered JSON payload, bit-stable so
    /// cached and fresh responses are byte-identical.
    Ok {
        /// Rendered payload JSON.
        payload: String,
    },
    /// The handler rejected the request (bad program, unknown theory …).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Admission control shed the request; retry later. The server did
    /// *not* do the work.
    Overloaded,
}

impl Request {
    /// The wire name of this request's kind (also its telemetry label).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Lint(_) => "lint",
            Request::Simplify(_) => "simplify",
            Request::Optimize(_) => "optimize",
            Request::Prove(_) => "prove",
            Request::Select(_) => "select",
            Request::Stats(_) => "stats",
            Request::Trace(_) => "trace",
        }
    }

    /// The `req` object in canonical field order.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Lint(r) => r.to_json(),
            Request::Simplify(r) => r.to_json(),
            Request::Optimize(r) => r.to_json(),
            Request::Prove(r) => r.to_json(),
            Request::Select(r) => r.to_json(),
            Request::Stats(r) => r.to_json(),
            Request::Trace(r) => r.to_json(),
        }
    }

    /// Decode from `kind` + `req` object.
    pub fn from_kind_json(kind: &str, req: &Json) -> Result<Request, String> {
        Ok(match kind {
            "lint" => Request::Lint(lint::LintRequest::from_json(req)?),
            "simplify" => Request::Simplify(simplify::SimplifyRequest::from_json(req)?),
            "optimize" => Request::Optimize(optimize::OptimizeRequest::from_json(req)?),
            "prove" => Request::Prove(prove::ProveRequest::from_json(req)?),
            "select" => Request::Select(select::SelectRequest::from_json(req)?),
            "stats" => Request::Stats(introspect::StatsRequest::from_json(req)?),
            "trace" => Request::Trace(introspect::TraceQuery::from_json(req)?),
            other => return Err(format!("unknown request kind {other:?}")),
        })
    }

    /// Canonical form: kind + canonical payload rendering. Equal for
    /// semantically equal requests; the cache key is its hash (with the
    /// full string kept for collision checks).
    pub fn canonical(&self) -> String {
        format!("{}:{}", self.kind(), self.to_json().render())
    }

    /// Dispatch to the backing handler (a batch of one for `Simplify`;
    /// the serving core batches when it can).
    pub fn handle(&self) -> Result<Json, String> {
        match self {
            Request::Lint(r) => lint::handle(r),
            Request::Simplify(r) => simplify::handle(r),
            Request::Optimize(r) => optimize::handle(r),
            Request::Prove(r) => prove::handle(r),
            Request::Select(r) => select::handle(r),
            Request::Stats(r) => Ok(Json::Raw(introspect::stats_payload(&r.prefix))),
            // Trace lookups need a serving shard's store; the serving
            // core answers them at admission, so reaching this handler
            // means the request was dispatched outside a service.
            Request::Trace(_) => Err("trace lookup requires a running service".into()),
        }
    }
}

/// FNV-1a — the cache's request hash. Small, dependency-free, and good
/// enough given the canonical string rides along to catch collisions.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a request frame.
pub fn encode_request(id: u64, req: &Request) -> String {
    encode_request_traced(id, req, None)
}

/// Encode a request frame, optionally carrying a trace context: the
/// envelope grows an extra `"trace": N` field naming the client-chosen
/// trace id. Decoders that predate tracing ignore unknown envelope
/// fields, and the field is excluded from the canonical form (which is
/// built from `kind` + `req` only), so a traced request shares cache
/// entries — and response bytes — with its untraced twin.
pub fn encode_request_traced(id: u64, req: &Request, trace: Option<u64>) -> String {
    let j = Json::obj()
        .field("id", id)
        .field("kind", req.kind())
        .field("req", req.to_json());
    match trace {
        Some(t) => j.field("trace", t),
        None => j,
    }
    .render()
}

/// Decode a request frame into `(id, request)`, dropping any trace field.
pub fn decode_request(frame: &str) -> Result<(u64, Request), String> {
    decode_request_traced(frame).map(|(id, req, _)| (id, req))
}

/// Decode a request frame into `(id, request, trace)`, where `trace` is
/// the optional wire trace id. Tracing is strictly opt-in: a frame
/// without the field yields `None` and is processed identically to one
/// decoded before tracing existed.
pub fn decode_request_traced(frame: &str) -> Result<(u64, Request, Option<u64>), String> {
    let j = Json::parse(frame).map_err(|e| format!("bad frame: {e}"))?;
    let id = j.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("bad frame: missing string field 'kind'")?;
    let req = j.get("req").ok_or("bad frame: missing field 'req'")?;
    let trace = j.get("trace").and_then(Json::as_f64).map(|t| t as u64);
    Ok((id, Request::from_kind_json(kind, req)?, trace))
}

/// Encode a response frame.
pub fn encode_response(id: u64, resp: &Response) -> String {
    let j = Json::obj().field("id", id);
    match resp {
        // The payload is already rendered JSON; splice it verbatim so the
        // bytes a cache hit returns are identical to the fresh ones.
        Response::Ok { payload } => j
            .field("status", "ok")
            .field("resp", Json::Raw(payload.clone())),
        Response::Error { message } => j.field("status", "error").field("error", message.as_str()),
        Response::Overloaded => j.field("status", "overloaded"),
    }
    .render()
}

/// Decode a response frame into `(id, response)`. The payload is
/// re-rendered from the parse — safe because rendering is canonical
/// (`parse(r).render() == r`, proptested in `gp-bench`).
pub fn decode_response(frame: &str) -> Result<(u64, Response), String> {
    let j = Json::parse(frame).map_err(|e| format!("bad frame: {e}"))?;
    let id = j.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let status = j
        .get("status")
        .and_then(Json::as_str)
        .ok_or("bad frame: missing string field 'status'")?;
    Ok((
        id,
        match status {
            "ok" => Response::Ok {
                payload: j
                    .get("resp")
                    .ok_or("bad frame: ok without 'resp'")?
                    .render(),
            },
            "error" => Response::Error {
                message: j
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or("bad frame: error without 'error'")?
                    .to_string(),
            },
            "overloaded" => Response::Overloaded,
            other => return Err(format!("unknown status {other:?}")),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::EnvSpec;
    use gp_rewrite::{BinOp, Expr, Type};

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Lint(lint::LintRequest {
                name: "p".into(),
                program: "container xs vector\n".into(),
            }),
            Request::Simplify(simplify::SimplifyRequest {
                expr: Expr::bin(BinOp::Add, Expr::var("x", Type::Int), Expr::int(0)),
                env: EnvSpec::Standard,
            }),
            Request::Optimize(optimize::OptimizeRequest {
                expr: Expr::bin(BinOp::Add, Expr::var("x", Type::Int), Expr::int(0)),
                env: EnvSpec::Standard,
                cost: optimize::CostSpec::Annotation,
                max_nodes: Some(4096),
                max_iters: Some(8),
            }),
            Request::Prove(prove::ProveRequest {
                theory: "monoid".into(),
                instance: "i".into(),
                model: vec![("op".into(), "add".into())],
            }),
            Request::Select(
                select::SelectRequest::from_json(
                    &Json::parse(
                        r#"{"problem":"broadcast","topology":"tree","timing":"asynchronous"}"#,
                    )
                    .unwrap(),
                )
                .unwrap(),
            ),
            Request::Stats(introspect::StatsRequest {
                prefix: "service.".into(),
            }),
            Request::Trace(introspect::TraceQuery { id: 42 }),
        ]
    }

    #[test]
    fn request_frames_round_trip_for_every_kind() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let frame = encode_request(i as u64 + 7, &req);
            let (id, back) = decode_request(&frame).unwrap();
            assert_eq!(id, i as u64 + 7);
            assert_eq!(back, req, "round-trip for kind {}", req.kind());
            assert_eq!(back.canonical(), req.canonical());
        }
    }

    #[test]
    fn trace_field_is_optional_invisible_to_canonical_and_ignored_by_old_decoders() {
        for req in sample_requests() {
            let plain = encode_request(5, &req);
            let traced = encode_request_traced(5, &req, Some(777));
            // Match the *field* form `"trace":` — the `trace` request
            // kind legitimately puts the word in `"kind":"trace"`.
            assert!(!plain.contains("\"trace\":"), "untraced stays untraced");
            assert!(traced.contains("\"trace\":777"));
            // The traced-aware decoder sees the id; the legacy decoder
            // (and thus everything downstream of it) sees the identical
            // request.
            let (_, r1, t1) = decode_request_traced(&traced).unwrap();
            assert_eq!(t1, Some(777));
            let (_, r2) = decode_request(&traced).unwrap();
            assert_eq!(r1, req);
            assert_eq!(r2, req);
            let (_, _, t0) = decode_request_traced(&plain).unwrap();
            assert_eq!(t0, None, "tracing is strictly opt-in");
            assert_eq!(
                r1.canonical(),
                req.canonical(),
                "trace id never keys the cache"
            );
        }
    }

    #[test]
    fn canonical_form_ignores_client_field_order_and_id() {
        let a = decode_request(
            r#"{"id":1,"kind":"lint","req":{"name":"p","program":"container xs vector\n"}}"#,
        )
        .unwrap()
        .1;
        let b = decode_request(
            r#"{"kind":"lint","id":99,"req":{"program":"container xs vector\n","name":"p"}}"#,
        )
        .unwrap()
        .1;
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn response_frames_round_trip_and_ok_payload_is_spliced_verbatim() {
        let payload = Request::Select(
            select::SelectRequest::from_json(
                &Json::parse(
                    r#"{"problem":"broadcast","topology":"tree","timing":"asynchronous"}"#,
                )
                .unwrap(),
            )
            .unwrap(),
        )
        .handle()
        .unwrap()
        .render();
        let resp = Response::Ok {
            payload: payload.clone(),
        };
        let frame = encode_response(3, &resp);
        assert!(
            frame.contains(&payload),
            "payload bytes verbatim in {frame}"
        );
        let (id, back) = decode_response(&frame).unwrap();
        assert_eq!(id, 3);
        assert_eq!(back, resp);

        for r in [
            Response::Error {
                message: "bad \"input\"".into(),
            },
            Response::Overloaded,
        ] {
            let (_, back) = decode_response(&encode_response(0, &r)).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_context() {
        for frame in [
            "",
            "not json",
            r#"{"id":1}"#,
            r#"{"id":1,"kind":"frobnicate","req":{}}"#,
            r#"{"id":1,"kind":"lint","req":{}}"#,
        ] {
            assert!(decode_request(frame).is_err(), "accepted {frame:?}");
        }
    }

    #[test]
    fn fnv1a_distinguishes_close_strings() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_ne!(fnv1a("lint:{}"), fnv1a("lint:{} "));
        assert_eq!(fnv1a("same"), fnv1a("same"));
    }
}
