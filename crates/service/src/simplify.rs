//! The `Simplify` request: Simplicissimus as a service (`gp-rewrite`
//! backing), plus the environment fingerprint that drives micro-batching.
//!
//! The expression travels as a JSON AST (`{"bin":["+",l,r]}` …) and the
//! concept environment as either the string `"standard"` or an explicit
//! declaration list. Requests whose environments render to the same
//! canonical JSON share a **fingerprint**; the serving core groups queued
//! requests by fingerprint and builds the `Simplifier` (environment +
//! rule set) once per batch instead of once per request — the
//! amortization the `ConceptEnv::standard_ref` cache starts and batching
//! finishes.
//!
//! Wire caveat: numeric literals ride in JSON numbers (f64), so `Int`/
//! `UInt` literals are exact only up to 2^53 — plenty for rewrite
//! workloads, and the same bound every JSON consumer of the bench
//! artifacts already lives with.

use crate::request::fnv1a;
use gp_core::json::Json;
use gp_core::numeric::Rational;
use gp_rewrite::env::AlgConcept;
use gp_rewrite::{BinOp, ConceptEnv, Expr, Simplifier, Type, UnOp, Value};

/// Simplify `expr` under a concept environment.
#[derive(Clone, Debug, PartialEq)]
pub struct SimplifyRequest {
    /// The expression to rewrite.
    pub expr: Expr,
    /// The concept environment the rules consult.
    pub env: EnvSpec,
}

/// A serializable concept environment.
#[derive(Clone, Debug, PartialEq)]
pub enum EnvSpec {
    /// The Fig. 5 standard environment (shared `&'static`, never rebuilt).
    Standard,
    /// An explicit declaration list over an empty environment.
    Custom(Vec<EnvDecl>),
}

/// One `(type, op)` declaration of a custom environment.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvDecl {
    /// The modeling type.
    pub ty: Type,
    /// The operation.
    pub op: BinOp,
    /// Declared concepts (Monoid/Group imply the weaker ones).
    pub concepts: Vec<AlgConcept>,
    /// Identity element, if declared.
    pub identity: Option<Value>,
    /// Annihilator element, if declared.
    pub annihilator: Option<Value>,
    /// Inverse-building unary operator, if declared.
    pub inverse: Option<UnOp>,
}

// --- name tables -------------------------------------------------------

fn type_name(t: Type) -> &'static str {
    match t {
        Type::Int => "int",
        Type::UInt => "uint",
        Type::Float => "float",
        Type::Bool => "bool",
        Type::Str => "str",
        Type::Rational => "rational",
        Type::Matrix => "matrix",
        Type::BigFloat => "bigfloat",
    }
}

fn type_from(s: &str) -> Result<Type, String> {
    Ok(match s {
        "int" => Type::Int,
        "uint" => Type::UInt,
        "float" => Type::Float,
        "bool" => Type::Bool,
        "str" => Type::Str,
        "rational" => Type::Rational,
        "matrix" => Type::Matrix,
        "bigfloat" => Type::BigFloat,
        other => return Err(format!("unknown type {other:?}")),
    })
}

fn binop_from(s: &str) -> Result<BinOp, String> {
    Ok(match s {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "&&" => BinOp::And,
        "||" => BinOp::Or,
        "&" => BinOp::BitAnd,
        "++" => BinOp::Concat,
        other => return Err(format!("unknown binary operator {other:?}")),
    })
}

fn unop_name(u: UnOp) -> &'static str {
    match u {
        UnOp::Neg => "neg",
        UnOp::Recip => "recip",
        UnOp::Not => "not",
    }
}

fn unop_from(s: &str) -> Result<UnOp, String> {
    Ok(match s {
        "neg" => UnOp::Neg,
        "recip" => UnOp::Recip,
        "not" => UnOp::Not,
        other => return Err(format!("unknown unary operator {other:?}")),
    })
}

fn concept_name(c: AlgConcept) -> &'static str {
    match c {
        AlgConcept::Semigroup => "semigroup",
        AlgConcept::Monoid => "monoid",
        AlgConcept::Group => "group",
        AlgConcept::Commutative => "commutative",
        AlgConcept::Idempotent => "idempotent",
    }
}

fn concept_from(s: &str) -> Result<AlgConcept, String> {
    Ok(match s {
        "semigroup" => AlgConcept::Semigroup,
        "monoid" => AlgConcept::Monoid,
        "group" => AlgConcept::Group,
        "commutative" => AlgConcept::Commutative,
        "idempotent" => AlgConcept::Idempotent,
        other => return Err(format!("unknown concept {other:?}")),
    })
}

// --- value / expression codec ------------------------------------------

/// Encode a literal value.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(x) => Json::obj().field("int", *x),
        Value::UInt(x) => Json::obj().field("uint", *x),
        Value::Float(x) => Json::obj().field("float", *x),
        Value::Bool(b) => Json::obj().field("bool", *b),
        Value::Str(s) => Json::obj().field("str", s.as_str()),
        Value::Rational(r) => Json::obj().field(
            "rational",
            Json::Arr(vec![
                Json::Num(r.numerator() as f64),
                Json::Num(r.denominator() as f64),
            ]),
        ),
        Value::BigFloat(x) => Json::obj().field("bigfloat", *x),
    }
}

/// Decode a literal value.
pub fn value_from_json(j: &Json) -> Result<Value, String> {
    let num = |key: &str| j.get(key).and_then(Json::as_f64);
    if let Some(x) = num("int") {
        return Ok(Value::Int(x as i64));
    }
    if let Some(x) = num("uint") {
        return Ok(Value::UInt(x as u64));
    }
    if let Some(x) = num("float") {
        return Ok(Value::Float(x));
    }
    if let Some(b) = j.get("bool").and_then(Json::as_bool) {
        return Ok(Value::Bool(b));
    }
    if let Some(s) = j.get("str").and_then(Json::as_str) {
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(x) = num("bigfloat") {
        return Ok(Value::BigFloat(x));
    }
    if let Some(parts) = j.get("rational").and_then(Json::as_arr) {
        if let [Json::Num(n), Json::Num(d)] = parts {
            if *d == 0.0 {
                return Err("rational with zero denominator".into());
            }
            return Ok(Value::Rational(Rational::new(*n as i64, *d as i64)));
        }
        return Err("rational expects [num, den]".into());
    }
    Err(format!("unrecognized value {:?}", j.render()))
}

/// Encode an expression as a JSON AST.
pub fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Lit(v) => Json::obj().field("lit", value_to_json(v)),
        Expr::Var(name, ty) => Json::obj().field(
            "var",
            Json::Arr(vec![Json::Str(name.clone()), Json::from(type_name(*ty))]),
        ),
        Expr::Unary(op, x) => Json::obj().field(
            "un",
            Json::Arr(vec![Json::from(unop_name(*op)), expr_to_json(x)]),
        ),
        Expr::Binary(op, l, r) => Json::obj().field(
            "bin",
            Json::Arr(vec![
                Json::from(op.symbol()),
                expr_to_json(l),
                expr_to_json(r),
            ]),
        ),
        Expr::Call(name, ty, args) => Json::obj().field(
            "call",
            Json::Arr(vec![
                Json::Str(name.clone()),
                Json::from(type_name(*ty)),
                Json::Arr(args.iter().map(expr_to_json).collect()),
            ]),
        ),
    }
}

/// Decode a JSON AST back into an expression.
pub fn expr_from_json(j: &Json) -> Result<Expr, String> {
    if let Some(v) = j.get("lit") {
        return Ok(Expr::Lit(value_from_json(v)?));
    }
    if let Some(parts) = j.get("var").and_then(Json::as_arr) {
        if let [Json::Str(name), Json::Str(ty)] = parts {
            return Ok(Expr::Var(name.clone(), type_from(ty)?));
        }
        return Err("var expects [name, type]".into());
    }
    if let Some(parts) = j.get("un").and_then(Json::as_arr) {
        if let [Json::Str(op), x] = parts {
            return Ok(Expr::Unary(unop_from(op)?, Box::new(expr_from_json(x)?)));
        }
        return Err("un expects [op, expr]".into());
    }
    if let Some(parts) = j.get("bin").and_then(Json::as_arr) {
        if let [Json::Str(op), l, r] = parts {
            return Ok(Expr::Binary(
                binop_from(op)?,
                Box::new(expr_from_json(l)?),
                Box::new(expr_from_json(r)?),
            ));
        }
        return Err("bin expects [op, lhs, rhs]".into());
    }
    if let Some(parts) = j.get("call").and_then(Json::as_arr) {
        if let [Json::Str(name), Json::Str(ty), Json::Arr(args)] = parts {
            let args = args
                .iter()
                .map(expr_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Expr::Call(name.clone(), type_from(ty)?, args));
        }
        return Err("call expects [name, type, [args]]".into());
    }
    Err(format!("unrecognized expression {:?}", j.render()))
}

// --- environment codec --------------------------------------------------

impl EnvDecl {
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("ty", type_name(self.ty))
            .field("op", self.op.symbol())
            .field(
                "concepts",
                Json::Arr(
                    self.concepts
                        .iter()
                        .map(|c| Json::from(concept_name(*c)))
                        .collect(),
                ),
            );
        if let Some(v) = &self.identity {
            j = j.field("identity", value_to_json(v));
        }
        if let Some(v) = &self.annihilator {
            j = j.field("annihilator", value_to_json(v));
        }
        if let Some(u) = self.inverse {
            j = j.field("inverse", unop_name(u));
        }
        j
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let ty = type_from(
            j.get("ty")
                .and_then(Json::as_str)
                .ok_or("declaration missing 'ty'")?,
        )?;
        let op = binop_from(
            j.get("op")
                .and_then(Json::as_str)
                .ok_or("declaration missing 'op'")?,
        )?;
        let concepts = j
            .get("concepts")
            .and_then(Json::as_arr)
            .ok_or("declaration missing 'concepts' array")?
            .iter()
            .map(|c| concept_from(c.as_str().ok_or("concept must be a string")?))
            .collect::<Result<Vec<_>, String>>()?;
        let identity = j.get("identity").map(value_from_json).transpose()?;
        let annihilator = j.get("annihilator").map(value_from_json).transpose()?;
        let inverse = j
            .get("inverse")
            .map(|u| unop_from(u.as_str().ok_or("inverse must be a string")?))
            .transpose()?;
        Ok(EnvDecl {
            ty,
            op,
            concepts,
            identity,
            annihilator,
            inverse,
        })
    }
}

impl EnvSpec {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            EnvSpec::Standard => Json::from("standard"),
            EnvSpec::Custom(decls) => Json::obj().field(
                "declare",
                Json::Arr(decls.iter().map(EnvDecl::to_json).collect()),
            ),
        }
    }

    /// Decode; the string `"standard"` or `{"declare": [...]}`.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if let Some("standard") = j.as_str() {
            return Ok(EnvSpec::Standard);
        }
        if let Some(decls) = j.get("declare").and_then(Json::as_arr) {
            return Ok(EnvSpec::Custom(
                decls
                    .iter()
                    .map(EnvDecl::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            ));
        }
        Err("env must be \"standard\" or {\"declare\": [...]}".into())
    }

    /// Materialize the concept environment this spec describes.
    pub fn build(&self) -> ConceptEnv {
        match self {
            // One clone of the process-wide cached build; see
            // `ConceptEnv::standard_ref`.
            EnvSpec::Standard => ConceptEnv::standard(),
            EnvSpec::Custom(decls) => {
                let mut env = ConceptEnv::empty();
                for d in decls {
                    for c in &d.concepts {
                        env.declare(d.ty, d.op, *c);
                    }
                    if let Some(v) = &d.identity {
                        env.set_identity(d.ty, d.op, v.clone());
                    }
                    if let Some(v) = &d.annihilator {
                        env.set_annihilator(d.ty, d.op, v.clone());
                    }
                    if let Some(u) = d.inverse {
                        env.set_inverse_op(d.ty, d.op, u);
                    }
                }
                env
            }
        }
    }

    /// The batching key: hash of the canonical environment JSON. Requests
    /// with equal fingerprints can share one `Simplifier`.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.to_json().render())
    }
}

impl SimplifyRequest {
    /// Canonical JSON form (field order fixed — cache keys depend on it).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("expr", expr_to_json(&self.expr))
            .field("env", self.env.to_json())
    }

    /// Decode from the `req` object of a request envelope. A missing
    /// `env` defaults to the standard environment.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let expr = expr_from_json(j.get("expr").ok_or("simplify: missing 'expr'")?)?;
        let env = match j.get("env") {
            None => EnvSpec::Standard,
            Some(e) => EnvSpec::from_json(e)?,
        };
        Ok(SimplifyRequest { expr, env })
    }
}

/// Simplify one request (a batch of one).
pub fn handle(req: &SimplifyRequest) -> Result<Json, String> {
    handle_batch(std::slice::from_ref(req)).pop().unwrap()
}

/// Batch size at which simplification fans out to the `gp-parallel`
/// pool. Below it, the shared-interner sequential path wins (common
/// subterms across the batch intern once, and no spawn overhead).
const PARALLEL_BATCH_THRESHOLD: usize = 8;

/// Simplify a batch of requests sharing an environment fingerprint: the
/// `Simplifier` (environment + rule set + resolved fire counters + rule
/// dispatch index) is built **once** and reused for every expression —
/// the amortization the serving core's micro-batching exists to exploit.
///
/// Small batches run sequentially on one rewriting session, so common
/// subterms across entries are interned once (the normal-form memo is
/// reset per entry, keeping each result and its stats byte-identical to a
/// solo call — the response cache depends on that). Large batches fan out
/// to the `gp-parallel` pool, one independent session per entry.
pub fn handle_batch(reqs: &[SimplifyRequest]) -> Vec<Result<Json, String>> {
    let Some(first) = reqs.first() else {
        return Vec::new();
    };
    debug_assert!(
        reqs.iter()
            .all(|r| r.env.fingerprint() == first.env.fingerprint()),
        "batched simplify requests must share an environment fingerprint"
    );
    let simplifier = Simplifier::with_env(first.env.build());
    let exprs: Vec<Expr> = reqs.iter().map(|r| r.expr.clone()).collect();
    let results = if reqs.len() >= PARALLEL_BATCH_THRESHOLD {
        simplifier.simplify_batch_parallel(&exprs)
    } else {
        simplifier.simplify_batch(&exprs)
    };
    results
        .into_iter()
        .map(|(out, stats)| Ok(render_result(&out, &stats)))
        .collect()
}

fn render_result(out: &Expr, stats: &gp_rewrite::SimplifyStats) -> Json {
    let mut apps = Json::obj();
    for (rule, count) in &stats.applications {
        apps = apps.field(rule, *count);
    }
    Json::obj()
        .field("expr", expr_to_json(out))
        .field("display", out.to_string())
        .field(
            "stats",
            Json::obj()
                .field("iterations", stats.iterations)
                .field("size_before", stats.size_before)
                .field("size_after", stats.size_after)
                .field("total", stats.total())
                .field("applications", apps),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_times_one_plus_y_minus_y() -> Expr {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, x, Expr::int(1)),
            Expr::bin(BinOp::Add, y.clone(), Expr::un(UnOp::Neg, y)),
        )
    }

    #[test]
    fn expressions_round_trip_through_the_codec() {
        let exprs = [
            x_times_one_plus_y_minus_y(),
            Expr::Lit(Value::Rational(Rational::new(2, 3))),
            Expr::Call(
                "Inverse".into(),
                Type::BigFloat,
                vec![Expr::var("f", Type::BigFloat)],
            ),
            Expr::bin(BinOp::Concat, Expr::string("a\"b\n"), Expr::string("")),
            Expr::un(UnOp::Not, Expr::boolean(false)),
            Expr::bin(BinOp::BitAnd, Expr::uint(0xF0), Expr::var("m", Type::UInt)),
        ];
        for e in exprs {
            let j = expr_to_json(&e);
            let back = expr_from_json(&Json::parse(&j.render()).unwrap()).unwrap();
            assert_eq!(back, e, "codec round-trip for {e}");
        }
    }

    #[test]
    fn standard_env_simplifies_to_x() {
        let req = SimplifyRequest {
            expr: x_times_one_plus_y_minus_y(),
            env: EnvSpec::Standard,
        };
        let payload = handle(&req).unwrap();
        assert_eq!(payload.get("display").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn custom_env_declaration_enables_rules_for_free() {
        // Declaring a Monoid for (BigFloat, +) makes right-identity fire
        // with no rule changes — Fig. 5's "for free" advantage, over the
        // wire.
        let env = EnvSpec::Custom(vec![EnvDecl {
            ty: Type::BigFloat,
            op: BinOp::Add,
            concepts: vec![AlgConcept::Monoid],
            identity: Some(Value::BigFloat(0.0)),
            annihilator: None,
            inverse: None,
        }]);
        let req = SimplifyRequest {
            expr: Expr::bin(
                BinOp::Add,
                Expr::var("m", Type::BigFloat),
                Expr::bigfloat(0.0),
            ),
            env: env.clone(),
        };
        let decoded =
            SimplifyRequest::from_json(&Json::parse(&req.to_json().render()).unwrap()).unwrap();
        assert_eq!(decoded, req);
        let payload = handle(&req).unwrap();
        assert_eq!(payload.get("display").and_then(Json::as_str), Some("m"));
    }

    #[test]
    fn fingerprints_separate_environments_not_expressions() {
        let a = SimplifyRequest {
            expr: Expr::int(1),
            env: EnvSpec::Standard,
        };
        let b = SimplifyRequest {
            expr: x_times_one_plus_y_minus_y(),
            env: EnvSpec::Standard,
        };
        let c = SimplifyRequest {
            expr: Expr::int(1),
            env: EnvSpec::Custom(vec![]),
        };
        assert_eq!(a.env.fingerprint(), b.env.fingerprint());
        assert_ne!(a.env.fingerprint(), c.env.fingerprint());
    }

    #[test]
    fn batch_results_match_individual_handling() {
        let reqs: Vec<SimplifyRequest> = (0..4)
            .map(|i| SimplifyRequest {
                expr: Expr::bin(
                    BinOp::Mul,
                    Expr::var(format!("v{i}"), Type::Int),
                    Expr::int(1),
                ),
                env: EnvSpec::Standard,
            })
            .collect();
        let batched = handle_batch(&reqs);
        for (req, b) in reqs.iter().zip(&batched) {
            let solo = handle(req).unwrap();
            assert_eq!(b.as_ref().unwrap().render(), solo.render());
        }
    }

    #[test]
    fn large_batch_takes_the_parallel_path_and_still_matches_solo() {
        // 3× the fan-out threshold, with shared structure between entries.
        let shared = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var("x", Type::Int), Expr::int(1)),
            Expr::int(0),
        );
        let reqs: Vec<SimplifyRequest> = (0..24)
            .map(|i| SimplifyRequest {
                expr: Expr::bin(
                    BinOp::Add,
                    shared.clone(),
                    Expr::var(format!("v{i}"), Type::Int),
                ),
                env: EnvSpec::Standard,
            })
            .collect();
        let batched = handle_batch(&reqs);
        assert_eq!(batched.len(), reqs.len());
        for (req, b) in reqs.iter().zip(&batched) {
            let solo = handle(req).unwrap();
            assert_eq!(b.as_ref().unwrap().render(), solo.render());
        }
    }
}
