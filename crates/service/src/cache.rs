//! The sharded response cache.
//!
//! N mutex-striped shards, LRU per shard, keyed by the FNV-1a hash of the
//! request's canonical form. The canonical string itself rides along in
//! each entry so a hash collision degrades to a miss, never to a wrong
//! answer. Striping bounds contention: a worker touching shard `h % N`
//! never blocks a worker on another shard, and the per-shard LRU scan is
//! over at most `capacity / N` entries.
//!
//! Hits return the payload **string** rendered at insert time, so a
//! cached response is byte-identical to the fresh one — verified
//! end-to-end by the coherence proptests in `gp-bench`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Entry {
    /// Full canonical request, compared on lookup to reject collisions.
    canonical: String,
    /// Rendered response payload, returned verbatim.
    payload: String,
    /// LRU stamp from the shard clock.
    last_used: u64,
}

struct Shard {
    entries: HashMap<u64, Entry>,
    clock: u64,
}

/// Cumulative cache statistics (local to this cache instance; the
/// process-wide telemetry counters aggregate across instances).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a payload.
    pub hits: u64,
    /// Lookups that found nothing (or a colliding key).
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
}

/// Mutex-striped, per-shard-LRU response cache.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Pre-resolved telemetry counters (`<label>.{hit,miss,evict}`) so
    /// the hot path never takes the registry lock. A shard router labels
    /// each partition `service.shard.<i>.cache`, making the partitioning
    /// observable from one snapshot.
    tele_hit: &'static gp_telemetry::Counter,
    tele_miss: &'static gp_telemetry::Counter,
    tele_evict: &'static gp_telemetry::Counter,
}

impl ResponseCache {
    /// `shards` stripes (`>= 1`), `capacity` total entries split evenly,
    /// counted under the default `service.cache` telemetry label.
    pub fn new(shards: usize, capacity: usize) -> Self {
        ResponseCache::with_label(shards, capacity, "service.cache")
    }

    /// Like [`ResponseCache::new`], with the telemetry counters named
    /// `<label>.hit`, `<label>.miss`, `<label>.evict`.
    pub fn with_label(shards: usize, capacity: usize, label: &str) -> Self {
        let shards = shards.max(1);
        ResponseCache {
            per_shard_cap: capacity.div_ceil(shards).max(1),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tele_hit: gp_telemetry::counter(&format!("{label}.hit")),
            tele_miss: gp_telemetry::counter(&format!("{label}.miss")),
            tele_evict: gp_telemetry::counter(&format!("{label}.evict")),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Look up by hash, verifying `canonical` against the stored request.
    pub fn get(&self, hash: u64, canonical: &str) -> Option<String> {
        let mut shard = self.shard(hash).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.entries.get_mut(&hash) {
            Some(e) if e.canonical == canonical => {
                e.last_used = clock;
                let payload = e.payload.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.tele_hit.incr();
                Some(payload)
            }
            _ => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.tele_miss.incr();
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the shard's least-recently
    /// used entry when the stripe is full.
    pub fn put(&self, hash: u64, canonical: &str, payload: &str) {
        let mut shard = self.shard(hash).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(e) = shard.entries.get_mut(&hash) {
            // Same hash again: refresh (collision keys overwrite — the
            // colliding pair would otherwise thrash misses forever).
            e.canonical = canonical.to_string();
            e.payload = payload.to_string();
            e.last_used = clock;
            return;
        }
        if shard.entries.len() >= self.per_shard_cap {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&oldest);
                drop(shard);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.tele_evict.incr();
                shard = self.shard(hash).lock().unwrap();
            }
        }
        shard.entries.insert(
            hash,
            Entry {
                canonical: canonical.to_string(),
                payload: payload.to_string(),
                last_used: clock,
            },
        );
    }

    /// Entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of this instance's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::fnv1a;

    #[test]
    fn hits_return_the_exact_inserted_bytes() {
        let cache = ResponseCache::new(4, 64);
        let canonical = "lint:{\"name\":\"p\"}";
        let hash = fnv1a(canonical);
        assert_eq!(cache.get(hash, canonical), None);
        cache.put(hash, canonical, r#"{"count":0}"#);
        assert_eq!(
            cache.get(hash, canonical).as_deref(),
            Some(r#"{"count":0}"#)
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn hash_collisions_degrade_to_misses_not_wrong_answers() {
        let cache = ResponseCache::new(1, 8);
        cache.put(42, "request-a", "payload-a");
        assert_eq!(cache.get(42, "request-b"), None, "collision must miss");
        assert_eq!(cache.get(42, "request-a").as_deref(), Some("payload-a"));
    }

    #[test]
    fn lru_eviction_keeps_the_recently_used_entry() {
        let cache = ResponseCache::new(1, 2);
        cache.put(1, "one", "p1");
        cache.put(2, "two", "p2");
        assert!(cache.get(1, "one").is_some()); // 1 is now fresher than 2
        cache.put(3, "three", "p3"); // evicts 2
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, "one").is_some());
        assert!(cache.get(2, "two").is_none());
        assert!(cache.get(3, "three").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shards_partition_the_capacity() {
        let cache = ResponseCache::new(4, 8); // 2 per shard
        for h in 0u64..32 {
            cache.put(h, &format!("c{h}"), "p");
        }
        assert_eq!(cache.len(), 8, "per-shard LRU holds the stripe cap");
        assert_eq!(cache.stats().evictions, 24);
    }

    #[test]
    fn concurrent_access_from_many_threads_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ResponseCache::new(8, 128));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0u64..200 {
                        let canonical = format!("req-{}", i % 50);
                        let hash = fnv1a(&canonical);
                        if let Some(p) = cache.get(hash, &canonical) {
                            assert_eq!(p, format!("payload-{}", i % 50));
                        } else {
                            cache.put(hash, &canonical, &format!("payload-{}", i % 50));
                        }
                    }
                    t
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.hits > 0);
        assert_eq!(s.evictions, 0, "working set fits");
    }
}
