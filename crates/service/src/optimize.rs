//! The `optimize` request: the concept superoptimizer as a service
//! (`gp-rewrite`'s equality-saturation mode backing).
//!
//! Where `simplify` runs the directed engine — the fast path, one
//! normal form — `optimize` saturates an e-graph under the same
//! concept-gated rules *plus* the exploration equalities (commutativity,
//! associativity) and extracts the cheapest equivalent under a named
//! cost model. The server escalates to the e-graph only for this kind;
//! `simplify` never pays for class machinery.
//!
//! Wire shape (kebab-case, canonical field order):
//!
//! ```json
//! {"expr": {...}, "env": "standard", "cost-model": "annotation",
//!  "max-nodes": 20000, "max-iters": 16}
//! ```
//!
//! `cost-model` picks between the taxonomy's asymptotic annotations
//! (`"annotation"`, evaluated at the nominal size) and the E9-style
//! measured operation counts (`"measured"`). The budgets are optional
//! and clamped by validation; hitting one is reported as the non-error
//! `budget-hit` flag in the response stats, mirroring
//! `gp_rewrite::egraph::OptimizeStats`.

use crate::simplify::{expr_from_json, expr_to_json, EnvSpec};
use gp_core::json::Json;
use gp_rewrite::egraph::{ComplexityCost, CostModel, EGraphConfig, MeasuredCost};
use gp_rewrite::{Expr, Simplifier};

/// Ceiling on the requestable node/class budget: keeps one `optimize`
/// request's memory bounded however generous the client feels.
pub const MAX_NODE_BUDGET: u64 = 1_000_000;

/// Ceiling on the requestable iteration budget.
pub const MAX_ITER_BUDGET: u64 = 64;

/// Which cost model extraction minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostSpec {
    /// Taxonomy complexity annotations evaluated at the nominal size.
    Annotation,
    /// E9-style measured operation counts.
    Measured,
}

impl CostSpec {
    fn name(self) -> &'static str {
        match self {
            CostSpec::Annotation => "annotation",
            CostSpec::Measured => "measured",
        }
    }

    fn from_name(s: &str) -> Result<Self, String> {
        Ok(match s {
            "annotation" => CostSpec::Annotation,
            "measured" => CostSpec::Measured,
            other => return Err(format!("unknown cost model {other:?}")),
        })
    }

    /// Build the model from the taxonomy's surfaced tables.
    pub fn build(self) -> Box<dyn CostModel + Send + Sync> {
        match self {
            CostSpec::Annotation => {
                let catalog = gp_taxonomy::op_cost_catalog();
                Box::new(ComplexityCost::from_annotations(
                    catalog.iter().map(|a| (a.key, &a.cost)),
                    gp_taxonomy::costs::NOMINAL_SIZE,
                ))
            }
            CostSpec::Measured => {
                Box::new(MeasuredCost::from_counts(gp_taxonomy::measured_op_counts()))
            }
        }
    }
}

/// Optimize `expr` under a concept environment and cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeRequest {
    /// The expression to superoptimize.
    pub expr: Expr,
    /// The concept environment the rules consult.
    pub env: EnvSpec,
    /// The cost model extraction minimizes.
    pub cost: CostSpec,
    /// Node/class budget override (validated against [`MAX_NODE_BUDGET`]).
    pub max_nodes: Option<u64>,
    /// Iteration budget override (validated against [`MAX_ITER_BUDGET`]).
    pub max_iters: Option<u64>,
}

impl OptimizeRequest {
    /// Canonical JSON form (field order fixed — cache keys depend on it;
    /// unset budgets are omitted, not rendered as null).
    pub fn to_json(&self) -> Json {
        let j = Json::obj()
            .field("expr", expr_to_json(&self.expr))
            .field("env", self.env.to_json())
            .field("cost-model", self.cost.name());
        let j = match self.max_nodes {
            Some(n) => j.field("max-nodes", n),
            None => j,
        };
        match self.max_iters {
            Some(n) => j.field("max-iters", n),
            None => j,
        }
    }

    /// Decode and validate from the `req` object. Missing `env` defaults
    /// to standard, missing `cost-model` to `"annotation"`; budgets must
    /// be positive integers within the service ceilings.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let expr = expr_from_json(j.get("expr").ok_or("optimize: missing 'expr'")?)?;
        let env = match j.get("env") {
            None => EnvSpec::Standard,
            Some(e) => EnvSpec::from_json(e)?,
        };
        let cost = match j.get("cost-model") {
            None => CostSpec::Annotation,
            Some(c) => CostSpec::from_name(
                c.as_str()
                    .ok_or("optimize: 'cost-model' must be a string")?,
            )?,
        };
        let max_nodes = budget_field(j, "max-nodes", MAX_NODE_BUDGET)?;
        let max_iters = budget_field(j, "max-iters", MAX_ITER_BUDGET)?;
        Ok(OptimizeRequest {
            expr,
            env,
            cost,
            max_nodes,
            max_iters,
        })
    }

    /// The saturation budgets this request asks for.
    pub fn config(&self) -> EGraphConfig {
        let defaults = EGraphConfig::default();
        EGraphConfig {
            max_nodes: self.max_nodes.map_or(defaults.max_nodes, |n| n as usize),
            max_classes: self.max_nodes.map_or(defaults.max_classes, |n| n as usize),
            max_iters: self.max_iters.map_or(defaults.max_iters, |n| n as usize),
        }
    }
}

/// Parse one optional budget field: a positive integer `<= ceiling`.
fn budget_field(j: &Json, name: &str, ceiling: u64) -> Result<Option<u64>, String> {
    let Some(v) = j.get(name) else {
        return Ok(None);
    };
    let f = v
        .as_f64()
        .ok_or_else(|| format!("optimize: '{name}' must be a number"))?;
    if f.fract() != 0.0 || f < 1.0 || f > ceiling as f64 {
        return Err(format!(
            "optimize: '{name}' must be an integer in 1..={ceiling}"
        ));
    }
    Ok(Some(f as u64))
}

/// Run one optimize request: superoptimizer rule set (standard plus
/// exploration equalities) over the requested environment, bounded
/// saturation, cost-based extraction.
pub fn handle(req: &OptimizeRequest) -> Result<Json, String> {
    let simplifier = Simplifier::superopt(req.env.build());
    let cost = req.cost.build();
    let mut session = simplifier.session();
    let (out, stats) = session.optimize(&req.expr, &req.config(), cost.as_ref());
    let mut apps = Json::obj();
    for (rule, count) in &stats.applications {
        apps = apps.field(rule, *count);
    }
    Ok(Json::obj()
        .field("expr", expr_to_json(&out))
        .field("display", out.to_string())
        .field(
            "stats",
            Json::obj()
                .field("classes", stats.classes)
                .field("nodes", stats.nodes)
                .field("unions", stats.unions)
                .field("iters", stats.iters)
                .field("saturated", stats.saturated)
                .field("budget-hit", stats.budget_hit)
                .field("cost-before", stats.cost_before)
                .field("cost-after", stats.cost_after)
                .field("extracted-size", stats.extracted_size)
                .field("applications", apps),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_rewrite::{BinOp, Type, UnOp};

    fn cancellation() -> Expr {
        let x = Expr::var("x", Type::Int);
        let y = Expr::var("y", Type::Int);
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, x, y.clone()),
            Expr::un(UnOp::Neg, y),
        )
    }

    fn sample() -> OptimizeRequest {
        OptimizeRequest {
            expr: cancellation(),
            env: EnvSpec::Standard,
            cost: CostSpec::Measured,
            max_nodes: Some(5000),
            max_iters: None,
        }
    }

    #[test]
    fn json_round_trips_canonically() {
        let req = sample();
        let j = req.to_json();
        let back = OptimizeRequest::from_json(&j).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_json().render(), j.render());
        // Kebab-case on the wire, and unset budgets stay off it.
        let rendered = j.render();
        assert!(rendered.contains("\"cost-model\":\"measured\""));
        assert!(rendered.contains("\"max-nodes\":5000"));
        assert!(!rendered.contains("max-iters"));
    }

    #[test]
    fn defaults_fill_missing_optional_fields() {
        let j = Json::parse(r#"{"expr":{"var":["x","int"]}}"#).unwrap();
        let req = OptimizeRequest::from_json(&j).unwrap();
        assert_eq!(req.env, EnvSpec::Standard);
        assert_eq!(req.cost, CostSpec::Annotation);
        assert_eq!(req.config().max_iters, EGraphConfig::default().max_iters);
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        for bad in [
            r#"{}"#,
            r#"{"expr":{"var":["x","int"]},"cost-model":"frobnicate"}"#,
            r#"{"expr":{"var":["x","int"]},"cost-model":7}"#,
            r#"{"expr":{"var":["x","int"]},"max-nodes":0}"#,
            r#"{"expr":{"var":["x","int"]},"max-nodes":2.5}"#,
            r#"{"expr":{"var":["x","int"]},"max-nodes":10000000}"#,
            r#"{"expr":{"var":["x","int"]},"max-iters":-3}"#,
            r#"{"expr":{"var":["x","int"]},"max-iters":"lots"}"#,
            r#"{"expr":{"var":["x","wibble"]}}"#,
        ] {
            let j = Json::parse(bad).unwrap();
            assert!(
                OptimizeRequest::from_json(&j).is_err(),
                "accepted malformed optimize request {bad}"
            );
        }
    }

    #[test]
    fn handler_finds_the_cancellation_the_directed_engine_cannot() {
        let payload = handle(&sample()).unwrap().render();
        assert!(payload.contains("\"display\":\"x\""), "payload: {payload}");
        assert!(payload.contains("\"budget-hit\":false"));
        assert!(payload.contains("\"saturated\":true"));
    }

    #[test]
    fn both_cost_models_are_buildable_and_rank_div_over_inverse() {
        let mut store = gp_rewrite::TermStore::new();
        let f = store.var("f", Type::BigFloat);
        let one = store.lit(&gp_rewrite::Value::BigFloat(1.0));
        let div = store.binary(BinOp::Div, one, f);
        let call = store.call("Inverse", Type::BigFloat, &[f]);
        for spec in [CostSpec::Annotation, CostSpec::Measured] {
            let model = spec.build();
            assert!(
                model.node_cost(&store, div) > model.node_cost(&store, call),
                "{:?} must make the LiDIA rewrite a cost win",
                spec
            );
        }
    }
}
