//! The shard tier's control plane: unmodified distsim catalog algorithms
//! coordinating real services over real sockets.
//!
//! One control node runs alongside each shard, meshed over TCP by
//! [`LiveMesh`]. Each node composes two *unmodified* catalog processes
//! through the public [`Ctx`] sub-context idiom (the same composition
//! technique as `gp_distsim::channel::Reliable`):
//!
//! * [`Heartbeat`] — failure detection. Every node beats every round;
//!   `heartbeat_timeout` silent rounds make a peer a suspect. The horizon
//!   is `u64::MAX`: the detector never halts.
//! * [`FtFloodMax`] — leader election, one fresh instance per *epoch*.
//!   Epochs are encoded into the uid (`uid = epoch << 16 | node_id`), so
//!   max-consensus itself fences stale epochs: any vote from a newer
//!   epoch outranks every vote from an older one, and a node receiving a
//!   newer-epoch vote adopts that epoch on the spot.
//!
//! When a node's detector suspects a new death it bumps its epoch and
//! starts a fresh election. When an election settles (`FtFloodMax` goes
//! quiet and halts) the winner *owns the assignment table*: it floods
//! [`Payload::Assign`] carrying its epoch and the dead-shard bitmask, and
//! every receiver (leader included) applies it to the
//! [`FailoverTarget`] — the shard router's live mask — re-routing the
//! dead shard's vnode ranges to survivors. `mark_dead` is idempotent, so
//! duplicate floods and re-elections are harmless.
//!
//! Telemetry: `control.elections` (settled elections, counted at the
//! winner), `control.failovers` (assignment floods issued), and
//! `control.reassigned_vnodes` (ring points actually moved).

use crate::shard::FailoverTarget;
use gp_distsim::algorithms::{FtFloodMax, Heartbeat};
use gp_distsim::topology::NodeId;
use gp_distsim::{BoxProcess, Ctx, LiveMesh, Payload, Process, RunStats};
use gp_telemetry::flight::{self, FlightKind};
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct ControlMetrics {
    elections: &'static gp_telemetry::Counter,
    failovers: &'static gp_telemetry::Counter,
    reassigned_vnodes: &'static gp_telemetry::Counter,
}

fn control_metrics() -> &'static ControlMetrics {
    static METRICS: std::sync::OnceLock<ControlMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ControlMetrics {
        elections: gp_telemetry::counter("control.elections"),
        failovers: gp_telemetry::counter("control.failovers"),
        reassigned_vnodes: gp_telemetry::counter("control.reassigned_vnodes"),
    })
}

/// Epoch-encoded election uid: newer epochs outrank every older vote,
/// ties within an epoch go to the highest node id.
fn uid(epoch: u64, id: usize) -> u64 {
    (epoch << 16) | id as u64
}

/// Control-plane tuning. All durations are in [`LiveMesh`] ticks except
/// `tick` itself.
#[derive(Clone, Debug)]
pub struct ControlConfig {
    /// Wall-clock length of one round.
    pub tick: Duration,
    /// Silent rounds before a peer becomes a suspect.
    pub heartbeat_timeout: u64,
    /// FT-FloodMax re-flood period.
    pub election_period: u64,
    /// Quiet periods before an election settles.
    pub election_quiet: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            tick: Duration::from_millis(10),
            heartbeat_timeout: 3,
            election_period: 2,
            election_quiet: 3,
        }
    }
}

/// One control node's externally visible state, updated every round.
#[derive(Clone, Debug, Default)]
pub struct NodeStatus {
    /// Current election epoch.
    pub epoch: u64,
    /// The settled leader of the current epoch, if the election is done.
    pub leader: Option<usize>,
    /// Bitmask of shards this node believes dead.
    pub dead_mask: u64,
    /// Settled elections this node has won.
    pub elections_won: u64,
    /// The process-wide flight-recorder dump captured the last time this
    /// node applied a failover assignment (the forensic record of what
    /// led up to the reassignment).
    pub flight_dump: Option<String>,
}

/// The per-shard control process: heartbeat + epoch-fenced FT-FloodMax +
/// assignment flooding, composed from unmodified catalog algorithms.
struct ControlProc {
    id: usize,
    epoch: u64,
    hb: Heartbeat,
    elect: FtFloodMax,
    elect_halted: bool,
    /// Shards this node believes dead (suspects or applied assignments).
    dead_mask: u64,
    /// Dead bits this node has already flooded as leader.
    flooded_mask: u64,
    /// Dead bits already applied to the failover target.
    applied_mask: u64,
    /// Epoch whose settled election was already counted.
    counted_epoch: Option<u64>,
    election_period: u64,
    election_quiet: u64,
    target: Arc<dyn FailoverTarget>,
    status: Arc<Mutex<NodeStatus>>,
}

/// Run one step of the wrapped election against a sub-context: its halt
/// is captured (a settled election must not halt the control node), its
/// decisions are discarded (tracked via [`FtFloodMax::best`]), its sends
/// pass through, and its timers are re-issued with the current epoch as
/// the token so stale-epoch timers can be fenced on arrival.
fn run_elect(
    elect: &mut FtFloodMax,
    elect_halted: &mut bool,
    epoch: u64,
    cx: &mut Ctx,
    f: impl FnOnce(&mut FtFloodMax, &mut Ctx),
) {
    let mut sends: Vec<(NodeId, Payload, bool)> = Vec::new();
    let mut timers: Vec<(u64, u64)> = Vec::new();
    let mut scratch = RunStats::default();
    let mut discarded_output = None;
    {
        let mut sub = Ctx::new(
            cx.node,
            cx.neighbors,
            &mut sends,
            &mut timers,
            &mut scratch,
            &mut discarded_output,
            elect_halted,
        );
        f(elect, &mut sub);
    }
    for (to, pl, _) in sends {
        cx.send(to, pl);
    }
    for (delay, _inner_token) in timers {
        cx.set_timer(delay, epoch);
    }
}

impl ControlProc {
    /// Begin a fresh election at the current epoch.
    fn start_election(&mut self, cx: &mut Ctx) {
        self.elect = FtFloodMax::new(
            uid(self.epoch, self.id),
            self.election_period,
            self.election_quiet,
        );
        self.elect_halted = false;
        run_elect(
            &mut self.elect,
            &mut self.elect_halted,
            self.epoch,
            cx,
            |e, sub| e.on_start(sub),
        );
    }

    /// Apply an assignment (ours or a received flood): route every newly
    /// dead shard's vnodes to survivors. Idempotent through both the
    /// `applied_mask` and the target's own mark.
    fn apply_dead(&mut self, dead: u64) {
        let fresh = dead & !self.applied_mask;
        self.applied_mask |= dead;
        self.dead_mask |= dead;
        for shard in 0..64 {
            if fresh & (1 << shard) != 0 {
                let moved = self.target.mark_dead(shard as usize);
                control_metrics().reassigned_vnodes.add(moved as u64);
                flight::record(FlightKind::Reassign, shard as u64, moved as u64);
            }
        }
        if fresh != 0 {
            // Failover applied: snapshot the flight recorder so the drill
            // (and any operator) can see the event chain that led here.
            self.status.lock().unwrap().flight_dump = Some(flight::dump_json());
        }
    }

    /// The settled leader of the current epoch, if any.
    fn settled_leader(&self) -> Option<usize> {
        if !self.elect_halted {
            return None;
        }
        let w = self.elect.best();
        (w >> 16 == self.epoch).then_some((w & 0xffff) as usize)
    }

    /// Post-step bookkeeping: leader duties and the status snapshot.
    fn after_step(&mut self, cx: &mut Ctx) {
        if let Some(leader) = self.settled_leader() {
            if leader == self.id && self.counted_epoch != Some(self.epoch) {
                self.counted_epoch = Some(self.epoch);
                control_metrics().elections.incr();
                flight::record(FlightKind::Election, self.epoch, leader as u64);
                self.status.lock().unwrap().elections_won += 1;
            }
            let unflooded = self.dead_mask & !self.flooded_mask;
            if leader == self.id && unflooded != 0 {
                // The leader owns the table: flood the assignment and
                // apply it locally. Receivers apply the same flood; the
                // shared target makes the application idempotent.
                cx.send_all(Payload::Assign {
                    epoch: self.epoch,
                    dead: self.dead_mask,
                });
                self.flooded_mask = self.dead_mask;
                control_metrics().failovers.incr();
                self.apply_dead(self.dead_mask);
            }
        }
        let mut st = self.status.lock().unwrap();
        st.epoch = self.epoch;
        st.leader = self.settled_leader();
        st.dead_mask = self.dead_mask;
    }
}

impl Process for ControlProc {
    fn on_start(&mut self, cx: &mut Ctx) {
        self.hb.on_start(cx);
        self.start_election(cx);
        self.after_step(cx);
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, cx: &mut Ctx) {
        match msg {
            Payload::Uid(_) => self.hb.on_message(from, msg, cx),
            Payload::Max(u) => {
                let msg_epoch = u >> 16;
                if msg_epoch > self.epoch {
                    // A peer is ahead (it detected a death we haven't):
                    // adopt its epoch and join the newer election.
                    self.epoch = msg_epoch;
                    self.start_election(cx);
                }
                if msg_epoch == self.epoch && !self.elect_halted {
                    run_elect(
                        &mut self.elect,
                        &mut self.elect_halted,
                        self.epoch,
                        cx,
                        |e, sub| e.on_message(from, msg, sub),
                    );
                }
                // Stale epochs are fenced: silently dropped.
            }
            // Apply current-or-newer assignments; a stale leader's
            // flood is ignored (its dead set is a subset of a newer
            // epoch's anyway, but the fence keeps the rule uniform).
            Payload::Assign { epoch, dead } if *epoch >= self.epoch => {
                self.apply_dead(*dead);
            }
            _ => {}
        }
        self.after_step(cx);
    }

    fn on_round(&mut self, round: u64, cx: &mut Ctx) {
        self.hb.on_round(round, cx);
        let mut suspect_mask = 0u64;
        for &s in self.hb.suspects() {
            suspect_mask |= 1 << s;
        }
        let new_dead = suspect_mask & !self.dead_mask;
        if new_dead != 0 {
            for shard in 0..64 {
                if new_dead & (1 << shard) != 0 {
                    flight::record(FlightKind::CrashDetect, shard as u64, self.epoch + 1);
                }
            }
            // Fresh deaths: bump the epoch and re-elect among survivors.
            self.dead_mask |= new_dead;
            self.epoch += 1;
            self.start_election(cx);
        }
        self.after_step(cx);
    }

    fn on_timer(&mut self, token: u64, cx: &mut Ctx) {
        // The token is the epoch the timer was armed under.
        if token == self.epoch && !self.elect_halted {
            run_elect(
                &mut self.elect,
                &mut self.elect_halted,
                self.epoch,
                cx,
                |e, sub| e.on_timer(0, sub),
            );
        }
        self.after_step(cx);
    }
}

/// The running control plane: one [`ControlProc`] per shard over a
/// [`LiveMesh`], all sharing the router's [`FailoverTarget`].
pub struct ControlPlane {
    mesh: LiveMesh,
    status: Vec<Arc<Mutex<NodeStatus>>>,
}

impl ControlPlane {
    /// Start `shards` control nodes. Node `i` monitors (and is co-located
    /// with) shard `i`; killing shard `i` should be paired with
    /// [`kill`](ControlPlane::kill)`(i)`.
    pub fn start(
        shards: usize,
        target: Arc<dyn FailoverTarget>,
        config: ControlConfig,
    ) -> io::Result<ControlPlane> {
        assert!(
            (1..=64).contains(&shards),
            "the dead-shard bitmask supports 1..=64 shards"
        );
        let status: Vec<Arc<Mutex<NodeStatus>>> = (0..shards)
            .map(|_| Arc::new(Mutex::new(NodeStatus::default())))
            .collect();
        let procs: Vec<BoxProcess> = (0..shards)
            .map(|id| {
                Box::new(ControlProc {
                    id,
                    epoch: 0,
                    hb: Heartbeat::new(config.heartbeat_timeout, u64::MAX),
                    elect: FtFloodMax::new(
                        uid(0, id),
                        config.election_period,
                        config.election_quiet,
                    ),
                    elect_halted: false,
                    dead_mask: 0,
                    flooded_mask: 0,
                    applied_mask: 0,
                    counted_epoch: None,
                    election_period: config.election_period,
                    election_quiet: config.election_quiet,
                    target: Arc::clone(&target),
                    status: Arc::clone(&status[id]),
                }) as BoxProcess
            })
            .collect();
        let mesh = LiveMesh::start(procs, config.tick)?;
        Ok(ControlPlane { mesh, status })
    }

    /// Crash-stop control node `node` (pair with the shard's own kill).
    pub fn kill(&self, node: usize) {
        self.mesh.kill(node);
    }

    /// A snapshot of one node's status.
    pub fn status(&self, node: usize) -> NodeStatus {
        self.status[node].lock().unwrap().clone()
    }

    /// Block until every node in `live` reports `dead` in its dead mask
    /// under a settled election, or the deadline passes. Returns whether
    /// the failover completed.
    pub fn await_failover(&self, dead: usize, live: &[usize], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let done = live.iter().all(|&v| {
                let st = self.status(v);
                st.dead_mask & (1 << dead) != 0 && st.leader.is_some()
            });
            if done {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stop every node and join the mesh.
    pub fn shutdown(self) {
        self.mesh.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A failover target that records calls instead of routing.
    struct FakeTarget {
        alive: AtomicU64,
        killed: Mutex<Vec<usize>>,
    }

    impl FakeTarget {
        fn new(n: usize) -> Arc<FakeTarget> {
            Arc::new(FakeTarget {
                alive: AtomicU64::new((1 << n) - 1),
                killed: Mutex::new(Vec::new()),
            })
        }
    }

    impl FailoverTarget for FakeTarget {
        fn mark_dead(&self, shard: usize) -> usize {
            let bit = 1u64 << shard;
            let prev = self.alive.fetch_and(!bit, Ordering::AcqRel);
            if prev & bit != 0 {
                self.killed.lock().unwrap().push(shard);
                7 // pretend vnode points moved
            } else {
                0
            }
        }

        fn alive_mask(&self) -> u64 {
            self.alive.load(Ordering::Acquire)
        }
    }

    #[test]
    fn three_nodes_elect_detect_a_death_and_reassign() {
        let target = FakeTarget::new(3);
        let plane = ControlPlane::start(
            3,
            Arc::clone(&target) as Arc<dyn FailoverTarget>,
            ControlConfig {
                tick: Duration::from_millis(5),
                ..ControlConfig::default()
            },
        )
        .unwrap();

        // Epoch 0 settles on the highest id.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let settled =
                (0..3).all(|v| plane.status(v).leader == Some(2) && plane.status(v).epoch == 0);
            if settled {
                break;
            }
            assert!(Instant::now() < deadline, "epoch-0 election never settled");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(target.killed.lock().unwrap().is_empty(), "nothing dead yet");

        // Kill the leader itself — the hardest case: detection AND
        // re-election must both work without it.
        plane.kill(2);
        assert!(
            plane.await_failover(2, &[0, 1], Duration::from_secs(10)),
            "survivors must detect, re-elect, and assign"
        );
        let st0 = plane.status(0);
        let st1 = plane.status(1);
        assert_eq!(st0.leader, Some(1), "highest survivor leads");
        assert_eq!(st1.leader, Some(1));
        assert!(st0.epoch >= 1, "the death bumped the epoch");
        assert_eq!(
            target.killed.lock().unwrap().as_slice(),
            &[2],
            "exactly the dead shard was reassigned, exactly once"
        );
        assert_eq!(target.alive_mask(), 0b011);
        plane.shutdown();
    }

    #[test]
    fn single_node_plane_elects_itself_and_never_fails_over() {
        let target = FakeTarget::new(1);
        let plane = ControlPlane::start(
            1,
            Arc::clone(&target) as Arc<dyn FailoverTarget>,
            ControlConfig {
                tick: Duration::from_millis(5),
                ..ControlConfig::default()
            },
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while plane.status(0).leader != Some(0) {
            assert!(Instant::now() < deadline, "lone node must elect itself");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(target.killed.lock().unwrap().is_empty());
        plane.shutdown();
    }
}
