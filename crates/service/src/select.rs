//! The `Select` request: algorithm selection as a service (`gp-taxonomy`
//! backing).
//!
//! A client states deployment requirements along the taxonomy's
//! dimensions (all kebab-case strings on the wire); the handler filters
//! the published catalog for applicability and returns the best choice by
//! asymptotic message complexity, plus every applicable alternative so
//! the client can second-guess the tie-break.

use gp_core::json::Json;
use gp_taxonomy::records::applicable;
use gp_taxonomy::{
    catalog, select_best, Fault, Problem, ProcessMgmt, Requirement, Sharing, Timing, Topology,
};

/// Select the best distributed algorithm for a deployment.
#[derive(Clone, Debug)]
pub struct SelectRequest {
    /// The deployment requirements.
    pub requirement: Requirement,
}

// `Requirement` derives no `PartialEq`; equality is canonical-JSON
// equality, which is also what the response cache keys on.
impl PartialEq for SelectRequest {
    fn eq(&self, other: &Self) -> bool {
        self.to_json().render() == other.to_json().render()
    }
}

// --- dimension name tables (kebab-case, both directions) ----------------

fn problem_name(p: Problem) -> &'static str {
    match p {
        Problem::LeaderElection => "leader-election",
        Problem::Broadcast => "broadcast",
        Problem::SpanningTree => "spanning-tree",
        Problem::Consensus => "consensus",
        Problem::MutualExclusion => "mutual-exclusion",
        Problem::FailureDetection => "failure-detection",
    }
}

fn problem_from(s: &str) -> Result<Problem, String> {
    Ok(match s {
        "leader-election" => Problem::LeaderElection,
        "broadcast" => Problem::Broadcast,
        "spanning-tree" => Problem::SpanningTree,
        "consensus" => Problem::Consensus,
        "mutual-exclusion" => Problem::MutualExclusion,
        "failure-detection" => Problem::FailureDetection,
        other => return Err(format!("unknown problem {other:?}")),
    })
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Arbitrary => "arbitrary",
        Topology::Ring => "ring",
        Topology::UniRing => "uni-ring",
        Topology::BiRing => "bi-ring",
        Topology::Complete => "complete",
        Topology::Tree => "tree",
        Topology::Star => "star",
        Topology::Grid => "grid",
    }
}

fn topology_from(s: &str) -> Result<Topology, String> {
    Ok(match s {
        "arbitrary" => Topology::Arbitrary,
        "ring" => Topology::Ring,
        "uni-ring" => Topology::UniRing,
        "bi-ring" => Topology::BiRing,
        "complete" => Topology::Complete,
        "tree" => Topology::Tree,
        "star" => Topology::Star,
        "grid" => Topology::Grid,
        other => return Err(format!("unknown topology {other:?}")),
    })
}

fn timing_name(t: Timing) -> &'static str {
    match t {
        Timing::Asynchronous => "asynchronous",
        Timing::PartiallySynchronous => "partially-synchronous",
        Timing::Synchronous => "synchronous",
    }
}

fn timing_from(s: &str) -> Result<Timing, String> {
    Ok(match s {
        "asynchronous" => Timing::Asynchronous,
        "partially-synchronous" => Timing::PartiallySynchronous,
        "synchronous" => Timing::Synchronous,
        other => return Err(format!("unknown timing {other:?}")),
    })
}

fn fault_name(f: Fault) -> &'static str {
    match f {
        Fault::None => "none",
        Fault::Crash => "crash",
        Fault::Omission => "omission",
        Fault::Byzantine => "byzantine",
    }
}

fn fault_from(s: &str) -> Result<Fault, String> {
    Ok(match s {
        "none" => Fault::None,
        "crash" => Fault::Crash,
        "omission" => Fault::Omission,
        "byzantine" => Fault::Byzantine,
        other => return Err(format!("unknown fault class {other:?}")),
    })
}

fn sharing_name(s: Sharing) -> &'static str {
    match s {
        Sharing::MessagePassing => "message-passing",
        Sharing::SharedMemory => "shared-memory",
    }
}

fn sharing_from(s: &str) -> Result<Sharing, String> {
    Ok(match s {
        "message-passing" => Sharing::MessagePassing,
        "shared-memory" => Sharing::SharedMemory,
        other => return Err(format!("unknown sharing {other:?}")),
    })
}

fn process_mgmt_name(p: ProcessMgmt) -> &'static str {
    match p {
        ProcessMgmt::Static => "static",
        ProcessMgmt::Dynamic => "dynamic",
    }
}

fn process_mgmt_from(s: &str) -> Result<ProcessMgmt, String> {
    Ok(match s {
        "static" => ProcessMgmt::Static,
        "dynamic" => ProcessMgmt::Dynamic,
        other => return Err(format!("unknown process management {other:?}")),
    })
}

impl SelectRequest {
    /// Canonical JSON form (field order fixed — cache keys depend on it).
    pub fn to_json(&self) -> Json {
        let r = &self.requirement;
        Json::obj()
            .field("problem", problem_name(r.problem))
            .field("topology", topology_name(r.topology))
            .field("timing", timing_name(r.network_timing))
            .field("fault", fault_name(r.fault_needed))
            .field("sharing", sharing_name(r.sharing))
            .field("process-mgmt", process_mgmt_name(r.process_mgmt))
    }

    /// Decode from the `req` object of a request envelope. `problem`,
    /// `topology`, and `timing` are required; the remaining dimensions
    /// default as in [`Requirement::basic`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let required = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("select: missing string field '{key}'"))
        };
        let mut req = Requirement::basic(
            problem_from(required("problem")?)?,
            topology_from(required("topology")?)?,
            timing_from(required("timing")?)?,
        );
        if let Some(s) = j.get("fault").and_then(Json::as_str) {
            req.fault_needed = fault_from(s)?;
        }
        if let Some(s) = j.get("sharing").and_then(Json::as_str) {
            req.sharing = sharing_from(s)?;
        }
        if let Some(s) = j.get("process-mgmt").and_then(Json::as_str) {
            req.process_mgmt = process_mgmt_from(s)?;
        }
        Ok(SelectRequest { requirement: req })
    }
}

fn algorithm_json(alg: &gp_taxonomy::DistAlgorithm) -> Json {
    Json::obj()
        .field("name", alg.name)
        .field("impl", alg.impl_id)
        .field("messages", alg.messages.to_string())
        .field("time", alg.time.to_string())
        .field("local_computation", alg.local_computation.to_string())
}

/// Filter the catalog and pick the best applicable algorithm.
pub fn handle(req: &SelectRequest) -> Result<Json, String> {
    let algorithms = catalog();
    let applicable_names: Vec<Json> = algorithms
        .iter()
        .filter(|a| applicable(a, &req.requirement))
        .map(|a| Json::from(a.name))
        .collect();
    let selected = match select_best(&algorithms, &req.requirement) {
        Some(alg) => algorithm_json(alg),
        None => Json::Null,
    };
    Ok(Json::obj()
        .field("selected", selected)
        .field("applicable", applicable_names))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_election_selects_an_algorithm() {
        let req = SelectRequest {
            requirement: Requirement::basic(
                Problem::LeaderElection,
                Topology::BiRing,
                Timing::Asynchronous,
            ),
        };
        let payload = handle(&req).unwrap();
        let selected = payload.get("selected").unwrap();
        assert_ne!(
            selected,
            &Json::Null,
            "catalog has ring election: {payload:?}"
        );
        assert!(selected.get("name").and_then(Json::as_str).is_some());
        assert!(selected.get("messages").and_then(Json::as_str).is_some());
    }

    #[test]
    fn impossible_requirements_yield_null_not_error() {
        // Byzantine fault tolerance is outside the catalog.
        let mut requirement = Requirement::basic(
            Problem::LeaderElection,
            Topology::Ring,
            Timing::Asynchronous,
        );
        requirement.fault_needed = Fault::Byzantine;
        let payload = handle(&SelectRequest { requirement }).unwrap();
        assert_eq!(payload.get("selected"), Some(&Json::Null));
        assert_eq!(
            payload
                .get("applicable")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn wire_names_round_trip_for_every_dimension_value() {
        for p in [
            Problem::LeaderElection,
            Problem::Broadcast,
            Problem::SpanningTree,
            Problem::Consensus,
            Problem::MutualExclusion,
            Problem::FailureDetection,
        ] {
            assert_eq!(problem_from(problem_name(p)).unwrap(), p);
        }
        for t in [
            Topology::Arbitrary,
            Topology::Ring,
            Topology::UniRing,
            Topology::BiRing,
            Topology::Complete,
            Topology::Tree,
            Topology::Star,
            Topology::Grid,
        ] {
            assert_eq!(topology_from(topology_name(t)).unwrap(), t);
        }
        for t in [
            Timing::Asynchronous,
            Timing::PartiallySynchronous,
            Timing::Synchronous,
        ] {
            assert_eq!(timing_from(timing_name(t)).unwrap(), t);
        }
        for f in [Fault::None, Fault::Crash, Fault::Omission, Fault::Byzantine] {
            assert_eq!(fault_from(fault_name(f)).unwrap(), f);
        }
        for s in [Sharing::MessagePassing, Sharing::SharedMemory] {
            assert_eq!(sharing_from(sharing_name(s)).unwrap(), s);
        }
        for p in [ProcessMgmt::Static, ProcessMgmt::Dynamic] {
            assert_eq!(process_mgmt_from(process_mgmt_name(p)).unwrap(), p);
        }
    }

    #[test]
    fn request_json_round_trips_with_defaults() {
        let j = Json::parse(
            r#"{"problem":"spanning-tree","topology":"arbitrary","timing":"asynchronous"}"#,
        )
        .unwrap();
        let req = SelectRequest::from_json(&j).unwrap();
        let back = SelectRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            req.to_json().get("fault").and_then(Json::as_str),
            Some("none")
        );
    }
}
