//! The readiness-polled reactor front end: one thread, one `epoll`
//! instance, thousands of connections.
//!
//! The blocking path in [`crate::server`] spends a thread per connection;
//! at "mostly idle, occasionally chatty" scale the bottleneck becomes
//! thread stacks and scheduler churn, not work. The reactor replaces it
//! with level-triggered readiness polling over raw `epoll_*` calls (the
//! [`sys`] FFI shim binds the handful of libc symbols std already links —
//! no external crate):
//!
//! - **Nonblocking accept** with an admission cap: past
//!   [`ReactorConfig::max_connections`] a new peer gets one retriable
//!   `Overloaded` frame and a close, mirroring queue-level shedding.
//! - **Incremental reads** through [`crate::wire::FrameDecoder`]: partial
//!   frames carry over between readiness events.
//! - **Request pipelining**: every decoded frame is submitted immediately
//!   with a per-connection sequence tag; workers complete out of order,
//!   the connection's reorder buffer emits responses in request order —
//!   so the wire bytes are identical to the blocking path's for the same
//!   request stream (the oracle property `gp-bench` proves).
//! - **Write backpressure**: responses buffer per connection; when the
//!   outbound buffer tops [`ReactorConfig::outbuf_cap`] the reactor drops
//!   *read* interest (a client that stops draining stops being served)
//!   and re-registers it once the buffer drains below the cap.
//! - **Cross-thread wakeup**: workers finish on pool threads; completions
//!   land in a queue and a byte on a nonblocking self-pipe breaks
//!   `epoll_wait` so the reactor flushes them.
//!
//! Telemetry: `service.conn.open` gauge, `service.conn.shed` counter,
//! `service.reactor.{wakeups,spurious}` counters, and a
//! `service.reactor.pipeline.depth` histogram recorded per submitted
//! request.

#[cfg(target_os = "linux")]
use crate::request::{decode_request_traced, encode_response, Response};
#[cfg(target_os = "linux")]
use crate::wire::{encode_frame, FrameDecoder};
#[cfg(target_os = "linux")]
use std::collections::BTreeMap;
use std::io;
#[cfg(target_os = "linux")]
use std::io::{Read, Write};
use std::net::SocketAddr;
#[cfg(target_os = "linux")]
use std::net::{TcpListener, TcpStream};
#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;
#[cfg(target_os = "linux")]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
#[cfg(target_os = "linux")]
use std::sync::Mutex;
#[cfg(target_os = "linux")]
use std::thread::JoinHandle;

/// The request sink a reactor serves: [`crate::Service`] (one instance)
/// and [`crate::shard::ShardRouter`] (a consistent-hash fleet) both
/// implement it. Submission must not block: admission control answers
/// `Overloaded` through the callback instead of back-pressuring the
/// reactor thread.
pub trait SubmitRequest: Send + Sync + 'static {
    /// Submit one decoded request with an optional trace handle (the
    /// sampled context plus the caller's span to parent under); `reply`
    /// is invoked exactly once, on whatever thread completes the request.
    fn submit_traced(
        &self,
        request: crate::request::Request,
        trace: Option<gp_telemetry::trace::TraceHandle>,
        reply: ReplyFn,
    );

    /// Submit one untraced request — identical to passing `None`.
    fn submit_with(&self, request: crate::request::Request, reply: ReplyFn) {
        self.submit_traced(request, None, reply);
    }
}

/// The one-shot completion callback handed to [`SubmitRequest`].
pub type ReplyFn = Box<dyn FnOnce(Response) + Send + 'static>;

/// Raw-syscall shim. These symbols live in the libc that `std` already
/// links on Linux; declaring them here keeps the crate dependency-free.
#[cfg(target_os = "linux")]
pub(crate) mod sys {
    use std::os::fd::RawFd;

    // x86-64 epoll_event is packed (the kernel ABI predates alignment
    // sanity); other architectures use natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;

    pub const O_NONBLOCK: i32 = 0x800;
    pub const O_CLOEXEC: i32 = 0x8_0000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut [u64; 2]) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const [u64; 2]) -> i32;
        pub fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const i32,
            optlen: u32,
        ) -> i32;
    }

    pub const RLIMIT_NOFILE: i32 = 7;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;

    /// Pin a socket's kernel send buffer (disables autotuning for it).
    pub fn set_sndbuf(fd: RawFd, bytes: usize) -> std::io::Result<()> {
        let val = bytes.min(i32::MAX as usize) as i32;
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                &val,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// The calling thread's errno, for the handful of raw calls here.
    pub fn errno() -> i32 {
        std::io::Error::last_os_error().raw_os_error().unwrap_or(0)
    }

    /// RAII epoll instance.
    pub struct Epoll {
        pub fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> std::io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        pub fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
            let mut ev = EpollEvent { events, data };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
            loop {
                let rc = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    return rc as usize;
                }
                if errno() != 4 {
                    // Anything but EINTR is fatal to the loop; treat as
                    // no events and let the caller's stop flag decide.
                    return 0;
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// Nonblocking self-pipe: the cross-thread wakeup channel.
    pub struct WakePipe {
        pub rd: RawFd,
        pub wr: RawFd,
    }

    impl WakePipe {
        pub fn new() -> std::io::Result<WakePipe> {
            let mut fds = [0i32; 2];
            let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(WakePipe {
                rd: fds[0],
                wr: fds[1],
            })
        }

        /// Make the reactor's next `epoll_wait` return. A full pipe means
        /// a wakeup is already pending — EAGAIN is success here.
        pub fn wake(&self) {
            let byte = 1u8;
            unsafe { write(self.wr, &byte, 1) };
        }

        /// Drain every pending wakeup byte.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while unsafe { read(self.rd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.rd);
                close(self.wr);
            }
        }
    }
}

/// Raise the process's open-file soft limit toward its hard limit and
/// return the resulting soft limit. Connection sweeps (E14) need more
/// descriptors than the usual 1024 default; everything else ignores this.
#[cfg(target_os = "linux")]
pub fn raise_fd_limit() -> u64 {
    unsafe {
        let mut lim = [0u64; 2];
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim[0] < lim[1] {
            let want = [lim[1], lim[1]];
            let _ = sys::setrlimit(sys::RLIMIT_NOFILE, &want);
            if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
                return 1024;
            }
        }
        lim[0]
    }
}

/// Non-Linux fallback: report a conservative limit; the reactor itself is
/// Linux-only and `Service::listen_reactor` returns `Unsupported` there.
#[cfg(not(target_os = "linux"))]
pub fn raise_fd_limit() -> u64 {
    1024
}

/// Tuning knobs for one [`Reactor`].
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Connections admitted concurrently; one beyond this is shed with a
    /// retriable `Overloaded` frame and closed.
    pub max_connections: usize,
    /// Outbound bytes buffered per connection before read interest is
    /// dropped (resumed once the peer drains below the cap).
    pub outbuf_cap: usize,
    /// Explicit `SO_SNDBUF` for accepted sockets. `None` leaves kernel
    /// autotuning on; a value pins the send buffer (and disables
    /// autotuning), making the userspace `outbuf_cap` the real bound on
    /// per-connection memory instead of `outbuf_cap + however much the
    /// kernel feels like buffering`.
    pub sndbuf: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 4096,
            outbuf_cap: 256 << 10,
            sndbuf: None,
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux_impl::{Reactor, ReactorHandle};

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::*;
    use sys::{Epoll, EpollEvent, WakePipe};

    /// One completed request on its way back to a connection.
    struct Completion {
        token: u32,
        gen: u32,
        /// Per-connection sequence tag assigned at submit.
        seq: u64,
        /// Fully rendered response frame payload.
        frame: String,
    }

    /// Worker-to-reactor channel: completions plus the pipe that breaks
    /// `epoll_wait`.
    struct CompletionQueue {
        items: Mutex<Vec<Completion>>,
        pipe: WakePipe,
    }

    impl CompletionQueue {
        fn push(&self, c: Completion) {
            self.items.lock().unwrap().push(c);
            self.pipe.wake();
        }

        fn drain(&self) -> Vec<Completion> {
            std::mem::take(&mut *self.items.lock().unwrap())
        }
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        decoder: FrameDecoder,
        /// Outbound bytes not yet accepted by the kernel.
        outbuf: Vec<u8>,
        /// Prefix of `outbuf` already written (compacted lazily).
        out_pos: usize,
        /// Sequence tag for the next submitted request.
        next_seq: u64,
        /// Sequence tag the wire is waiting on (responses emit in request
        /// order; later completions park in `pending`).
        next_deliver: u64,
        /// Out-of-order completions keyed by sequence tag.
        pending: BTreeMap<u64, String>,
        /// Requests submitted but not yet appended to `outbuf`.
        in_flight: usize,
        /// Peer sent EOF; serve what's in flight, then close.
        read_closed: bool,
        /// Read interest currently registered with epoll.
        want_read: bool,
        /// Write interest currently registered with epoll.
        want_write: bool,
    }

    struct Slot {
        gen: u32,
        conn: Option<Conn>,
    }

    const LISTENER_TOKEN: u64 = u64::MAX;
    const WAKE_TOKEN: u64 = u64::MAX - 1;

    fn pack(token: u32, gen: u32) -> u64 {
        (u64::from(gen) << 32) | u64::from(token)
    }

    /// The event loop state, owned by the reactor thread.
    pub struct Reactor {
        epoll: Epoll,
        listener: TcpListener,
        slots: Vec<Slot>,
        free: Vec<u32>,
        open: usize,
        completions: Arc<CompletionQueue>,
        submit: Arc<dyn SubmitRequest>,
        config: ReactorConfig,
        stop: Arc<AtomicBool>,
    }

    /// Join handle for a running reactor; [`ReactorHandle::shutdown`]
    /// stops the loop and closes every connection.
    pub struct ReactorHandle {
        stop: Arc<AtomicBool>,
        completions: Arc<CompletionQueue>,
        thread: Option<JoinHandle<()>>,
        local_addr: SocketAddr,
    }

    impl ReactorHandle {
        /// The bound listen address.
        pub fn local_addr(&self) -> SocketAddr {
            self.local_addr
        }

        /// Stop the loop, close all connections, join the thread.
        pub fn shutdown(&mut self) {
            self.stop.store(true, Ordering::Release);
            self.completions.pipe.wake();
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    impl Drop for ReactorHandle {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    impl Reactor {
        /// Bind `addr` and run the loop on a dedicated thread.
        pub fn start(
            addr: &str,
            submit: Arc<dyn SubmitRequest>,
            config: ReactorConfig,
        ) -> io::Result<ReactorHandle> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let local_addr = listener.local_addr()?;
            let epoll = Epoll::new()?;
            let completions = Arc::new(CompletionQueue {
                items: Mutex::new(Vec::new()),
                pipe: WakePipe::new()?,
            });
            epoll.ctl(
                sys::EPOLL_CTL_ADD,
                listener.as_raw_fd(),
                sys::EPOLLIN,
                LISTENER_TOKEN,
            )?;
            epoll.ctl(
                sys::EPOLL_CTL_ADD,
                completions.pipe.rd,
                sys::EPOLLIN,
                WAKE_TOKEN,
            )?;
            let stop = Arc::new(AtomicBool::new(false));
            let mut reactor = Reactor {
                epoll,
                listener,
                slots: Vec::new(),
                free: Vec::new(),
                open: 0,
                completions: Arc::clone(&completions),
                submit,
                config,
                stop: Arc::clone(&stop),
            };
            let thread = std::thread::Builder::new()
                .name("gp-service-reactor".into())
                .spawn(move || reactor.run())?;
            Ok(ReactorHandle {
                stop,
                completions,
                thread: Some(thread),
                local_addr,
            })
        }

        fn run(&mut self) {
            let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
            while !self.stop.load(Ordering::Acquire) {
                let n = self.epoll.wait(&mut events, -1);
                gp_telemetry::counter("service.reactor.wakeups").incr();
                let mut any_work = false;
                for ev in events.iter().take(n) {
                    let (data, bits) = (ev.data, ev.events);
                    match data {
                        LISTENER_TOKEN => {
                            any_work = true;
                            self.accept_ready();
                        }
                        WAKE_TOKEN => {
                            self.completions.pipe.drain();
                        }
                        packed => {
                            any_work = true;
                            let token = (packed & 0xffff_ffff) as u32;
                            let gen = (packed >> 32) as u32;
                            self.conn_ready(token, gen, bits);
                        }
                    }
                }
                // Apply completions last so responses finished while we
                // were reading flush in the same iteration.
                let completed = self.apply_completions();
                if !any_work && !completed {
                    gp_telemetry::counter("service.reactor.spurious").incr();
                }
            }
            // Drop every connection (gauge kept honest) before exiting.
            for idx in 0..self.slots.len() {
                if self.slots[idx].conn.is_some() {
                    self.close(idx as u32);
                }
            }
        }

        fn accept_ready(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.open >= self.config.max_connections {
                            self.shed_connection(stream);
                            continue;
                        }
                        if self.register(stream).is_err() {
                            continue;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
        }

        /// Over the admission cap: one retriable `Overloaded` frame, then
        /// close. The frame is written blockingly — it is 40 bytes into an
        /// empty socket buffer, so it cannot wedge the loop.
        fn shed_connection(&self, stream: TcpStream) {
            gp_telemetry::counter("service.conn.shed").incr();
            let mut stream = stream;
            let _ = stream.set_nonblocking(false);
            let _ =
                crate::wire::write_frame(&mut stream, &encode_response(0, &Response::Overloaded));
        }

        fn register(&mut self, stream: TcpStream) -> io::Result<()> {
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            if let Some(bytes) = self.config.sndbuf {
                sys::set_sndbuf(stream.as_raw_fd(), bytes)?;
            }
            let fd = stream.as_raw_fd();
            let token = match self.free.pop() {
                Some(t) => t,
                None => {
                    self.slots.push(Slot { gen: 0, conn: None });
                    (self.slots.len() - 1) as u32
                }
            };
            let gen = self.slots[token as usize].gen;
            self.epoll.ctl(
                sys::EPOLL_CTL_ADD,
                fd,
                sys::EPOLLIN | sys::EPOLLRDHUP,
                pack(token, gen),
            )?;
            self.slots[token as usize].conn = Some(Conn {
                stream,
                decoder: FrameDecoder::new(),
                outbuf: Vec::new(),
                out_pos: 0,
                next_seq: 0,
                next_deliver: 0,
                pending: BTreeMap::new(),
                in_flight: 0,
                read_closed: false,
                want_read: true,
                want_write: false,
            });
            self.open += 1;
            gp_telemetry::gauge("service.conn.open").add(1);
            Ok(())
        }

        fn close(&mut self, token: u32) {
            let slot = &mut self.slots[token as usize];
            if let Some(conn) = slot.conn.take() {
                let _ = self
                    .epoll
                    .ctl(sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(token);
                self.open -= 1;
                gp_telemetry::gauge("service.conn.open").sub(1);
            }
        }

        fn conn_ready(&mut self, token: u32, gen: u32, bits: u32) {
            {
                let Some(slot) = self.slots.get(token as usize) else {
                    return;
                };
                if slot.gen != gen || slot.conn.is_none() {
                    return; // stale event for a recycled slot
                }
            }
            if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                self.close(token);
                return;
            }
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !self.read_ready(token) {
                return; // connection closed during read handling
            }
            if bits & sys::EPOLLOUT != 0 {
                self.flush(token);
            }
        }

        /// Drain the socket, decode frames, submit requests. Returns false
        /// when the connection was closed.
        fn read_ready(&mut self, token: u32) -> bool {
            let mut buf = [0u8; 16 << 10];
            loop {
                let conn = self.slots[token as usize].conn.as_mut().unwrap();
                if !conn.want_read {
                    // Backpressured (or already EOF'd): leave the bytes in
                    // the kernel buffer; level-triggered epoll will
                    // re-report once interest returns.
                    return true;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        self.update_interest(token);
                        return self.maybe_finish(token);
                    }
                    Ok(n) => {
                        let conn = self.slots[token as usize].conn.as_mut().unwrap();
                        conn.decoder.feed(&buf[..n]);
                        if !self.decode_and_submit(token) {
                            return false;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return self.maybe_finish(token);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(token);
                        return false;
                    }
                }
            }
        }

        /// Pop every complete frame from the decoder and submit it.
        /// Returns false when a protocol error closed the connection.
        fn decode_and_submit(&mut self, token: u32) -> bool {
            loop {
                let conn = self.slots[token as usize].conn.as_mut().unwrap();
                let frame = match conn.decoder.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => return true,
                    Err(_) => {
                        // Oversized or non-UTF-8: the stream is poisoned;
                        // match the blocking path and hang up.
                        gp_telemetry::counter("service.reactor.protocol_errors").incr();
                        self.close(token);
                        return false;
                    }
                };
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.in_flight += 1;
                gp_telemetry::histogram("service.reactor.pipeline.depth")
                    .record(conn.in_flight as u64);
                let gen = self.slots[token as usize].gen;
                match decode_request_traced(&frame) {
                    Ok((id, request, wire_trace)) => {
                        // Tracing is strictly opt-in on the wire: only a
                        // frame carrying a `trace` field can be sampled,
                        // and the 1-in-N sampler gates even those. The
                        // root `reactor` span rides in the completion
                        // callback and closes — publishing the trace if
                        // it holds the last clone — before the response
                        // is handed to the event loop for writing.
                        let traced = wire_trace.and_then(gp_telemetry::trace::sample).map(|ctx| {
                            let root = ctx.span("reactor", None);
                            let handle = gp_telemetry::trace::TraceHandle {
                                ctx,
                                parent: Some(root.id()),
                            };
                            (handle, root)
                        });
                        let (handle, root) = match traced {
                            Some((h, r)) => (Some(h), Some(r)),
                            None => (None, None),
                        };
                        let completions = Arc::clone(&self.completions);
                        self.submit.submit_traced(
                            request,
                            handle,
                            Box::new(move |resp| {
                                drop(root);
                                completions.push(Completion {
                                    token,
                                    gen,
                                    seq,
                                    frame: encode_response(id, &resp),
                                });
                            }),
                        );
                    }
                    Err(e) => {
                        // Malformed request in a well-formed frame: error
                        // response with id 0, connection stays up — same
                        // as the blocking path.
                        self.completions.push(Completion {
                            token,
                            gen,
                            seq,
                            frame: encode_response(0, &Response::Error { message: e }),
                        });
                    }
                }
            }
        }

        /// Move drained completions into their connections' reorder
        /// buffers and flush. Returns true if any completion was applied.
        fn apply_completions(&mut self) -> bool {
            let batch = self.completions.drain();
            if batch.is_empty() {
                return false;
            }
            let mut touched = Vec::new();
            for c in batch {
                let Some(slot) = self.slots.get_mut(c.token as usize) else {
                    continue;
                };
                if slot.gen != c.gen {
                    continue; // connection closed while the worker ran
                }
                let Some(conn) = slot.conn.as_mut() else {
                    continue;
                };
                conn.pending.insert(c.seq, c.frame);
                touched.push(c.token);
            }
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                let conn = self.slots[token as usize].conn.as_mut().unwrap();
                // Emit in request order: only the contiguous prefix.
                while let Some(frame) = conn.pending.remove(&conn.next_deliver) {
                    conn.next_deliver += 1;
                    conn.in_flight -= 1;
                    encode_frame(&mut conn.outbuf, &frame);
                }
                self.flush(token);
            }
            true
        }

        /// Write as much outbound data as the kernel accepts; update
        /// interest and possibly close a drained, EOF'd connection.
        fn flush(&mut self, token: u32) {
            let mut broken = false;
            {
                let conn = match self.slots[token as usize].conn.as_mut() {
                    Some(c) => c,
                    None => return,
                };
                while conn.out_pos < conn.outbuf.len() {
                    match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                        Ok(0) => {
                            broken = true;
                            break;
                        }
                        Ok(n) => conn.out_pos += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
                if conn.out_pos == conn.outbuf.len() {
                    conn.outbuf.clear();
                    conn.out_pos = 0;
                } else if conn.out_pos > (64 << 10) {
                    conn.outbuf.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
            }
            if broken {
                self.close(token);
                return;
            }
            self.update_interest(token);
            self.maybe_finish(token);
        }

        /// Recompute and (if changed) re-register epoll interest:
        /// read while the peer is open and the outbuf is under the cap,
        /// write while the outbuf is nonempty.
        fn update_interest(&mut self, token: u32) {
            let gen = self.slots[token as usize].gen;
            let conn = match self.slots[token as usize].conn.as_mut() {
                Some(c) => c,
                None => return,
            };
            let backlog = conn.outbuf.len() - conn.out_pos;
            let want_read = !conn.read_closed && backlog <= self.config.outbuf_cap;
            let want_write = backlog > 0;
            if want_read == conn.want_read && want_write == conn.want_write {
                return;
            }
            if !want_read && conn.want_read {
                gp_telemetry::counter("service.reactor.read_pauses").incr();
            }
            conn.want_read = want_read;
            conn.want_write = want_write;
            let mut bits = sys::EPOLLRDHUP;
            if want_read {
                bits |= sys::EPOLLIN;
            }
            if want_write {
                bits |= sys::EPOLLOUT;
            }
            let fd = conn.stream.as_raw_fd();
            let _ = self
                .epoll
                .ctl(sys::EPOLL_CTL_MOD, fd, bits, pack(token, gen));
        }

        /// Close once the peer has EOF'd and every admitted request has
        /// been answered and written. Returns false if closed.
        fn maybe_finish(&mut self, token: u32) -> bool {
            let conn = match self.slots[token as usize].conn.as_ref() {
                Some(c) => c,
                None => return false,
            };
            if conn.read_closed
                && conn.in_flight == 0
                && conn.pending.is_empty()
                && conn.out_pos == conn.outbuf.len()
            {
                self.close(token);
                return false;
            }
            true
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::lint::LintRequest;
    use crate::request::{decode_response, encode_request, Request, Response};
    use crate::server::{Service, ServiceConfig};
    use crate::simplify::{EnvSpec, SimplifyRequest};
    use crate::wire::{read_frame, write_frame, TcpClient};
    use gp_core::json::Json;
    use gp_rewrite::{BinOp, Expr, Type};
    use std::net::TcpStream;
    use std::time::Duration;

    fn lint_req(i: usize) -> Request {
        Request::Lint(LintRequest {
            name: format!("p{i}"),
            program: "container xs vector\niter it = begin xs\nderef it\n".into(),
        })
    }

    fn simplify_req(i: usize) -> Request {
        Request::Simplify(SimplifyRequest {
            expr: Expr::bin(
                BinOp::Mul,
                Expr::var(format!("x{i}"), Type::Int),
                Expr::int(1),
            ),
            env: EnvSpec::Standard,
        })
    }

    #[test]
    fn reactor_round_trips_requests_and_matches_blocking_bytes() {
        let mut blocking = Service::start(ServiceConfig::default());
        let baddr = blocking.listen("127.0.0.1:0").unwrap();
        let mut reactor = Service::start(ServiceConfig::default());
        let raddr = reactor
            .listen_reactor("127.0.0.1:0", ReactorConfig::default())
            .unwrap();

        let reqs: Vec<Request> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    lint_req(i)
                } else {
                    simplify_req(i)
                }
            })
            .collect();
        let mut bc = TcpClient::connect(baddr).unwrap();
        let mut rc = TcpClient::connect(raddr).unwrap();
        for req in &reqs {
            let b = bc.call(req).unwrap();
            let r = rc.call(req).unwrap();
            assert_eq!(b, r, "reactor answers byte-identically to blocking");
            assert!(matches!(b, Response::Ok { .. }));
        }
        assert_eq!(reactor.shutdown().in_flight(), 0);
        assert_eq!(blocking.shutdown().in_flight(), 0);
    }

    #[test]
    fn pipelined_requests_come_back_in_request_order() {
        let mut svc = Service::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let addr = svc
            .listen_reactor("127.0.0.1:0", ReactorConfig::default())
            .unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        // 16 requests in flight on one connection; workers complete them
        // out of order, the reactor's reorder buffer restores order.
        let reqs: Vec<Request> = (0..16).map(simplify_req).collect();
        let responses = client.call_pipelined(&reqs).unwrap();
        assert_eq!(responses.len(), 16);
        for (req, resp) in reqs.iter().zip(&responses) {
            let solo = req.handle().unwrap().render();
            match resp {
                Response::Ok { payload } => assert_eq!(payload, &solo),
                other => panic!("{other:?}"),
            }
        }
        let stats = svc.shutdown();
        assert_eq!(stats.in_flight(), 0);
        assert_eq!(stats.accepted, stats.completed + stats.shed);
    }

    #[test]
    fn connection_cap_sheds_with_a_retriable_frame() {
        let mut svc = Service::start(ServiceConfig::default());
        let addr = svc
            .listen_reactor(
                "127.0.0.1:0",
                ReactorConfig {
                    max_connections: 2,
                    ..ReactorConfig::default()
                },
            )
            .unwrap();
        let mut keep: Vec<TcpClient> = Vec::new();
        let mut shed = 0;
        for i in 0..6 {
            let mut c = TcpClient::connect(addr).unwrap();
            // Prove the connection is live (or learn it was shed).
            match c.call(&lint_req(i)) {
                Ok(Response::Ok { .. }) => keep.push(c),
                Ok(_) | Err(_) => shed += 1,
            }
            if keep.len() > 2 {
                panic!("cap of 2 exceeded");
            }
        }
        assert_eq!(keep.len(), 2, "exactly the cap stays connected");
        assert!(shed >= 4);
        // A shed peer reads one Overloaded frame, then clean EOF.
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = read_frame(&mut raw).unwrap().unwrap();
        let (_, resp) = decode_response(&frame).unwrap();
        assert_eq!(resp, Response::Overloaded);
        assert_eq!(read_frame(&mut raw).unwrap(), None, "then EOF");
        drop(keep);
        svc.shutdown();
    }

    #[test]
    fn half_close_still_drains_all_pipelined_responses() {
        let mut svc = Service::start(ServiceConfig::default());
        let addr = svc
            .listen_reactor("127.0.0.1:0", ReactorConfig::default())
            .unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        let n = 8;
        for i in 0..n {
            write_frame(&mut stream, &encode_request(i as u64 + 1, &lint_req(i))).unwrap();
        }
        // Shut down our write half: the server must still answer all 8.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for i in 0..n {
            let frame = read_frame(&mut stream).unwrap().expect("response frame");
            let (id, resp) = decode_response(&frame).unwrap();
            assert_eq!(id, i as u64 + 1, "in request order");
            assert!(matches!(resp, Response::Ok { .. }));
        }
        assert_eq!(read_frame(&mut stream).unwrap(), None, "server closed");
        assert_eq!(svc.shutdown().in_flight(), 0);
    }

    #[test]
    fn malformed_request_in_valid_frame_gets_error_id_zero() {
        let mut svc = Service::start(ServiceConfig::default());
        let addr = svc
            .listen_reactor("127.0.0.1:0", ReactorConfig::default())
            .unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, "this is not a request").unwrap();
        let reply = read_frame(&mut raw).unwrap().unwrap();
        let j = Json::parse(&reply).unwrap();
        assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(j.get("id").and_then(Json::as_f64), Some(0.0));
        // The connection survives: a valid request still answers.
        write_frame(&mut raw, &encode_request(9, &lint_req(0))).unwrap();
        let (id, resp) = decode_response(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert_eq!(id, 9);
        assert!(matches!(resp, Response::Ok { .. }));
        drop(raw);
        svc.shutdown();
    }

    #[test]
    fn backpressure_pauses_reads_and_resumes_when_drained() {
        // A tiny outbuf cap plus a client that floods requests without
        // reading: the reactor must keep memory bounded (pause reads once
        // the backlog exceeds the cap) yet deliver everything, in order,
        // once the client drains. Responses must be big enough in
        // aggregate to defeat kernel socket buffering, so each request
        // simplifies a wide sum that renders to ~20 KiB.
        let mut svc = Service::start(ServiceConfig {
            workers: 2,
            queue_depth: 512,
            ..ServiceConfig::default()
        });
        let addr = svc
            .listen_reactor(
                "127.0.0.1:0",
                ReactorConfig {
                    outbuf_cap: 1024,
                    // Pin the server-side send buffer: without this,
                    // loopback autotuning absorbs megabytes and the
                    // backlog never reaches userspace.
                    sndbuf: Some(4096),
                    ..ReactorConfig::default()
                },
            )
            .unwrap();
        let big = {
            let mut e = Expr::var("really_long_variable_name_number_0", Type::Int);
            for j in 1..160 {
                e = Expr::bin(
                    BinOp::Add,
                    e,
                    Expr::var(format!("really_long_variable_name_number_{j}"), Type::Int),
                );
            }
            Request::Simplify(SimplifyRequest {
                expr: e,
                env: EnvSpec::Standard,
            })
        };
        let before = gp_telemetry::snapshot();
        let stream = TcpStream::connect(addr).unwrap();
        // Clamp the client's receive buffer too, so the advertised
        // window stays tiny and the jam forms quickly.
        {
            use std::os::fd::AsRawFd;
            const SO_RCVBUF: i32 = 8;
            let bytes: i32 = 4096;
            let rc = unsafe {
                sys::setsockopt(
                    stream.as_raw_fd(),
                    sys::SOL_SOCKET,
                    SO_RCVBUF,
                    &bytes,
                    std::mem::size_of::<i32>() as u32,
                )
            };
            assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
        }
        let n = 24u64;
        let writer = {
            // The writer blocks once the reactor pauses reads — that is
            // the point — so it must not share the reading thread.
            let mut tx = stream.try_clone().unwrap();
            let req = big.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    write_frame(&mut tx, &encode_request(i + 1, &req)).unwrap();
                }
            })
        };
        // Let completions pile up against the unread socket first.
        std::thread::sleep(Duration::from_millis(300));
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        for i in 0..n {
            let frame = read_frame(&mut stream).unwrap().expect("response");
            let (id, resp) = decode_response(&frame).unwrap();
            assert_eq!(id, i + 1, "in-order despite pauses");
            assert!(matches!(resp, Response::Ok { .. }));
        }
        writer.join().unwrap();
        let delta = gp_telemetry::snapshot().delta(&before);
        assert!(
            delta.counter("service.reactor.read_pauses") > 0,
            "a non-draining client must trip read backpressure"
        );
        drop(stream);
        let stats = svc.shutdown();
        assert_eq!(stats.in_flight(), 0);
    }
}

/// Non-Linux stub: the reactor needs epoll; other platforms keep the
/// blocking path.
#[cfg(not(target_os = "linux"))]
pub use fallback_impl::{Reactor, ReactorHandle};

#[cfg(not(target_os = "linux"))]
mod fallback_impl {
    use super::*;

    /// Unsupported-platform stub.
    pub struct Reactor;

    /// Unsupported-platform stub handle.
    pub struct ReactorHandle {
        addr: SocketAddr,
    }

    impl ReactorHandle {
        pub fn local_addr(&self) -> SocketAddr {
            self.addr
        }

        pub fn shutdown(&mut self) {}
    }

    impl Reactor {
        pub fn start(
            _addr: &str,
            _submit: Arc<dyn SubmitRequest>,
            _config: ReactorConfig,
        ) -> io::Result<ReactorHandle> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the reactor front end requires Linux epoll; use Service::listen",
            ))
        }
    }
}
