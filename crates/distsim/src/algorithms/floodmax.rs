//! FloodMax leader election on arbitrary topologies.
//!
//! Taxonomy position: problem = leader election; topology = arbitrary
//! (diameter known); fault tolerance = none; sharing = message passing;
//! strategy = flooding (centralized knowledge of diameter); timing =
//! **synchronous** (required — the round structure is the termination
//! criterion); process management = static.
//!
//! Complexity guarantees: `diam · |E|` messages, `diam` rounds; `O(1)`
//! local computation per received message. Contrast with the ring
//! algorithms: FloodMax trades message volume for topology generality —
//! the trade-off a taxonomy-driven selector weighs.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node FloodMax state.
pub struct FloodMax {
    uid: u64,
    max_seen: u64,
    diameter: u64,
}

impl FloodMax {
    /// A node with the given uid; `diameter` must bound the network
    /// diameter.
    pub fn new(uid: u64, diameter: u64) -> Self {
        FloodMax {
            uid,
            max_seen: uid,
            diameter,
        }
    }
}

impl Process for FloodMax {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.diameter == 0 {
            // Single-node (or otherwise diameter-0) topology: nobody can
            // outrank us and no round will ever reach `on_round`'s decide
            // branch (rounds start at 1), so elect trivially here.
            ctx.decide(self.uid);
            ctx.halt();
            return;
        }
        ctx.send_all(Payload::Max(self.max_seen));
    }

    fn on_message(&mut self, _from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if let Payload::Max(u) = msg {
            ctx.charge(1); // one comparison
            if *u > self.max_seen {
                self.max_seen = *u;
            }
        }
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx) {
        if round < self.diameter {
            ctx.send_all(Payload::Max(self.max_seen));
        } else if round == self.diameter {
            ctx.decide(if self.max_seen == self.uid {
                self.uid
            } else {
                self.max_seen
            });
            ctx.halt();
        }
    }
}

/// One FloodMax process per uid.
pub fn floodmax_nodes(uids: &[u64], diameter: u64) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(FloodMax::new(u, diameter)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{consensus, expected_leader, floodmax_nodes_for};
    use crate::engine::{required_diameter, SyncRunner};
    use crate::topology::Topology;

    fn run(topo: Topology, uids: &[u64]) -> crate::engine::RunStats {
        let diam = required_diameter(&topo).expect("connected");
        let procs = floodmax_nodes_for(&topo, uids).expect("connected");
        let mut r = SyncRunner::new(topo, procs);
        r.run(diam + 10)
    }

    #[test]
    fn elects_max_on_grid_complete_and_random() {
        let uids: Vec<u64> = (0..16).map(|i| (i * 7 + 3) % 97).collect();
        let max = expected_leader(&uids).expect("non-empty");
        for topo in [
            Topology::grid(4, 4),
            Topology::complete(16),
            Topology::random_connected(16, 12, 5),
        ] {
            let stats = run(topo.clone(), &uids);
            assert_eq!(consensus(&stats), Some(max), "{}", topo.name());
            assert_eq!(stats.deciders_of(max), 16);
        }
    }

    #[test]
    fn message_count_is_diameter_times_edges() {
        let topo = Topology::grid(5, 5);
        let diam = required_diameter(&topo).expect("connected");
        let edges = topo.directed_edge_count() as u64;
        let uids: Vec<u64> = (1..=25).collect();
        let stats = run(topo, &uids);
        assert_eq!(stats.messages, diam * edges);
        assert_eq!(stats.time, diam);
    }

    #[test]
    fn diameter_rounds_are_necessary() {
        // With an understated diameter the far corner decides wrong — the
        // synchronous-timing requirement is real.
        let topo = Topology::grid(5, 1); // a path, diameter 4
        let uids = [9, 1, 1, 1, 1]; // max at one end
        let mut r = SyncRunner::new(topo, floodmax_nodes(&uids, 2)); // lie: diam=2
        let stats = r.run(20);
        assert_eq!(stats.outputs[4], Some(1), "too few rounds: wrong decision");
        // With the true diameter it is correct.
        let topo = Topology::grid(5, 1);
        let mut r = SyncRunner::new(topo, floodmax_nodes(&uids, 4));
        let stats = r.run(20);
        assert_eq!(stats.outputs[4], Some(9));
    }

    /// Edge cases that used to panic: a one-node topology has diameter 0
    /// (the decide round never arrives), and an empty uid list has no max.
    #[test]
    fn one_node_and_empty_topologies_elect_trivially() {
        // Single node: elects itself immediately on start.
        let topo = Topology::from_lists("lone", vec![vec![]]);
        let procs = floodmax_nodes_for(&topo, &[42]).expect("trivially connected");
        let mut r = SyncRunner::new(topo, procs);
        let stats = r.run(10);
        assert_eq!(consensus(&stats), Some(42));
        assert_eq!(stats.messages, 0, "nobody to flood to");

        // Empty topology: nothing to elect, nothing to panic on.
        assert_eq!(expected_leader(&[]), None);
        let topo = Topology::from_lists("empty", vec![]);
        let procs = floodmax_nodes_for(&topo, &[]).expect("vacuously connected");
        let mut r = SyncRunner::new(topo, procs);
        let stats = r.run(10);
        assert_eq!(consensus(&stats), None);
        assert_eq!(stats.messages, 0);
    }
}
