//! AsyncMax: asynchronous extrema propagation on arbitrary topologies.
//!
//! This algorithm exists because the taxonomy *asked for it*: experiment
//! E10c shows the catalog has no leader election for `(arbitrary topology,
//! asynchronous timing)` — the paper's "helps in the design of new ones
//! (based on situations where no known algorithms for a particular concept
//! refinement exist)". AsyncMax fills that cell.
//!
//! Taxonomy position: problem = leader election; topology = arbitrary
//! connected; fault tolerance = none; sharing = message passing; strategy =
//! flooding (gossip on improvement); timing = **asynchronous**; process
//! management = static.
//!
//! Each node floods its best-known uid whenever it improves. On
//! quiescence, every node's estimate equals the global maximum.
//! Complexity guarantees: `O(n·|E|)` messages worst case (a node can
//! improve at most `n` times, flooding its degree each time), `O(diam)`
//! time. Per-node decisions are *running estimates*: distributed
//! termination detection would require an overlay (e.g. an [`super::Echo`]
//! wave), which is exactly the compositional-strategy pairing the taxonomy
//! can express.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node AsyncMax state.
pub struct AsyncMax {
    uid: u64,
    best: u64,
}

impl AsyncMax {
    /// A node with the given uid.
    pub fn new(uid: u64) -> Self {
        AsyncMax { uid, best: uid }
    }
}

impl Process for AsyncMax {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.decide(self.best);
        ctx.send_all(Payload::Max(self.best));
    }

    fn on_message(&mut self, _from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if let Payload::Max(u) = msg {
            ctx.charge(1);
            if *u > self.best {
                self.best = *u;
                ctx.decide(self.best);
                ctx.send_all(Payload::Max(self.best));
            }
        }
        let _ = self.uid;
    }
}

/// One AsyncMax process per uid.
pub fn asyncmax_nodes(uids: &[u64]) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(AsyncMax::new(u)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::consensus;
    use crate::engine::{AsyncRunner, SyncRunner};
    use crate::topology::Topology;

    fn uids(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 53 + 17) % 1013).collect()
    }

    #[test]
    fn converges_to_the_maximum_on_async_arbitrary_topologies() {
        // The cell no other catalog algorithm covers: async + arbitrary.
        for topo in [
            Topology::grid(5, 5),
            Topology::random_connected(30, 20, 4),
            Topology::star(12),
        ] {
            let n = topo.len();
            let ids = uids(n);
            let max = *ids.iter().max().unwrap();
            for seed in 0..3 {
                let mut r = AsyncRunner::new(topo.clone(), asyncmax_nodes(&ids), 9, seed);
                let stats = r.run(10_000_000);
                assert_eq!(consensus(&stats), Some(max), "{} seed {seed}", topo.name());
                assert_eq!(stats.deciders_of(max), n);
            }
        }
    }

    #[test]
    fn message_bound_n_times_edges() {
        let topo = Topology::grid(6, 6);
        let n = topo.len() as u64;
        let edges = topo.directed_edge_count() as u64;
        let ids = uids(topo.len());
        let mut r = AsyncRunner::new(topo, asyncmax_nodes(&ids), 5, 1);
        let stats = r.run(10_000_000);
        assert!(
            stats.messages <= n * edges,
            "{} messages exceeds n·E = {}",
            stats.messages,
            n * edges
        );
    }

    #[test]
    fn also_works_synchronously_in_diameter_ish_time() {
        let topo = Topology::grid(8, 8);
        let diam = topo.diameter().unwrap() as u64;
        let ids = uids(topo.len());
        let max = *ids.iter().max().unwrap();
        let mut r = SyncRunner::new(topo, asyncmax_nodes(&ids));
        let stats = r.run(1000);
        assert_eq!(consensus(&stats), Some(max));
        assert!(stats.time <= diam + 3);
    }

    #[test]
    fn estimates_are_monotone_even_under_adversarial_delays() {
        // Large delay spread: the algorithm must still converge.
        let topo = Topology::random_connected(25, 5, 8);
        let ids = uids(25);
        let max = *ids.iter().max().unwrap();
        let mut r = AsyncRunner::new(topo, asyncmax_nodes(&ids), 50, 3);
        let stats = r.run(10_000_000);
        assert_eq!(consensus(&stats), Some(max));
    }
}
