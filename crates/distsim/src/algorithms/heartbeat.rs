//! Heartbeat failure detection (synchronous model).
//!
//! The taxonomy's strategy dimension names "heart beat" explicitly, and its
//! fault dimension distinguishes algorithms by what they tolerate. This is
//! the catalog's crash-*tolerant* entry: every node beats once per round to
//! its neighbors; a node that misses `timeout` consecutive expected beats
//! is suspected. In the synchronous model this detector is **perfect**
//! (strong accuracy + strong completeness): a node is suspected iff it has
//! crashed.
//!
//! Taxonomy position: problem = failure detection; topology = arbitrary
//! (detection is per-neighbor; complete graphs give global coverage);
//! fault tolerance = crash; strategy = heart beat; timing = synchronous;
//! process management = static.
//!
//! Complexity guarantees: `|E|` messages per round; detection latency ≤
//! `timeout + 1` rounds; `O(deg)` local computation per round.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;
use std::collections::{HashMap, HashSet};

/// Per-node heartbeat state: beats out every round, tracks the last round
/// each neighbor was heard from, and reports its suspect count.
pub struct Heartbeat {
    /// Rounds of silence after which a neighbor is suspected.
    timeout: u64,
    /// Stop after this many rounds (the monitoring window).
    horizon: u64,
    /// Last *resolved* round each neighbor was heard in — never a
    /// sentinel: beats received since the previous round tick live in
    /// `heard_now` until `on_round` stamps them.
    last_heard: HashMap<NodeId, u64>,
    /// Neighbors heard from since the last round tick.
    heard_now: HashSet<NodeId>,
    suspects: Vec<NodeId>,
}

impl Heartbeat {
    /// A detector node with the given silence `timeout` and run `horizon`.
    pub fn new(timeout: u64, horizon: u64) -> Self {
        assert!(timeout >= 1);
        Heartbeat {
            timeout,
            horizon,
            last_heard: HashMap::new(),
            heard_now: HashSet::new(),
            suspects: Vec::new(),
        }
    }

    /// Neighbors currently suspected of having crashed.
    pub fn suspects(&self) -> &[NodeId] {
        &self.suspects
    }

    /// The last round `n` was heard in — always a real round number,
    /// even if the run ended between a delivery and the next round tick.
    pub fn last_heard(&self, n: NodeId) -> Option<u64> {
        self.last_heard.get(&n).copied()
    }

    /// True if `n` has been heard since the last round tick.
    pub fn heard_pending(&self, n: NodeId) -> bool {
        self.heard_now.contains(&n)
    }
}

impl Process for Heartbeat {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for &n in ctx.neighbors {
            self.last_heard.insert(n, 0);
        }
        ctx.send_all(Payload::Uid(ctx.node as u64));
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if matches!(msg, Payload::Uid(_)) {
            // Beats sent in round r-1 arrive in r, but the round number is
            // only learned at the next on_round call — park the beat in an
            // explicit heard-this-round set until then (a u64::MAX
            // timestamp sentinel would leak if the run ended here).
            ctx.charge(1);
            self.heard_now.insert(from);
        }
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx) {
        // Resolve the "heard this round" set to this round's number.
        for n in self.heard_now.drain() {
            self.last_heard.insert(n, round);
        }
        // Suspect neighbors silent for more than `timeout` rounds.
        self.suspects = self
            .last_heard
            .iter()
            .filter(|(_, &heard)| round.saturating_sub(heard) > self.timeout)
            .map(|(&n, _)| n)
            .collect();
        self.suspects.sort_unstable();
        ctx.charge(self.last_heard.len() as u64);
        if round >= self.horizon {
            ctx.decide(self.suspects.len() as u64);
            ctx.halt();
        } else {
            ctx.send_all(Payload::Uid(ctx.node as u64));
        }
    }
}

/// One heartbeat detector per node.
pub fn heartbeat_nodes(n: usize, timeout: u64, horizon: u64) -> Vec<BoxProcess> {
    (0..n)
        .map(|_| Box::new(Heartbeat::new(timeout, horizon)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncRunner;
    use crate::topology::Topology;

    #[test]
    fn no_crashes_means_no_suspects() {
        let topo = Topology::complete(6);
        let mut r = SyncRunner::new(topo, heartbeat_nodes(6, 2, 12));
        let stats = r.run(40);
        // Every node decided 0 suspects.
        assert!(stats.outputs.iter().all(|o| *o == Some(0)));
    }

    #[test]
    fn crashed_node_is_suspected_by_everyone_else() {
        // The crash-tolerance the rest of the catalog lacks: the detector
        // keeps operating *through* the failure and reports it.
        let topo = Topology::complete(6);
        let mut r = SyncRunner::new(topo, heartbeat_nodes(6, 2, 14));
        r.crash(3, 5);
        let stats = r.run(40);
        for v in 0..6 {
            if v == 3 {
                assert_eq!(stats.outputs[v], None, "the crashed node is silent");
            } else {
                assert_eq!(stats.outputs[v], Some(1), "node {v} suspects exactly one");
            }
        }
    }

    #[test]
    fn detection_latency_is_bounded_by_timeout() {
        // Crash at round 5 with timeout 2: suspicion must hold by round 8
        // and not before round 6 (accuracy): run two horizons.
        let run_with_horizon = |h: u64| {
            let topo = Topology::complete(4);
            let mut r = SyncRunner::new(topo, heartbeat_nodes(4, 2, h));
            r.crash(0, 5);
            r.run(h + 5)
        };
        // Horizon before the crash can possibly be detected: no suspects.
        let early = run_with_horizon(5);
        assert_eq!(early.outputs[1], Some(0));
        // Horizon comfortably after: exactly one suspect.
        let late = run_with_horizon(10);
        assert_eq!(late.outputs[1], Some(1));
    }

    #[test]
    fn no_false_suspicions_under_synchrony() {
        // Strong accuracy: with all nodes alive, long runs never suspect.
        let topo = Topology::grid(3, 3);
        let mut r = SyncRunner::new(topo, heartbeat_nodes(9, 1, 30));
        let stats = r.run(60);
        assert!(stats.outputs.iter().all(|o| *o == Some(0)));
    }

    #[test]
    fn mid_round_beats_never_surface_as_bogus_timestamps() {
        // Regression: beats received between round ticks used to be marked
        // with a u64::MAX sentinel *inside* `last_heard`, which leaked as a
        // nonsense timestamp whenever the state was read before the next
        // on_round resolved it. The heard-this-round set keeps `last_heard`
        // holding only real round numbers at every instant.
        use crate::engine::{Ctx, RunStats};

        let mut hb = Heartbeat::new(2, 10);
        let neighbors = [1usize, 2];
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut stats = RunStats {
            outputs: vec![None; 3],
            per_node_sent: vec![0; 3],
            ..RunStats::default()
        };
        let mut output = None;
        let mut halted = false;

        let mut ctx = Ctx::new(
            0,
            &neighbors,
            &mut outbox,
            &mut timers,
            &mut stats,
            &mut output,
            &mut halted,
        );
        hb.on_start(&mut ctx);
        hb.on_message(1, &Payload::Uid(1), &mut ctx);

        // Observed between a delivery and the next round tick: the beat is
        // pending, and the timestamp map still holds a real round number.
        assert!(hb.heard_pending(1));
        assert_eq!(hb.last_heard(1), Some(0), "no sentinel leaks");
        assert_eq!(hb.last_heard(2), Some(0));

        // The next round tick resolves the pending beat to its round.
        hb.on_round(3, &mut ctx);
        assert!(!hb.heard_pending(1));
        assert_eq!(hb.last_heard(1), Some(3));
        assert_eq!(hb.last_heard(2), Some(0), "silent neighbor unchanged");
    }

    #[test]
    fn message_cost_is_edges_per_round() {
        let topo = Topology::complete(5); // 20 directed edges
        let horizon = 10u64;
        let mut r = SyncRunner::new(topo, heartbeat_nodes(5, 2, horizon));
        let stats = r.run(horizon + 5);
        // One beat per directed edge per round (within one round of slack
        // for the final-round halt).
        assert!(stats.messages >= 20 * (horizon - 1));
        assert!(stats.messages <= 20 * (horizon + 1));
    }
}
