//! Distributed algorithms, each annotated with its position in the
//! seven-dimension taxonomy of §4 (problem, topology, fault tolerance,
//! information sharing, strategy, timing, process management) and with the
//! complexity guarantees the experiments validate.

mod asyncmax;
mod bfs;
mod echo;
mod floodmax;
mod ftfloodmax;
mod heartbeat;
mod hs;
mod lcr;

pub use asyncmax::{asyncmax_nodes, AsyncMax};
pub use bfs::{bfs_tree_nodes, BfsTree};
pub use echo::{echo_nodes, Echo};
pub use floodmax::{floodmax_nodes, FloodMax};
pub use ftfloodmax::{ft_floodmax_nodes, FtFloodMax};
pub use heartbeat::{heartbeat_nodes, Heartbeat};
pub use hs::{hs_nodes, Hs};
pub use lcr::{lcr_nodes, Lcr};

use crate::channel::Reliable;
use crate::engine::{required_diameter, BoxProcess, ConfigError, RunStats};
use crate::topology::{NodeId, Topology};

/// Echo processes wrapped in the reliable channel ([`Reliable`]): the
/// catalog's omission-tolerant broadcast. Same API as [`echo_nodes`] plus
/// the channel's retransmission timeout and give-up bound.
pub fn reliable_echo_nodes(
    n: usize,
    initiator: NodeId,
    rto: u64,
    max_attempts: u32,
) -> Vec<BoxProcess> {
    (0..n)
        .map(|i| {
            Box::new(Reliable::new(Echo::new(i == initiator), rto, max_attempts)) as BoxProcess
        })
        .collect()
}

/// LCR processes wrapped in the reliable channel: the catalog's
/// omission-tolerant leader election. Runs over
/// [`Topology::ring_bidirectional`] (candidates circulate on
/// `neighbors[0]`, acknowledgments on the reverse links).
///
/// [`Topology::ring_bidirectional`]: crate::topology::Topology::ring_bidirectional
pub fn reliable_lcr_nodes(uids: &[u64], rto: u64, max_attempts: u32) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(Reliable::new(Lcr::new(u), rto, max_attempts)) as BoxProcess)
        .collect()
}

/// FloodMax processes parameterized by the diameter of the topology they
/// will actually run on. Deploying on a disconnected topology is a
/// [`ConfigError`] (no diameter exists), not a panic — the bug the bare
/// `diameter().unwrap()` call sites used to have.
pub fn floodmax_nodes_for(topo: &Topology, uids: &[u64]) -> Result<Vec<BoxProcess>, ConfigError> {
    assert_eq!(topo.len(), uids.len(), "one uid per node");
    Ok(floodmax_nodes(uids, required_diameter(topo)?))
}

/// The leader a max-consensus election must settle on: the largest uid,
/// or `None` for the empty topology (nobody to elect — the trivial case
/// that used to panic on `uids.iter().max().unwrap()`).
pub fn expected_leader(uids: &[u64]) -> Option<u64> {
    uids.iter().max().copied()
}

/// Extract the consensus decision if every deciding node agreed; `None` if
/// nobody decided or the decisions conflict.
pub fn consensus(stats: &RunStats) -> Option<u64> {
    let mut value = None;
    for o in stats.outputs.iter().flatten() {
        match value {
            None => value = Some(*o),
            Some(v) if v == *o => {}
            _ => return None,
        }
    }
    value
}

/// Worst-case LCR uid arrangement: ids strictly decreasing clockwise, so
/// uid `k` travels `k + 1` hops before meeting a larger id — `Θ(n²)` total
/// candidate messages.
pub fn adversarial_ring_uids(n: usize) -> Vec<u64> {
    (0..n as u64).rev().map(|k| k + 1).collect()
}

/// Best-case LCR arrangement: ids increasing clockwise — every candidate
/// dies after one hop except the maximum.
pub fn benign_ring_uids(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

/// Hirschberg–Sinclair stress arrangement (`n` must be a power of two):
/// bit-reversal permutation of the indices. Roughly `n / 2^(k+1)` nodes
/// remain local maxima at phase `k`, each spending `Θ(2^k)` messages — the
/// `Θ(n log n)` behavior the taxonomy's bound describes. (The decreasing
/// arrangement of [`adversarial_ring_uids`] is a *best* case for HS: only
/// the global maximum survives phase 0.)
pub fn bit_reversal_ring_uids(n: usize) -> Vec<u64> {
    assert!(n.is_power_of_two(), "bit reversal needs a power of two");
    let bits = n.trailing_zeros();
    (0..n as u64)
        .map(|i| i.reverse_bits() >> (64 - bits) as u64)
        .map(|r| r + 1)
        .collect()
}
