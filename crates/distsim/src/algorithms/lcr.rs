//! LCR (Le Lann / Chang–Roberts) leader election.
//!
//! Taxonomy position: problem = leader election; topology = unidirectional
//! ring; fault tolerance = none; sharing = message passing; strategy =
//! distributed control (uid comparison); timing = asynchronous (works under
//! synchronous too); process management = static.
//!
//! Complexity guarantees: `O(n²)` messages worst case, `O(n log n)`
//! average, `Θ(n)` best case; `O(n)` time. Elected leader announces itself
//! with a second `n`-message wave so every node decides.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node LCR state.
pub struct Lcr {
    uid: u64,
    decided: bool,
}

impl Lcr {
    /// A node with the given uid.
    pub fn new(uid: u64) -> Self {
        Lcr {
            uid,
            decided: false,
        }
    }
}

impl Process for Lcr {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // Candidates circulate clockwise (the single out-neighbor).
        let next = ctx.neighbors[0];
        ctx.send(next, Payload::Uid(self.uid));
    }

    fn on_message(&mut self, _from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        let next = ctx.neighbors[0];
        match msg {
            Payload::Uid(u) => {
                ctx.charge(1); // one comparison
                if *u > self.uid {
                    ctx.send(next, Payload::Uid(*u));
                } else if *u == self.uid {
                    // Own uid survived the whole ring: elected.
                    self.decided = true;
                    ctx.decide(self.uid);
                    ctx.send(next, Payload::Max(self.uid));
                }
                // Smaller uids are swallowed.
            }
            Payload::Max(leader) => {
                if self.decided {
                    // Announcement returned to the leader: done.
                    ctx.halt();
                } else {
                    self.decided = true;
                    ctx.decide(*leader);
                    ctx.send(next, Payload::Max(*leader));
                    ctx.halt();
                }
            }
            _ => {}
        }
    }
}

/// One LCR process per uid (ring order = slice order).
pub fn lcr_nodes(uids: &[u64]) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(Lcr::new(u)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{adversarial_ring_uids, benign_ring_uids, consensus};
    use crate::engine::{AsyncRunner, SyncRunner};
    use crate::topology::Topology;

    fn run_sync(uids: &[u64]) -> crate::engine::RunStats {
        let mut r = SyncRunner::new(Topology::ring_unidirectional(uids.len()), lcr_nodes(uids));
        r.run(10 * uids.len() as u64 + 50)
    }

    #[test]
    fn elects_the_maximum_uid() {
        let uids = [5, 9, 2, 7, 4];
        let stats = run_sync(&uids);
        assert_eq!(consensus(&stats), Some(9));
        // Every node decided.
        assert!(stats.outputs.iter().all(|o| *o == Some(9)));
    }

    #[test]
    fn worst_case_messages_are_quadratic() {
        let n = 64;
        let worst = run_sync(&adversarial_ring_uids(n));
        let best = run_sync(&benign_ring_uids(n));
        let quad = (n * n / 4) as u64;
        assert!(
            worst.messages >= quad,
            "worst-case {} messages, expected ≥ {quad}",
            worst.messages
        );
        // Best case: ~2n candidates+announcements — linear.
        assert!(best.messages <= 4 * n as u64);
        assert!(worst.messages > 5 * best.messages);
    }

    #[test]
    fn works_asynchronously_and_deterministically() {
        let uids = adversarial_ring_uids(20);
        let run = |seed| {
            let mut r =
                AsyncRunner::new(Topology::ring_unidirectional(20), lcr_nodes(&uids), 7, seed);
            r.run(1_000_000)
        };
        let a = run(1);
        assert_eq!(consensus(&a), Some(20));
        assert_eq!(a.messages, run(1).messages);
    }

    #[test]
    fn does_not_tolerate_crashes() {
        // Crash a relay node: the election never completes — the taxonomy's
        // fault-tolerance dimension, demonstrated.
        let uids = benign_ring_uids(8);
        let mut r = SyncRunner::new(Topology::ring_unidirectional(8), lcr_nodes(&uids));
        r.crash(2, 1); // crashes before forwarding anything useful
        let stats = r.run(500);
        assert_eq!(consensus(&stats), None);
    }

    #[test]
    fn single_node_ring_elects_itself() {
        let stats = run_sync(&[42]);
        assert_eq!(consensus(&stats), Some(42));
    }
}
