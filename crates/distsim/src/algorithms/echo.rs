//! Chang's echo algorithm: broadcast with convergecast acknowledgment.
//!
//! Taxonomy position: problem = broadcast (with termination detection);
//! topology = arbitrary connected; fault tolerance = none; sharing =
//! message passing; strategy = **probe-echo** (named explicitly in the
//! paper's strategy dimension); timing = asynchronous; process
//! management = static.
//!
//! Complexity guarantee: exactly `2·|E|` messages (each undirected edge
//! carries one token each way); `O(diam)` time.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node echo state.
pub struct Echo {
    initiator: bool,
    parent: Option<NodeId>,
    received: usize,
    forwarded: bool,
}

impl Echo {
    /// A node; exactly one node should be the initiator.
    pub fn new(initiator: bool) -> Self {
        Echo {
            initiator,
            parent: None,
            received: 0,
            forwarded: false,
        }
    }
}

impl Process for Echo {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.initiator {
            self.forwarded = true;
            ctx.send_all(Payload::Token);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if !matches!(msg, Payload::Token) {
            return;
        }
        self.received += 1;
        ctx.charge(1);
        if !self.initiator && !self.forwarded {
            self.forwarded = true;
            self.parent = Some(from);
            for &n in ctx.neighbors {
                if n != from {
                    ctx.send(n, Payload::Token);
                }
            }
        }
        if self.received == ctx.neighbors.len() {
            // Heard from every neighbor: subtree complete.
            if let Some(p) = self.parent {
                ctx.send(p, Payload::Token);
            }
            ctx.decide(1);
            ctx.halt();
        }
    }
}

/// One echo process per node; node `initiator` starts the wave.
pub fn echo_nodes(n: usize, initiator: NodeId) -> Vec<BoxProcess> {
    (0..n)
        .map(|i| Box::new(Echo::new(i == initiator)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AsyncRunner, SyncRunner};
    use crate::topology::Topology;

    #[test]
    fn terminates_with_exactly_two_messages_per_edge() {
        for topo in [
            Topology::grid(4, 3),
            Topology::complete(7),
            Topology::random_connected(25, 20, 2),
        ] {
            let n = topo.len();
            let edges = topo.directed_edge_count() as u64; // = 2·|E| undirected
            let mut r = SyncRunner::new(topo.clone(), echo_nodes(n, 0));
            let stats = r.run(500);
            assert_eq!(stats.messages, edges, "{}", topo.name());
            // The initiator decided: global termination detected.
            assert_eq!(stats.outputs[0], Some(1));
            assert_eq!(
                stats.outputs.iter().filter(|o| o.is_some()).count(),
                n,
                "every node completes in {}",
                topo.name()
            );
        }
    }

    #[test]
    fn works_under_asynchrony_with_any_delays() {
        let topo = Topology::random_connected(30, 25, 9);
        let n = topo.len();
        let edges = topo.directed_edge_count() as u64;
        for seed in 0..4 {
            let mut r = AsyncRunner::new(topo.clone(), echo_nodes(n, 3), 11, seed);
            let stats = r.run(1_000_000);
            assert_eq!(stats.messages, edges, "seed {seed}");
            assert_eq!(stats.outputs[3], Some(1));
        }
    }

    #[test]
    fn crash_prevents_termination_detection() {
        let topo = Topology::grid(3, 3);
        let mut r = SyncRunner::new(topo, echo_nodes(9, 0));
        r.crash(4, 1); // center node dies early
        let stats = r.run(500);
        assert_eq!(stats.outputs[0], None, "initiator must not falsely report");
    }

    #[test]
    fn two_nodes() {
        let topo = Topology::from_lists("pair", vec![vec![1], vec![0]]);
        let mut r = SyncRunner::new(topo, echo_nodes(2, 0));
        let stats = r.run(50);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.outputs[0], Some(1));
    }
}
