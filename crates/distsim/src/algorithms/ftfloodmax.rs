//! FT-FloodMax: crash-tolerant max-consensus by periodic re-flooding.
//!
//! The taxonomy asked for this entry too: the catalog's consensus cell
//! under `fault = crash` was empty — every seed algorithm stalls when a
//! relay dies (their own tests prove it). FT-FloodMax fills the cell with
//! the simplest honest design: flood improvements immediately *and*
//! re-flood the current maximum on a periodic timer, so a value is never
//! stranded by the crash of whoever was carrying it. On a completely
//! connected topology this survives any `f < n` crash-stop failures:
//! every live node rebroadcasts directly to every other live node until
//! it has seen `quiet_ticks` periods without improvement.
//!
//! Taxonomy position: problem = consensus (on the maximum uid that
//! entered the live network); topology = completely connected (liveness
//! needs the live nodes to stay mutually reachable); fault tolerance =
//! **crash** (including crash-recovery — a recovered node re-floods and
//! resynchronizes); sharing = message passing; strategy = flooding;
//! timing = partially synchronous (the quiet-period termination rule
//! needs delays bounded by `quiet_ticks · period`); process management =
//! static.
//!
//! Complexity guarantees: `O((n + K)·|E|)` messages for `K` total timer
//! ticks (each node improves at most `n` times and re-floods `≤ K`
//! times); `O(K · period)` time; `O(n + K)` local computation per node.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node FT-FloodMax state.
pub struct FtFloodMax {
    best: u64,
    /// Timer period between re-floods.
    period: u64,
    /// Consecutive quiet (improvement-free) ticks required to decide
    /// the current maximum is final and halt.
    quiet_ticks: u64,
    quiet: u64,
}

impl FtFloodMax {
    /// A node with the given uid, re-flooding every `period` time units
    /// and halting after `quiet_ticks` improvement-free periods.
    /// `quiet_ticks · period` must exceed the network's maximum delay for
    /// the termination rule to be safe.
    pub fn new(uid: u64, period: u64, quiet_ticks: u64) -> Self {
        assert!(period >= 1 && quiet_ticks >= 1);
        FtFloodMax {
            best: uid,
            period,
            quiet_ticks,
            quiet: 0,
        }
    }

    /// The node's current estimate of the maximum.
    pub fn best(&self) -> u64 {
        self.best
    }
}

impl Process for FtFloodMax {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.decide(self.best);
        ctx.send_all(Payload::Max(self.best));
        ctx.set_timer(self.period, 0);
    }

    fn on_message(&mut self, _from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if let Payload::Max(u) = msg {
            ctx.charge(1); // one comparison
            if *u > self.best {
                self.best = *u;
                self.quiet = 0;
                ctx.decide(self.best);
                ctx.send_all(Payload::Max(self.best));
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        self.quiet += 1;
        ctx.decide(self.best);
        if self.quiet >= self.quiet_ticks {
            ctx.halt();
        } else {
            // Re-flood: the periodic resend is what tolerates crashes —
            // any value a live node holds keeps propagating even if its
            // original carrier died mid-flood.
            ctx.send_all(Payload::Max(self.best));
            ctx.set_timer(self.period, 0);
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx) {
        // Fresh start for the quiet counter: announce our (possibly
        // stale) maximum, listen for the live network's newer one.
        self.quiet = 0;
        ctx.decide(self.best);
        ctx.send_all(Payload::Max(self.best));
        ctx.set_timer(self.period, 0);
    }
}

/// One FT-FloodMax process per uid.
pub fn ft_floodmax_nodes(uids: &[u64], period: u64, quiet_ticks: u64) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(FtFloodMax::new(u, period, quiet_ticks)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::consensus;
    use crate::engine::AsyncRunner;
    use crate::topology::Topology;

    fn uids(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 37 + 11) % 1009).collect()
    }

    #[test]
    fn agrees_without_faults() {
        let ids = uids(10);
        let max = *ids.iter().max().unwrap();
        let mut r = AsyncRunner::new(Topology::complete(10), ft_floodmax_nodes(&ids, 10, 3), 5, 3);
        let stats = r.run(10_000_000);
        assert_eq!(consensus(&stats), Some(max));
        assert_eq!(stats.deciders_of(max), 10);
        assert_eq!(stats.undelivered, 0, "quiesced, not budget-capped");
    }

    #[test]
    fn survives_a_third_of_the_nodes_crashing() {
        // f = n/3 staggered crash-stop failures; the live majority still
        // agrees. Crashed nodes may or may not have spread their uids —
        // the live nodes must agree on *some* value ≥ their own maximum.
        let n = 12;
        let ids = uids(n);
        for seed in 0..5u64 {
            let mut r = AsyncRunner::new(
                Topology::complete(n),
                ft_floodmax_nodes(&ids, 10, 4),
                5,
                seed,
            );
            // Crash 4 nodes at spread-out times.
            let crashed = [1usize, 4, 7, 10];
            for (i, &v) in crashed.iter().enumerate() {
                r.crash(v, 5 * i as u64);
            }
            let stats = r.run(10_000_000);
            let live: Vec<usize> = (0..n).filter(|v| !crashed.contains(v)).collect();
            let live_max = live.iter().map(|&v| ids[v]).max().unwrap();
            let decided: Vec<u64> = live.iter().map(|&v| stats.outputs[v].unwrap()).collect();
            assert!(
                decided.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: live nodes disagree: {decided:?}"
            );
            assert!(decided[0] >= live_max, "seed {seed}: below the live max");
        }
    }

    #[test]
    fn recovered_node_rejoins_the_agreement() {
        let n = 8;
        let ids = uids(n);
        let max = *ids.iter().max().unwrap();
        assert_ne!(ids[2], max, "test needs the crashed node non-maximal");
        let mut r = AsyncRunner::new(Topology::complete(n), ft_floodmax_nodes(&ids, 10, 4), 5, 2);
        // Node 2 is out for t ∈ [1, 15): it misses the first flood wave,
        // then resynchronizes from its peers' periodic re-floods.
        r.crash(2, 1);
        r.recover(2, 15);
        let stats = r.run(10_000_000);
        assert_eq!(consensus(&stats), Some(max), "recovered node caught up");
        assert_eq!(stats.deciders_of(max), n);
    }
}
