//! Synchronous BFS spanning tree.
//!
//! Taxonomy position: problem = spanning tree / shortest hop paths;
//! topology = arbitrary connected; fault tolerance = none; sharing =
//! message passing; strategy = flooding with level stamping; timing =
//! synchronous (levels are correct *because* of lockstep rounds);
//! process management = static.
//!
//! Complexity guarantees: `O(|E|)` messages, `O(diam)` rounds.

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node BFS state. Decides its tree level.
pub struct BfsTree {
    root: bool,
    level: Option<u32>,
    /// Tree parent (root: none).
    pub parent: Option<NodeId>,
}

impl BfsTree {
    /// A node; exactly one should be the root.
    pub fn new(root: bool) -> Self {
        BfsTree {
            root,
            level: None,
            parent: None,
        }
    }
}

impl Process for BfsTree {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if self.root {
            self.level = Some(0);
            ctx.decide(0);
            ctx.send_all(Payload::Level(0));
        }
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        if let Payload::Level(l) = msg {
            ctx.charge(1);
            if self.level.is_none() {
                let mine = l + 1;
                self.level = Some(mine);
                self.parent = Some(from);
                ctx.decide(mine as u64);
                ctx.send_all(Payload::Level(mine));
            }
            // Later (equal or worse) announcements are ignored: in the
            // synchronous model the first arrival is a shortest path.
        }
    }
}

/// One BFS process per node, rooted at `root`.
pub fn bfs_tree_nodes(n: usize, root: NodeId) -> Vec<BoxProcess> {
    (0..n)
        .map(|i| Box::new(BfsTree::new(i == root)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncRunner;
    use crate::topology::Topology;

    #[test]
    fn levels_equal_bfs_distances() {
        let topo = Topology::grid(5, 4);
        let n = topo.len();
        // Reference distances via plain BFS on the topology.
        let mut dist = vec![u64::MAX; n];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0usize]);
        while let Some(u) = q.pop_front() {
            for &v in topo.neighbors(u) {
                if dist[v] == u64::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        let mut r = SyncRunner::new(topo, bfs_tree_nodes(n, 0));
        let stats = r.run(100);
        for (v, d) in dist.iter().enumerate() {
            assert_eq!(stats.outputs[v], Some(*d), "node {v}");
        }
    }

    #[test]
    fn rounds_bounded_by_diameter_messages_by_edges() {
        let topo = Topology::random_connected(40, 30, 1);
        let n = topo.len();
        let diam = topo.diameter().unwrap() as u64;
        let edges = topo.directed_edge_count() as u64;
        let mut r = SyncRunner::new(topo, bfs_tree_nodes(n, 0));
        let stats = r.run(1000);
        assert!(stats.time <= diam + 2, "time {} > diam {diam}", stats.time);
        assert!(
            stats.messages <= edges,
            "each directed edge carries ≤1 level"
        );
    }

    #[test]
    fn star_tree_is_depth_one() {
        let topo = Topology::star(6);
        let mut r = SyncRunner::new(topo, bfs_tree_nodes(6, 0));
        let stats = r.run(50);
        assert_eq!(stats.outputs[0], Some(0));
        for v in 1..6 {
            assert_eq!(stats.outputs[v], Some(1));
        }
    }
}
