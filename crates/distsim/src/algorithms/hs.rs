//! Hirschberg–Sinclair leader election.
//!
//! Taxonomy position: problem = leader election; topology = bidirectional
//! ring; fault tolerance = none; sharing = message passing; strategy =
//! distributed control with doubling probes (probe-echo flavored); timing =
//! asynchronous; process management = static.
//!
//! Complexity guarantee: `O(n log n)` messages — the asymptotic improvement
//! over LCR that the taxonomy's selection query surfaces (experiment E10).

use crate::engine::{BoxProcess, Ctx, Payload, Process};
use crate::topology::NodeId;

/// Per-node Hirschberg–Sinclair state.
pub struct Hs {
    uid: u64,
    phase: u32,
    acks: u8,
    decided: bool,
}

impl Hs {
    /// A node with the given uid.
    pub fn new(uid: u64) -> Self {
        Hs {
            uid,
            phase: 0,
            acks: 0,
            decided: false,
        }
    }

    fn send_probes(&self, ctx: &mut Ctx) {
        let hops = 1u64 << self.phase;
        for d in 0..2 {
            ctx.send(
                ctx.neighbors[d],
                Payload::HsToken {
                    uid: self.uid,
                    hops,
                    outbound: true,
                },
            );
        }
    }
}

impl Process for Hs {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.send_probes(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        // On a bidirectional ring the "continue" direction is the neighbor
        // we did not hear from.
        let other = if ctx.neighbors[0] == from {
            ctx.neighbors[1]
        } else {
            ctx.neighbors[0]
        };
        match msg {
            Payload::HsToken {
                uid,
                hops,
                outbound: true,
            } => {
                ctx.charge(1);
                if *uid > self.uid {
                    if *hops > 1 {
                        ctx.send(
                            other,
                            Payload::HsToken {
                                uid: *uid,
                                hops: hops - 1,
                                outbound: true,
                            },
                        );
                    } else {
                        // Turn the token around.
                        ctx.send(
                            from,
                            Payload::HsToken {
                                uid: *uid,
                                hops: 1,
                                outbound: false,
                            },
                        );
                    }
                } else if *uid == self.uid {
                    // Own probe circumnavigated: elected.
                    self.decided = true;
                    ctx.decide(self.uid);
                    ctx.send(ctx.neighbors[1], Payload::Max(self.uid));
                }
                // Smaller uids are swallowed.
            }
            Payload::HsToken {
                uid,
                outbound: false,
                ..
            } => {
                if *uid == self.uid {
                    self.acks += 1;
                    if self.acks == 2 {
                        self.acks = 0;
                        self.phase += 1;
                        self.send_probes(ctx);
                    }
                } else {
                    // Retrace toward the origin.
                    ctx.send(
                        other,
                        Payload::HsToken {
                            uid: *uid,
                            hops: 1,
                            outbound: false,
                        },
                    );
                }
            }
            Payload::Max(leader) => {
                if self.decided {
                    ctx.halt();
                } else {
                    self.decided = true;
                    ctx.decide(*leader);
                    ctx.send(other, Payload::Max(*leader));
                    ctx.halt();
                }
            }
            _ => {}
        }
    }
}

/// One HS process per uid (ring order = slice order).
pub fn hs_nodes(uids: &[u64]) -> Vec<BoxProcess> {
    uids.iter()
        .map(|&u| Box::new(Hs::new(u)) as BoxProcess)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{adversarial_ring_uids, consensus, lcr_nodes};
    use crate::engine::SyncRunner;
    use crate::topology::Topology;

    fn run(uids: &[u64]) -> crate::engine::RunStats {
        let mut r = SyncRunner::new(Topology::ring_bidirectional(uids.len()), hs_nodes(uids));
        r.run(60 * uids.len() as u64 + 100)
    }

    #[test]
    fn elects_the_maximum_uid_everywhere() {
        let uids = [13, 2, 99, 40, 7, 56];
        let stats = run(&uids);
        assert_eq!(consensus(&stats), Some(99));
        assert!(stats.outputs.iter().all(|o| *o == Some(99)));
    }

    #[test]
    fn message_count_is_n_log_n() {
        for n in [16usize, 64, 256] {
            let stats = run(&adversarial_ring_uids(n));
            assert_eq!(consensus(&stats), Some(n as u64));
            let bound = (10.0 * n as f64 * ((n as f64).log2() + 2.0)) as u64;
            assert!(
                stats.messages <= bound,
                "n={n}: {} messages exceeds 10·n·(log n + 2) = {bound}",
                stats.messages
            );
        }
    }

    #[test]
    fn beats_lcr_on_adversarial_rings() {
        // The crossover the taxonomy records: O(n log n) vs O(n²).
        let n = 128;
        let uids = adversarial_ring_uids(n);
        let hs = run(&uids);
        let mut lcr_runner = SyncRunner::new(Topology::ring_unidirectional(n), lcr_nodes(&uids));
        let lcr = lcr_runner.run(10 * n as u64 + 50);
        assert!(
            hs.messages < lcr.messages / 2,
            "HS {} vs LCR {}",
            hs.messages,
            lcr.messages
        );
    }

    #[test]
    fn two_node_ring() {
        let stats = run(&[3, 8]);
        assert_eq!(consensus(&stats), Some(8));
    }
}
