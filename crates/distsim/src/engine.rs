//! Execution engines: synchronous rounds and asynchronous event queue,
//! with crash-failure injection and full metric accounting.

use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Message payloads understood by the bundled algorithms. (A closed enum
/// keeps the engine allocation-light; a production library would make this
/// generic.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A candidate identifier (LCR, announcements).
    Uid(u64),
    /// Hirschberg–Sinclair token.
    HsToken {
        /// Candidate id.
        uid: u64,
        /// Remaining hops for outbound tokens.
        hops: u64,
        /// Outbound (true) or returning (false).
        outbound: bool,
    },
    /// Current maximum (FloodMax).
    Max(u64),
    /// Echo-algorithm token (probe and echo are the same token).
    Token,
    /// BFS level announcement.
    Level(u32),
}

/// Per-run metrics: the three performance dimensions of the taxonomy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Rounds (synchronous) or virtual completion time (asynchronous).
    pub time: u64,
    /// Total local computation steps charged via [`Ctx::charge`] — the
    /// metric the paper notes is "rarely accounted for".
    pub local_steps: u64,
    /// Per-node decided outputs.
    pub outputs: Vec<Option<u64>>,
    /// Per-node message counts (sent).
    pub per_node_sent: Vec<u64>,
}

impl RunStats {
    /// Nodes that decided the given value.
    pub fn deciders_of(&self, v: u64) -> usize {
        self.outputs.iter().filter(|o| **o == Some(v)).count()
    }
}

/// The API a process sees during a step.
pub struct Ctx<'a> {
    /// This node's id.
    pub node: NodeId,
    /// This node's out-neighbors.
    pub neighbors: &'a [NodeId],
    outbox: &'a mut Vec<(NodeId, Payload)>,
    local_steps: &'a mut u64,
    output: &'a mut Option<u64>,
    halted: &'a mut bool,
}

impl Ctx<'_> {
    /// Send a message to a neighbor.
    pub fn send(&mut self, to: NodeId, payload: Payload) {
        debug_assert!(
            self.neighbors.contains(&to),
            "node {} has no link to {}",
            self.node,
            to
        );
        self.outbox.push((to, payload));
    }

    /// Send to every neighbor.
    pub fn send_all(&mut self, payload: Payload) {
        for &n in self.neighbors {
            self.outbox.push((n, payload.clone()));
        }
    }

    /// Charge `n` units of local computation (taxonomy performance
    /// accounting).
    pub fn charge(&mut self, n: u64) {
        *self.local_steps += n;
    }

    /// Record this node's decision.
    pub fn decide(&mut self, v: u64) {
        *self.output = Some(v);
    }

    /// Stop participating (no further events delivered).
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

/// A distributed process: the algorithm running at one node.
pub trait Process {
    /// Called once before any message flows.
    fn on_start(&mut self, ctx: &mut Ctx);

    /// Called per delivered message.
    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx);

    /// Synchronous model only: called once per round after deliveries.
    fn on_round(&mut self, _round: u64, _ctx: &mut Ctx) {}
}

struct NodeState {
    proc: Box<dyn Process>,
    output: Option<u64>,
    halted: bool,
    crashed: bool,
}

fn run_step(
    node: NodeId,
    topo: &Topology,
    st: &mut NodeState,
    stats_local: &mut u64,
    f: impl FnOnce(&mut dyn Process, &mut Ctx),
) -> Vec<(NodeId, Payload)> {
    let mut outbox = Vec::new();
    if st.crashed || st.halted {
        return outbox;
    }
    let mut ctx = Ctx {
        node,
        neighbors: topo.neighbors(node),
        outbox: &mut outbox,
        local_steps: stats_local,
        output: &mut st.output,
        halted: &mut st.halted,
    };
    f(st.proc.as_mut(), &mut ctx);
    outbox
}

/// Synchronous executor: all messages sent in round `r` are delivered at
/// the start of round `r + 1` (taxonomy timing dimension: *synchronous*).
pub struct SyncRunner {
    topo: Topology,
    nodes: Vec<NodeState>,
    /// Nodes crashing at the start of the given round.
    crash_at: HashMap<NodeId, u64>,
}

impl SyncRunner {
    /// Build a runner from a topology and one process per node.
    pub fn new(topo: Topology, procs: Vec<Box<dyn Process>>) -> Self {
        assert_eq!(topo.len(), procs.len(), "one process per node");
        SyncRunner {
            topo,
            nodes: procs
                .into_iter()
                .map(|proc| NodeState {
                    proc,
                    output: None,
                    halted: false,
                    crashed: false,
                })
                .collect(),
            crash_at: HashMap::new(),
        }
    }

    /// Schedule a crash: the node stops at the start of `round`.
    pub fn crash(&mut self, node: NodeId, round: u64) -> &mut Self {
        self.crash_at.insert(node, round);
        self
    }

    /// Run until quiescence (no messages in flight and every node halted or
    /// idle) or `max_rounds`.
    pub fn run(&mut self, max_rounds: u64) -> RunStats {
        let n = self.topo.len();
        let mut stats = RunStats {
            outputs: vec![None; n],
            per_node_sent: vec![0; n],
            ..RunStats::default()
        };
        // In-flight: messages to deliver next round, as (from, to, payload).
        let mut inflight: Vec<(NodeId, NodeId, Payload)> = Vec::new();

        for v in 0..n {
            if self.crash_at.get(&v) == Some(&0) {
                self.nodes[v].crashed = true;
            }
            let out = run_step(
                v,
                &self.topo,
                &mut self.nodes[v],
                &mut stats.local_steps,
                |p, c| p.on_start(c),
            );
            stats.per_node_sent[v] += out.len() as u64;
            inflight.extend(out.into_iter().map(|(to, pl)| (v, to, pl)));
        }

        let mut round = 1u64;
        while round <= max_rounds {
            for (v, node) in self.nodes.iter_mut().enumerate() {
                if self.crash_at.get(&v) == Some(&round) {
                    node.crashed = true;
                }
            }
            let delivering = std::mem::take(&mut inflight);
            let had_messages = !delivering.is_empty();
            for (from, to, payload) in delivering {
                if self.nodes[to].crashed || self.nodes[to].halted {
                    continue;
                }
                stats.messages += 1;
                let out = run_step(
                    to,
                    &self.topo,
                    &mut self.nodes[to],
                    &mut stats.local_steps,
                    |p, c| p.on_message(from, &payload, c),
                );
                stats.per_node_sent[to] += out.len() as u64;
                inflight.extend(out.into_iter().map(|(t, pl)| (to, t, pl)));
            }
            // Round tick for every live node.
            for v in 0..n {
                let out = run_step(
                    v,
                    &self.topo,
                    &mut self.nodes[v],
                    &mut stats.local_steps,
                    |p, c| p.on_round(round, c),
                );
                stats.per_node_sent[v] += out.len() as u64;
                inflight.extend(out.into_iter().map(|(to, pl)| (v, to, pl)));
            }
            stats.time = round;
            let all_done = self.nodes.iter().all(|s| s.halted || s.crashed);
            if inflight.is_empty() && (all_done || !had_messages) {
                break;
            }
            round += 1;
        }

        for (v, node) in self.nodes.iter().enumerate() {
            stats.outputs[v] = node.output;
        }
        stats
    }
}

/// Asynchronous executor: each message suffers a random delay in
/// `1..=max_delay`, drawn from a seeded RNG (taxonomy timing dimension:
/// *asynchronous*, reproducible per seed).
pub struct AsyncRunner {
    topo: Topology,
    nodes: Vec<NodeState>,
    crash_at: HashMap<NodeId, u64>,
    max_delay: u64,
    seed: u64,
    /// Per-message omission probability in [0, 1] (taxonomy fault
    /// dimension: *omission failures*). Drawn from the same seeded RNG, so
    /// lossy runs stay reproducible.
    drop_rate: f64,
}

impl AsyncRunner {
    /// Build a runner. `max_delay` ≥ 1.
    pub fn new(topo: Topology, procs: Vec<Box<dyn Process>>, max_delay: u64, seed: u64) -> Self {
        assert_eq!(topo.len(), procs.len(), "one process per node");
        assert!(max_delay >= 1);
        AsyncRunner {
            topo,
            nodes: procs
                .into_iter()
                .map(|proc| NodeState {
                    proc,
                    output: None,
                    halted: false,
                    crashed: false,
                })
                .collect(),
            crash_at: HashMap::new(),
            max_delay,
            seed,
            drop_rate: 0.0,
        }
    }

    /// Schedule a crash at virtual time `t`.
    pub fn crash(&mut self, node: NodeId, t: u64) -> &mut Self {
        self.crash_at.insert(node, t);
        self
    }

    /// Inject omission failures: each message is silently dropped with the
    /// given probability.
    pub fn drop_messages(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.drop_rate = rate;
        self
    }

    /// Run to quiescence (empty event queue) or `max_events`.
    pub fn run(&mut self, max_events: u64) -> RunStats {
        let n = self.topo.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stats = RunStats {
            outputs: vec![None; n],
            per_node_sent: vec![0; n],
            ..RunStats::default()
        };
        // (delivery_time, sequence, from, to, payload); sequence breaks ties
        // deterministically.
        type EventQueue = BinaryHeap<Reverse<(u64, u64, NodeId, NodeId, PayloadKey)>>;
        let mut queue: EventQueue = BinaryHeap::new();
        let mut payloads: HashMap<u64, Payload> = HashMap::new();
        let mut seq = 0u64;

        let drop_rate = self.drop_rate;
        let enqueue = |queue: &mut BinaryHeap<_>,
                       payloads: &mut HashMap<u64, Payload>,
                       rng: &mut StdRng,
                       seq: &mut u64,
                       now: u64,
                       from: NodeId,
                       to: NodeId,
                       pl: Payload| {
            if drop_rate > 0.0 && rng.gen_bool(drop_rate) {
                return; // omission failure: the message never arrives
            }
            let t = now + rng.gen_range(1..=self.max_delay);
            payloads.insert(*seq, pl);
            queue.push(Reverse((t, *seq, from, to, PayloadKey(*seq))));
            *seq += 1;
        };

        for v in 0..n {
            if self.crash_at.get(&v) == Some(&0) {
                self.nodes[v].crashed = true;
            }
            let out = run_step(
                v,
                &self.topo,
                &mut self.nodes[v],
                &mut stats.local_steps,
                |p, c| p.on_start(c),
            );
            stats.per_node_sent[v] += out.len() as u64;
            for (to, pl) in out {
                enqueue(&mut queue, &mut payloads, &mut rng, &mut seq, 0, v, to, pl);
            }
        }

        let mut delivered = 0u64;
        while let Some(Reverse((t, key, from, to, _))) = queue.pop() {
            if delivered >= max_events {
                break;
            }
            let payload = payloads.remove(&key).expect("payload stored");
            stats.time = stats.time.max(t);
            if let Some(&ct) = self.crash_at.get(&to) {
                if t >= ct {
                    self.nodes[to].crashed = true;
                }
            }
            if self.nodes[to].crashed || self.nodes[to].halted {
                continue;
            }
            stats.messages += 1;
            delivered += 1;
            let out = run_step(
                to,
                &self.topo,
                &mut self.nodes[to],
                &mut stats.local_steps,
                |p, c| p.on_message(from, &payload, c),
            );
            stats.per_node_sent[to] += out.len() as u64;
            for (t2, pl) in out {
                enqueue(&mut queue, &mut payloads, &mut rng, &mut seq, t, to, t2, pl);
            }
        }

        for (v, node) in self.nodes.iter().enumerate() {
            stats.outputs[v] = node.output;
        }
        stats
    }
}

/// Opaque payload key for heap ordering (payload itself is not `Ord`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct PayloadKey(u64);

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that floods a token once and counts receipts.
    struct Gossip {
        sent: bool,
        received: u64,
    }

    impl Process for Gossip {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if ctx.node == 0 && !self.sent {
                self.sent = true;
                ctx.send_all(Payload::Token);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: &Payload, ctx: &mut Ctx) {
            self.received += 1;
            ctx.charge(1);
            if !self.sent {
                self.sent = true;
                ctx.send_all(Payload::Token);
            }
            ctx.decide(self.received);
        }
    }

    fn gossip_nodes(n: usize) -> Vec<Box<dyn Process>> {
        (0..n)
            .map(|_| {
                Box::new(Gossip {
                    sent: false,
                    received: 0,
                }) as Box<dyn Process>
            })
            .collect()
    }

    #[test]
    fn sync_flood_reaches_everyone_in_diameter_rounds() {
        let topo = Topology::grid(4, 4);
        let diam = topo.diameter().unwrap() as u64;
        let mut r = SyncRunner::new(topo, gossip_nodes(16));
        let stats = r.run(100);
        // Every node decided (the initiator also hears the flood echo back).
        assert_eq!(stats.outputs.iter().filter(|o| o.is_some()).count(), 16);
        assert!(stats.time <= diam + 2);
        assert!(stats.local_steps > 0, "local computation is accounted");
    }

    #[test]
    fn async_flood_is_deterministic_per_seed() {
        let run = |seed| {
            let topo = Topology::random_connected(20, 10, 3);
            let mut r = AsyncRunner::new(topo, gossip_nodes(20), 5, seed);
            r.run(100_000)
        };
        assert_eq!(run(7), run(7));
        // Different seeds may deliver in different orders: time differs in
        // general (not asserted — only determinism matters).
    }

    #[test]
    fn crashed_node_blocks_its_messages() {
        // Line topology 0-1-2: crash node 1 before anything flows.
        let topo = Topology::from_lists("line", vec![vec![1], vec![0, 2], vec![1]]);
        let mut r = SyncRunner::new(topo, gossip_nodes(3));
        r.crash(1, 0);
        let stats = r.run(50);
        assert_eq!(stats.outputs[2], None, "token cannot pass the crash");
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn per_node_sent_accounting() {
        let topo = Topology::complete(4);
        let mut r = SyncRunner::new(topo, gossip_nodes(4));
        let stats = r.run(50);
        assert_eq!(stats.per_node_sent[0], 3); // initiator floods once
        assert_eq!(stats.per_node_sent.iter().sum::<u64>(), 4 * 3);
    }

    #[test]
    fn halted_nodes_receive_nothing() {
        struct HaltEarly;
        impl Process for HaltEarly {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: NodeId, _m: &Payload, _c: &mut Ctx) {
                panic!("halted node got a message");
            }
        }
        let topo = Topology::complete(3);
        let procs: Vec<Box<dyn Process>> = vec![
            Box::new(Gossip {
                sent: false,
                received: 0,
            }),
            Box::new(HaltEarly),
            Box::new(HaltEarly),
        ];
        let mut r = SyncRunner::new(topo, procs);
        let stats = r.run(10);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn omission_failures_are_injected_deterministically() {
        use crate::algorithms::{echo_nodes, lcr_nodes};
        // Lossless echo completes; a lossy network loses termination
        // detection — none of the catalog algorithms tolerate omission,
        // exactly as their taxonomy classification (Fault::None) states.
        let topo = Topology::grid(4, 4);
        let run = |rate: f64| {
            let mut r = AsyncRunner::new(topo.clone(), echo_nodes(16, 0), 5, 42);
            r.drop_messages(rate);
            r.run(1_000_000)
        };
        let clean = run(0.0);
        assert_eq!(clean.outputs[0], Some(1));
        let lossy = run(0.4);
        assert_eq!(lossy.outputs[0], None, "echo must stall under heavy loss");
        // Determinism: identical seeds, identical lossy runs.
        assert_eq!(run(0.4), run(0.4));

        // LCR with loss: the candidate token can vanish — no leader.
        let uids: Vec<u64> = (1..=12).collect();
        let mut r = AsyncRunner::new(Topology::ring_unidirectional(12), lcr_nodes(&uids), 5, 7);
        r.drop_messages(0.5);
        let stats = r.run(1_000_000);
        assert_eq!(crate::algorithms::consensus(&stats), None);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn drop_rate_is_validated() {
        let mut r = AsyncRunner::new(Topology::complete(2), gossip_nodes(2), 1, 0);
        r.drop_messages(1.5);
    }
}
