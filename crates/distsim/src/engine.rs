//! Execution engines: synchronous rounds and asynchronous event queue,
//! with fault injection (omission, duplication, crash-stop and
//! crash-recovery), timer events, a structured event trace, and full
//! metric accounting.

use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Telemetry bridge: process-wide tallies of simulator activity, resolved
/// once per process. Both runners flush a finished run's [`RunStats`] into
/// these via [`DistMetrics::absorb_run`], so registry snapshot deltas obey
/// the same conservation law as the per-run stats
/// (`distsim.sent + distsim.duplicated == distsim.delivered +
/// distsim.dropped + distsim.lost_to_crash + distsim.undelivered`).
/// Crash/recovery events, which `RunStats` does not record, are counted
/// live from the engines.
pub(crate) struct DistMetrics {
    runs: &'static gp_telemetry::Counter,
    sent: &'static gp_telemetry::Counter,
    retransmits: &'static gp_telemetry::Counter,
    delivered: &'static gp_telemetry::Counter,
    dropped: &'static gp_telemetry::Counter,
    duplicated: &'static gp_telemetry::Counter,
    lost_to_crash: &'static gp_telemetry::Counter,
    undelivered: &'static gp_telemetry::Counter,
    timer_events: &'static gp_telemetry::Counter,
    local_steps: &'static gp_telemetry::Counter,
    app_messages: &'static gp_telemetry::Counter,
    pub(crate) crashes: &'static gp_telemetry::Counter,
    pub(crate) recoveries: &'static gp_telemetry::Counter,
}

impl DistMetrics {
    pub(crate) fn absorb_run(&self, stats: &RunStats) {
        self.runs.incr();
        self.sent.add(stats.sent_total());
        self.retransmits.add(stats.retransmits);
        self.delivered.add(stats.messages);
        self.dropped.add(stats.dropped);
        self.duplicated.add(stats.duplicated);
        self.lost_to_crash.add(stats.lost_to_crash);
        self.undelivered.add(stats.undelivered);
        self.timer_events.add(stats.timer_events);
        self.local_steps.add(stats.local_steps);
        self.app_messages.add(stats.app_messages);
    }
}

pub(crate) fn dist_metrics() -> &'static DistMetrics {
    static METRICS: std::sync::OnceLock<DistMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| DistMetrics {
        runs: gp_telemetry::counter("distsim.runs"),
        sent: gp_telemetry::counter("distsim.sent"),
        retransmits: gp_telemetry::counter("distsim.retransmits"),
        delivered: gp_telemetry::counter("distsim.delivered"),
        dropped: gp_telemetry::counter("distsim.dropped"),
        duplicated: gp_telemetry::counter("distsim.duplicated"),
        lost_to_crash: gp_telemetry::counter("distsim.lost_to_crash"),
        undelivered: gp_telemetry::counter("distsim.undelivered"),
        timer_events: gp_telemetry::counter("distsim.timer_events"),
        local_steps: gp_telemetry::counter("distsim.local_steps"),
        app_messages: gp_telemetry::counter("distsim.app_messages"),
        crashes: gp_telemetry::counter("distsim.crashes"),
        recoveries: gp_telemetry::counter("distsim.recoveries"),
    })
}

/// Message payloads understood by the bundled algorithms. (A closed enum
/// keeps the engine allocation-light; a production library would make this
/// generic.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A candidate identifier (LCR, announcements).
    Uid(u64),
    /// Hirschberg–Sinclair token.
    HsToken {
        /// Candidate id.
        uid: u64,
        /// Remaining hops for outbound tokens.
        hops: u64,
        /// Outbound (true) or returning (false).
        outbound: bool,
    },
    /// Current maximum (FloodMax).
    Max(u64),
    /// Echo-algorithm token (probe and echo are the same token).
    Token,
    /// BFS level announcement.
    Level(u32),
    /// Reliable-channel data frame: a sequence-numbered application
    /// payload (see [`crate::channel::Reliable`]).
    Rel {
        /// Per-(sender, receiver) stream sequence number.
        seq: u64,
        /// The wrapped application payload.
        inner: Box<Payload>,
    },
    /// Reliable-channel acknowledgment for stream sequence number `seq`.
    RelAck {
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Control-plane assignment flood: the elected leader announces which
    /// shards are dead (a bitmask) under its election epoch, and every
    /// receiver re-routes the dead shards' vnode ranges to survivors.
    Assign {
        /// Election epoch the assignment was issued under; stale epochs
        /// are fenced by receivers.
        epoch: u64,
        /// Bitmask of dead shard indices.
        dead: u64,
    },
}

/// A configuration error detected before a run starts — a disconnected
/// topology handed to a diameter-dependent algorithm, for example — as a
/// value to propagate instead of a panic inside the runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// The topology's diameter as a configuration result: `Err` for a
/// disconnected topology (where no diameter exists and any
/// diameter-parameterized algorithm is misconfigured) instead of the
/// panic a bare `diameter().unwrap()` produces.
pub fn required_diameter(topo: &Topology) -> Result<u64, ConfigError> {
    topo.diameter().map(|d| d as u64).ok_or_else(|| {
        ConfigError(format!(
            "topology {} is disconnected: no diameter exists, so \
             diameter-parameterized algorithms cannot be deployed on it",
            topo.name()
        ))
    })
}

/// Per-run metrics: the three performance dimensions of the taxonomy,
/// plus fault-layer accounting. The message counters obey a conservation
/// law per run:
///
/// ```text
/// per_node_sent.sum() + duplicated
///     == messages + dropped + lost_to_crash + undelivered
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Rounds (synchronous) or virtual completion time (asynchronous).
    /// Only events actually processed at a live node advance this clock.
    pub time: u64,
    /// Total local computation steps charged via [`Ctx::charge`] — the
    /// metric the paper notes is "rarely accounted for".
    pub local_steps: u64,
    /// Per-node decided outputs.
    pub outputs: Vec<Option<u64>>,
    /// Per-node message counts (sent).
    pub per_node_sent: Vec<u64>,
    /// Messages lost to injected omission failures.
    pub dropped: u64,
    /// Extra copies injected by duplication failures.
    pub duplicated: u64,
    /// Sends flagged as retransmissions via [`Ctx::resend`] (these also
    /// count in `per_node_sent`).
    pub retransmits: u64,
    /// Application-level deliveries recorded by channel wrappers via
    /// [`Ctx::note_app_delivery`] (zero for unwrapped processes).
    pub app_messages: u64,
    /// Messages discarded because the receiver had crashed or halted.
    pub lost_to_crash: u64,
    /// Messages still in flight when the run ended (quiescence leaves
    /// this at zero; an exhausted event budget does not).
    pub undelivered: u64,
    /// Timer events fired at live nodes.
    pub timer_events: u64,
}

impl RunStats {
    /// Nodes that decided the given value.
    pub fn deciders_of(&self, v: u64) -> usize {
        self.outputs.iter().filter(|o| **o == Some(v)).count()
    }

    /// Total application-level sends across nodes.
    pub fn sent_total(&self) -> u64 {
        self.per_node_sent.iter().sum()
    }

    /// True if the message conservation law holds (every send is accounted
    /// for as delivered, dropped, lost at a dead receiver, or in flight).
    pub fn conserves_messages(&self) -> bool {
        self.sent_total() + self.duplicated
            == self.messages + self.dropped + self.lost_to_crash + self.undelivered
    }
}

/// One record in the structured event trace ([`AsyncRunner::record_trace`]).
/// `seq` is the engine-assigned id correlating a send with its later
/// delivery / drop / loss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A first-time application send at virtual time `t`.
    Send {
        /// Send time.
        t: u64,
        /// Engine message id.
        seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A send flagged as a retransmission ([`Ctx::resend`]).
    Retransmit {
        /// Send time.
        t: u64,
        /// Engine message id.
        seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The message was dropped by injected omission failure.
    Drop {
        /// Send time (the message never entered the network).
        t: u64,
        /// Engine message id.
        seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// An injected duplicate copy of message `of_seq` was created.
    Duplicate {
        /// Send time of the original.
        t: u64,
        /// Engine message id of the extra copy.
        seq: u64,
        /// Id of the duplicated original.
        of_seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The message was delivered.
    Deliver {
        /// Delivery time.
        t: u64,
        /// Engine message id.
        seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The message arrived at a crashed or halted receiver and was lost.
    Lost {
        /// Arrival time.
        t: u64,
        /// Engine message id.
        seq: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A node crash-stopped.
    Crash {
        /// Crash time.
        t: u64,
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node recovered.
    Recover {
        /// Recovery time.
        t: u64,
        /// The recovered node.
        node: NodeId,
    },
    /// A timer fired at a live node.
    Timer {
        /// Firing time.
        t: u64,
        /// The node whose timer fired.
        node: NodeId,
        /// The token passed to [`Ctx::set_timer`].
        token: u64,
    },
}

impl TraceEvent {
    fn json_into(&self, out: &mut String) {
        use std::fmt::Write;
        let msg = |out: &mut String, kind: &str, t: u64, seq: u64, from: NodeId, to: NodeId| {
            let _ = write!(
                out,
                r#"{{"kind":"{kind}","t":{t},"seq":{seq},"from":{from},"to":{to}}}"#
            );
        };
        match *self {
            TraceEvent::Send { t, seq, from, to } => msg(out, "send", t, seq, from, to),
            TraceEvent::Retransmit { t, seq, from, to } => msg(out, "retransmit", t, seq, from, to),
            TraceEvent::Drop { t, seq, from, to } => msg(out, "drop", t, seq, from, to),
            TraceEvent::Duplicate {
                t,
                seq,
                of_seq,
                from,
                to,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"duplicate","t":{t},"seq":{seq},"of_seq":{of_seq},"from":{from},"to":{to}}}"#
                );
            }
            TraceEvent::Deliver { t, seq, from, to } => msg(out, "deliver", t, seq, from, to),
            TraceEvent::Lost { t, seq, from, to } => msg(out, "lost", t, seq, from, to),
            TraceEvent::Crash { t, node } => {
                let _ = write!(out, r#"{{"kind":"crash","t":{t},"node":{node}}}"#);
            }
            TraceEvent::Recover { t, node } => {
                let _ = write!(out, r#"{{"kind":"recover","t":{t},"node":{node}}}"#);
            }
            TraceEvent::Timer { t, node, token } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"timer","t":{t},"node":{node},"token":{token}}}"#
                );
            }
        }
    }
}

/// Render a trace as a JSON array (one object per event, in order).
pub fn trace_json(trace: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        ev.json_into(&mut out);
    }
    out.push(']');
    out
}

/// The API a process sees during a step.
pub struct Ctx<'a> {
    /// This node's id.
    pub node: NodeId,
    /// This node's out-neighbors.
    pub neighbors: &'a [NodeId],
    pub(crate) outbox: &'a mut Vec<(NodeId, Payload, bool)>,
    pub(crate) timers: &'a mut Vec<(u64, u64)>,
    pub(crate) stats: &'a mut RunStats,
    pub(crate) output: &'a mut Option<u64>,
    pub(crate) halted: &'a mut bool,
}

impl<'a> Ctx<'a> {
    /// Assemble a context from its parts. Public so *composition
    /// wrappers* — [`crate::channel::Reliable`] in this crate, the
    /// service's control-plane process outside it — can run a wrapped
    /// process against a sub-context whose outbox, timers, or halt flag
    /// they own, intercepting what they need and forwarding the rest.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        neighbors: &'a [NodeId],
        outbox: &'a mut Vec<(NodeId, Payload, bool)>,
        timers: &'a mut Vec<(u64, u64)>,
        stats: &'a mut RunStats,
        output: &'a mut Option<u64>,
        halted: &'a mut bool,
    ) -> Self {
        Ctx {
            node,
            neighbors,
            outbox,
            timers,
            stats,
            output,
            halted,
        }
    }

    /// Send a message to a neighbor.
    pub fn send(&mut self, to: NodeId, payload: Payload) {
        debug_assert!(
            self.neighbors.contains(&to),
            "node {} has no link to {}",
            self.node,
            to
        );
        self.outbox.push((to, payload, false));
    }

    /// Send to every neighbor.
    pub fn send_all(&mut self, payload: Payload) {
        for &n in self.neighbors {
            self.outbox.push((n, payload.clone(), false));
        }
    }

    /// Send a message flagged as a retransmission: counted in
    /// [`RunStats::retransmits`] and traced as such, but otherwise an
    /// ordinary send.
    pub fn resend(&mut self, to: NodeId, payload: Payload) {
        debug_assert!(
            self.neighbors.contains(&to),
            "node {} has no link to {}",
            self.node,
            to
        );
        self.outbox.push((to, payload, true));
    }

    /// Schedule [`Process::on_timer`] with `token` after `delay` time units
    /// (asynchronous model) or rounds (synchronous model). Timers are
    /// local: they are never dropped, duplicated, or counted as messages —
    /// but a timer firing at a crashed or halted node is discarded.
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        assert!(delay >= 1, "timer delay must be at least 1");
        self.timers.push((delay, token));
    }

    /// Charge `n` units of local computation (taxonomy performance
    /// accounting).
    pub fn charge(&mut self, n: u64) {
        self.stats.local_steps += n;
    }

    /// Record one application-level delivery (used by channel wrappers
    /// such as [`crate::channel::Reliable`] to expose how many messages
    /// the wrapped process actually observed).
    pub fn note_app_delivery(&mut self) {
        self.stats.app_messages += 1;
    }

    /// Record this node's decision.
    pub fn decide(&mut self, v: u64) {
        *self.output = Some(v);
    }

    /// Stop participating (no further events delivered).
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

/// A distributed process: the algorithm running at one node.
pub trait Process {
    /// Called once before any message flows.
    fn on_start(&mut self, ctx: &mut Ctx);

    /// Called per delivered message.
    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx);

    /// Synchronous model only: called once per round after deliveries.
    fn on_round(&mut self, _round: u64, _ctx: &mut Ctx) {}

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}

    /// Called when this node recovers from a crash
    /// ([`AsyncRunner::recover`]). State survives the crash (stable
    /// storage semantics); pending timers do not — re-arm them here.
    fn on_recover(&mut self, _ctx: &mut Ctx) {}
}

/// A heap-allocated process. `Send` so runners may host nodes on OS
/// threads (the socket-backed [`crate::net::NetRunner`]) as well as
/// in-process.
pub type BoxProcess = Box<dyn Process + Send>;

struct NodeState {
    proc: BoxProcess,
    output: Option<u64>,
    halted: bool,
    crashed: bool,
}

/// Sends and timers produced by one process step, generic in what a
/// "send" carries: the simulator moves real [`Payload`]s; the socket
/// runner's coordinator moves per-link frame indices (the payload bytes
/// travel peer-to-peer over TCP and never pass through the scheduler).
pub(crate) struct StepOutOf<M> {
    /// (to, message, is_retransmit)
    pub(crate) sends: Vec<(NodeId, M, bool)>,
    /// (delay, token)
    pub(crate) timers: Vec<(u64, u64)>,
}

impl<M> Default for StepOutOf<M> {
    fn default() -> Self {
        StepOutOf {
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }
}

pub(crate) type StepOut = StepOutOf<Payload>;

fn run_step(
    node: NodeId,
    topo: &Topology,
    st: &mut NodeState,
    stats: &mut RunStats,
    f: impl FnOnce(&mut dyn Process, &mut Ctx),
) -> StepOut {
    let mut out = StepOut::default();
    if st.crashed || st.halted {
        return out;
    }
    let mut ctx = Ctx::new(
        node,
        topo.neighbors(node),
        &mut out.sends,
        &mut out.timers,
        stats,
        &mut st.output,
        &mut st.halted,
    );
    f(st.proc.as_mut(), &mut ctx);
    out
}

/// Synchronous executor: all messages sent in round `r` are delivered at
/// the start of round `r + 1` (taxonomy timing dimension: *synchronous*).
pub struct SyncRunner {
    topo: Topology,
    nodes: Vec<NodeState>,
    /// Nodes crashing at the start of the given round.
    crash_at: HashMap<NodeId, u64>,
    /// If set, silence (a round with no deliveries) is not quiescence:
    /// the run only ends when every node has halted or crashed (or
    /// `max_rounds` is hit).
    run_to_halt: bool,
}

impl SyncRunner {
    /// Build a runner from a topology and one process per node.
    pub fn new(topo: Topology, procs: Vec<BoxProcess>) -> Self {
        assert_eq!(topo.len(), procs.len(), "one process per node");
        SyncRunner {
            topo,
            nodes: procs
                .into_iter()
                .map(|proc| NodeState {
                    proc,
                    output: None,
                    halted: false,
                    crashed: false,
                })
                .collect(),
            crash_at: HashMap::new(),
            run_to_halt: false,
        }
    }

    /// Schedule a crash: the node stops at the start of `round`.
    pub fn crash(&mut self, node: NodeId, round: u64) -> &mut Self {
        self.crash_at.insert(node, round);
        self
    }

    /// Require explicit termination: keep running rounds (up to the
    /// `max_rounds` cap) until every node has halted or crashed, even
    /// through rounds of total silence. Without this, a round with no
    /// deliveries and nothing in flight ends the run — which silently
    /// starves algorithms that rely only on `on_round` or timers.
    pub fn require_halt(&mut self) -> &mut Self {
        self.run_to_halt = true;
        self
    }

    /// Run until quiescence (no messages in flight, no pending timers, and
    /// every node halted or idle) or `max_rounds`.
    pub fn run(&mut self, max_rounds: u64) -> RunStats {
        let _span = gp_telemetry::span("sync_run");
        let n = self.topo.len();
        let mut stats = RunStats {
            outputs: vec![None; n],
            per_node_sent: vec![0; n],
            ..RunStats::default()
        };
        // In-flight: messages to deliver next round, as (from, to, payload).
        let mut inflight: Vec<(NodeId, NodeId, Payload)> = Vec::new();
        // Pending timers per node: (fire_round, token), insertion-ordered.
        let mut timers: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];

        fn absorb(
            v: NodeId,
            out: StepOut,
            now: u64,
            stats: &mut RunStats,
            inflight: &mut Vec<(NodeId, NodeId, Payload)>,
            timers: &mut [Vec<(u64, u64)>],
        ) {
            stats.per_node_sent[v] += out.sends.len() as u64;
            for (to, pl, retransmit) in out.sends {
                if retransmit {
                    stats.retransmits += 1;
                }
                inflight.push((v, to, pl));
            }
            for (delay, token) in out.timers {
                timers[v].push((now + delay, token));
            }
        }

        for v in 0..n {
            if self.crash_at.get(&v) == Some(&0) {
                self.nodes[v].crashed = true;
                dist_metrics().crashes.incr();
            }
            let out = run_step(v, &self.topo, &mut self.nodes[v], &mut stats, |p, c| {
                p.on_start(c)
            });
            absorb(v, out, 0, &mut stats, &mut inflight, &mut timers);
        }

        let mut round = 1u64;
        while round <= max_rounds {
            for (v, node) in self.nodes.iter_mut().enumerate() {
                if self.crash_at.get(&v) == Some(&round) {
                    node.crashed = true;
                    dist_metrics().crashes.incr();
                }
            }
            let delivering = std::mem::take(&mut inflight);
            let had_messages = !delivering.is_empty();
            for (from, to, payload) in delivering {
                if self.nodes[to].crashed || self.nodes[to].halted {
                    stats.lost_to_crash += 1;
                    continue;
                }
                stats.messages += 1;
                let out = run_step(to, &self.topo, &mut self.nodes[to], &mut stats, |p, c| {
                    p.on_message(from, &payload, c)
                });
                absorb(to, out, round, &mut stats, &mut inflight, &mut timers);
            }
            // Fire due timers at live nodes.
            for v in 0..n {
                let due: Vec<u64> = {
                    let q = &mut timers[v];
                    let mut due = Vec::new();
                    q.retain(|&(fire, token)| {
                        if fire <= round {
                            due.push(token);
                            false
                        } else {
                            true
                        }
                    });
                    due
                };
                for token in due {
                    if self.nodes[v].crashed || self.nodes[v].halted {
                        continue;
                    }
                    stats.timer_events += 1;
                    let out = run_step(v, &self.topo, &mut self.nodes[v], &mut stats, |p, c| {
                        p.on_timer(token, c)
                    });
                    absorb(v, out, round, &mut stats, &mut inflight, &mut timers);
                }
            }
            // Round tick for every live node.
            for v in 0..n {
                let out = run_step(v, &self.topo, &mut self.nodes[v], &mut stats, |p, c| {
                    p.on_round(round, c)
                });
                absorb(v, out, round, &mut stats, &mut inflight, &mut timers);
            }
            stats.time = round;
            let all_done = self.nodes.iter().all(|s| s.halted || s.crashed);
            let timers_pending = self
                .nodes
                .iter()
                .enumerate()
                .any(|(v, s)| !s.halted && !s.crashed && !timers[v].is_empty());
            let silent_quiescence = !self.run_to_halt && !had_messages;
            if inflight.is_empty() && !timers_pending && (all_done || silent_quiescence) {
                break;
            }
            round += 1;
        }

        stats.undelivered = inflight.len() as u64;
        for (v, node) in self.nodes.iter().enumerate() {
            stats.outputs[v] = node.output;
        }
        dist_metrics().absorb_run(&stats);
        stats
    }
}

// Event kinds in the asynchronous queue, ordered within a timestamp by
// their global sequence number (control events are enqueued first).
// Shared with the socket runner's coordinator, which replays the exact
// same schedule over real connections.
pub(crate) const EV_CRASH: u8 = 0;
pub(crate) const EV_RECOVER: u8 = 1;
pub(crate) const EV_MSG: u8 = 2;
pub(crate) const EV_TIMER: u8 = 3;

/// Asynchronous executor: each message suffers a random delay in
/// `1..=max_delay`, drawn from a seeded RNG (taxonomy timing dimension:
/// *asynchronous*, reproducible per seed).
///
/// Fault injection (all drawn from the same seeded RNG, so runs stay
/// deterministic): per-message omission ([`drop_messages`]), per-message
/// duplication ([`duplicate_messages`]), crash-stop ([`crash`]) and
/// crash-recovery ([`recover`]).
///
/// [`drop_messages`]: AsyncRunner::drop_messages
/// [`duplicate_messages`]: AsyncRunner::duplicate_messages
/// [`crash`]: AsyncRunner::crash
/// [`recover`]: AsyncRunner::recover
pub struct AsyncRunner {
    topo: Topology,
    nodes: Vec<NodeState>,
    crash_at: HashMap<NodeId, u64>,
    recover_at: HashMap<NodeId, u64>,
    max_delay: u64,
    seed: u64,
    /// Per-message omission probability in [0, 1] (taxonomy fault
    /// dimension: *omission failures*).
    drop_rate: f64,
    /// Per-message duplication probability in [0, 1].
    dup_rate: f64,
    tracing: bool,
    trace: Vec<TraceEvent>,
}

// One queued event: (delivery_time, global_seq, kind, a, b, key). For
// EV_MSG `a`/`b` are from/to and `key` indexes `payloads`; for EV_TIMER
// `a` is the node and `key` the token; for crash/recover `a` is the node.
pub(crate) type QueuedEvent = (u64, u64, u8, NodeId, NodeId, u64);

// Carries the network-level state of one asynchronous run: the event
// queue, the fault-injection RNG, and the trace. Generic in the message
// representation `M` for the same reason as [`StepOutOf`]: the simulator
// schedules real [`Payload`]s, the socket runner's coordinator schedules
// per-link frame indices — but both draw from the RNG in the *identical*
// order, which is what makes a socket run cross-validate event-for-event
// against a simulator run on the same seed.
pub(crate) struct NetState<M> {
    pub(crate) queue: BinaryHeap<Reverse<QueuedEvent>>,
    pub(crate) payloads: HashMap<u64, M>,
    pub(crate) seq: u64,
    pub(crate) rng: StdRng,
    pub(crate) max_delay: u64,
    pub(crate) drop_rate: f64,
    pub(crate) dup_rate: f64,
    pub(crate) tracing: bool,
    pub(crate) trace: Vec<TraceEvent>,
}

impl<M: Clone> NetState<M> {
    pub(crate) fn new(
        max_delay: u64,
        seed: u64,
        drop_rate: f64,
        dup_rate: f64,
        tracing: bool,
    ) -> Self {
        NetState {
            queue: BinaryHeap::new(),
            payloads: HashMap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            max_delay,
            drop_rate,
            dup_rate,
            tracing,
            trace: Vec::new(),
        }
    }

    pub(crate) fn trace(&mut self, ev: TraceEvent) {
        if self.tracing {
            self.trace.push(ev);
        }
    }

    // Absorb one step's sends and timers into the event queue, applying
    // omission and duplication faults to the sends. This is the *only*
    // place the fault/delay RNG is consulted, in a fixed per-send order
    // (drop draw, delay draw, duplication draw, duplicate-delay draw) —
    // every runner that shares it inherits the same schedule.
    pub(crate) fn absorb(
        &mut self,
        now: u64,
        from: NodeId,
        out: StepOutOf<M>,
        stats: &mut RunStats,
    ) {
        stats.per_node_sent[from] += out.sends.len() as u64;
        for (to, pl, retransmit) in out.sends {
            let seq = self.seq;
            self.seq += 1;
            if retransmit {
                stats.retransmits += 1;
                self.trace(TraceEvent::Retransmit {
                    t: now,
                    seq,
                    from,
                    to,
                });
            } else {
                self.trace(TraceEvent::Send {
                    t: now,
                    seq,
                    from,
                    to,
                });
            }
            if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate) {
                stats.dropped += 1;
                self.trace(TraceEvent::Drop {
                    t: now,
                    seq,
                    from,
                    to,
                });
                continue; // omission failure: the message never arrives
            }
            let t = now + self.rng.gen_range(1..=self.max_delay);
            self.payloads.insert(seq, pl.clone());
            self.queue.push(Reverse((t, seq, EV_MSG, from, to, seq)));
            if self.dup_rate > 0.0 && self.rng.gen_bool(self.dup_rate) {
                let dup_seq = self.seq;
                self.seq += 1;
                stats.duplicated += 1;
                self.trace(TraceEvent::Duplicate {
                    t: now,
                    seq: dup_seq,
                    of_seq: seq,
                    from,
                    to,
                });
                let t2 = now + self.rng.gen_range(1..=self.max_delay);
                self.payloads.insert(dup_seq, pl);
                self.queue
                    .push(Reverse((t2, dup_seq, EV_MSG, from, to, dup_seq)));
            }
        }
        for (delay, token) in out.timers {
            let seq = self.seq;
            self.seq += 1;
            self.queue
                .push(Reverse((now + delay, seq, EV_TIMER, from, from, token)));
        }
    }
}

impl AsyncRunner {
    /// Build a runner. `max_delay` ≥ 1.
    pub fn new(topo: Topology, procs: Vec<BoxProcess>, max_delay: u64, seed: u64) -> Self {
        assert_eq!(topo.len(), procs.len(), "one process per node");
        assert!(max_delay >= 1);
        AsyncRunner {
            topo,
            nodes: procs
                .into_iter()
                .map(|proc| NodeState {
                    proc,
                    output: None,
                    halted: false,
                    crashed: false,
                })
                .collect(),
            crash_at: HashMap::new(),
            recover_at: HashMap::new(),
            max_delay,
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// Schedule a crash at virtual time `t`.
    pub fn crash(&mut self, node: NodeId, t: u64) -> &mut Self {
        self.crash_at.insert(node, t);
        self
    }

    /// Schedule a recovery: the node, crashed earlier via [`crash`], comes
    /// back at virtual time `t` with its state intact (stable-storage
    /// semantics) and gets an [`Process::on_recover`] callback. Messages
    /// that arrived during the outage are lost; so are pending timers.
    ///
    /// [`crash`]: AsyncRunner::crash
    pub fn recover(&mut self, node: NodeId, t: u64) -> &mut Self {
        let ct = *self
            .crash_at
            .get(&node)
            .expect("recover(node, t) needs a crash scheduled for the node first");
        assert!(t > ct, "recovery must come after the crash (crash at {ct})");
        self.recover_at.insert(node, t);
        self
    }

    /// Inject omission failures: each message is silently dropped with the
    /// given probability.
    pub fn drop_messages(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.drop_rate = rate;
        self
    }

    /// Inject duplication failures: each (non-dropped) message spawns one
    /// extra copy with the given probability, delivered with its own
    /// independent delay.
    pub fn duplicate_messages(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.dup_rate = rate;
        self
    }

    /// Record a structured event trace during [`run`], retrievable via
    /// [`trace`] / [`trace_json`].
    ///
    /// [`run`]: AsyncRunner::run
    /// [`trace`]: AsyncRunner::trace
    /// [`trace_json`]: AsyncRunner::trace_json
    pub fn record_trace(&mut self) -> &mut Self {
        self.tracing = true;
        self
    }

    /// The structured event trace of the last [`run`] (empty unless
    /// [`record_trace`] was called).
    ///
    /// [`run`]: AsyncRunner::run
    /// [`record_trace`]: AsyncRunner::record_trace
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The last run's trace rendered as a JSON array.
    pub fn trace_json(&self) -> String {
        trace_json(&self.trace)
    }

    /// Run to quiescence (empty event queue) or until `max_events`
    /// deliveries/timer firings have been processed. The budget is checked
    /// *before* an event is taken, so an exhausted budget leaves every
    /// unprocessed message in flight (counted in
    /// [`RunStats::undelivered`]) rather than silently discarding one.
    pub fn run(&mut self, max_events: u64) -> RunStats {
        let _span = gp_telemetry::span("async_run");
        let n = self.topo.len();
        let mut stats = RunStats {
            outputs: vec![None; n],
            per_node_sent: vec![0; n],
            ..RunStats::default()
        };
        let mut net: NetState<Payload> = NetState::new(
            self.max_delay,
            self.seed,
            self.drop_rate,
            self.dup_rate,
            self.tracing,
        );

        // Control events first (in node order, for determinism): their
        // sequence numbers precede every message's, so at equal timestamps
        // a crash/recovery takes effect before deliveries.
        for v in 0..n {
            if let Some(&ct) = self.crash_at.get(&v) {
                let seq = net.seq;
                net.seq += 1;
                net.queue.push(Reverse((ct, seq, EV_CRASH, v, v, 0)));
            }
            if let Some(&rt) = self.recover_at.get(&v) {
                let seq = net.seq;
                net.seq += 1;
                net.queue.push(Reverse((rt, seq, EV_RECOVER, v, v, 0)));
            }
        }

        for v in 0..n {
            if self.crash_at.get(&v) == Some(&0) {
                self.nodes[v].crashed = true;
            }
            let out = run_step(v, &self.topo, &mut self.nodes[v], &mut stats, |p, c| {
                p.on_start(c)
            });
            net.absorb(0, v, out, &mut stats);
        }

        let mut processed = 0u64;
        loop {
            if processed >= max_events {
                break;
            }
            let Some(Reverse((t, _s, kind, a, b, key))) = net.queue.pop() else {
                break;
            };
            match kind {
                EV_CRASH => {
                    self.nodes[a].crashed = true;
                    dist_metrics().crashes.incr();
                    net.trace(TraceEvent::Crash { t, node: a });
                }
                EV_RECOVER => {
                    self.nodes[a].crashed = false;
                    dist_metrics().recoveries.incr();
                    net.trace(TraceEvent::Recover { t, node: a });
                    let out = run_step(a, &self.topo, &mut self.nodes[a], &mut stats, |p, c| {
                        p.on_recover(c)
                    });
                    net.absorb(t, a, out, &mut stats);
                }
                EV_MSG => {
                    let payload = net.payloads.remove(&key).expect("payload stored");
                    if self.nodes[b].crashed || self.nodes[b].halted {
                        stats.lost_to_crash += 1;
                        net.trace(TraceEvent::Lost {
                            t,
                            seq: key,
                            from: a,
                            to: b,
                        });
                        continue;
                    }
                    stats.messages += 1;
                    stats.time = stats.time.max(t);
                    processed += 1;
                    net.trace(TraceEvent::Deliver {
                        t,
                        seq: key,
                        from: a,
                        to: b,
                    });
                    let out = run_step(b, &self.topo, &mut self.nodes[b], &mut stats, |p, c| {
                        p.on_message(a, &payload, c)
                    });
                    net.absorb(t, b, out, &mut stats);
                }
                EV_TIMER => {
                    if self.nodes[a].crashed || self.nodes[a].halted {
                        continue;
                    }
                    stats.timer_events += 1;
                    stats.time = stats.time.max(t);
                    processed += 1;
                    net.trace(TraceEvent::Timer {
                        t,
                        node: a,
                        token: key,
                    });
                    let out = run_step(a, &self.topo, &mut self.nodes[a], &mut stats, |p, c| {
                        p.on_timer(key, c)
                    });
                    net.absorb(t, a, out, &mut stats);
                }
                _ => unreachable!("unknown event kind"),
            }
        }

        stats.undelivered = net
            .queue
            .iter()
            .filter(|Reverse((_, _, kind, ..))| *kind == EV_MSG)
            .count() as u64;
        self.trace = net.trace;
        for (v, node) in self.nodes.iter().enumerate() {
            stats.outputs[v] = node.output;
        }
        dist_metrics().absorb_run(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that floods a token once and counts receipts.
    struct Gossip {
        sent: bool,
        received: u64,
    }

    impl Process for Gossip {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if ctx.node == 0 && !self.sent {
                self.sent = true;
                ctx.send_all(Payload::Token);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: &Payload, ctx: &mut Ctx) {
            self.received += 1;
            ctx.charge(1);
            if !self.sent {
                self.sent = true;
                ctx.send_all(Payload::Token);
            }
            ctx.decide(self.received);
        }
    }

    fn gossip_nodes(n: usize) -> Vec<BoxProcess> {
        (0..n)
            .map(|_| {
                Box::new(Gossip {
                    sent: false,
                    received: 0,
                }) as BoxProcess
            })
            .collect()
    }

    #[test]
    fn sync_flood_reaches_everyone_in_diameter_rounds() {
        let topo = Topology::grid(4, 4);
        let diam = required_diameter(&topo).expect("grid is connected");
        let mut r = SyncRunner::new(topo, gossip_nodes(16));
        let stats = r.run(100);
        // Every node decided (the initiator also hears the flood echo back).
        assert_eq!(stats.outputs.iter().filter(|o| o.is_some()).count(), 16);
        assert!(stats.time <= diam + 2);
        assert!(stats.local_steps > 0, "local computation is accounted");
    }

    /// Regression: deploying a diameter-parameterized algorithm on a
    /// disconnected topology used to panic on `diameter().unwrap()`; it
    /// must surface as a configuration error instead.
    #[test]
    fn disconnected_topology_is_a_config_error_not_a_panic() {
        let topo = Topology::from_lists("islands", vec![vec![1], vec![0], vec![]]);
        let err = required_diameter(&topo).expect_err("no diameter exists");
        assert!(err.to_string().contains("disconnected"), "got: {err}");
        assert!(err.to_string().contains("islands"), "names the topology");
        // Connected topologies still report their diameter.
        assert_eq!(required_diameter(&Topology::ring_bidirectional(6)), Ok(3));
    }

    #[test]
    fn async_flood_is_deterministic_per_seed() {
        let run = |seed| {
            let topo = Topology::random_connected(20, 10, 3);
            let mut r = AsyncRunner::new(topo, gossip_nodes(20), 5, seed);
            r.run(100_000)
        };
        assert_eq!(run(7), run(7));
        // Different seeds may deliver in different orders: time differs in
        // general (not asserted — only determinism matters).
    }

    #[test]
    fn crashed_node_blocks_its_messages() {
        // Line topology 0-1-2: crash node 1 before anything flows.
        let topo = Topology::from_lists("line", vec![vec![1], vec![0, 2], vec![1]]);
        let mut r = SyncRunner::new(topo, gossip_nodes(3));
        r.crash(1, 0);
        let stats = r.run(50);
        assert_eq!(stats.outputs[2], None, "token cannot pass the crash");
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn per_node_sent_accounting() {
        let topo = Topology::complete(4);
        let mut r = SyncRunner::new(topo, gossip_nodes(4));
        let stats = r.run(50);
        assert_eq!(stats.per_node_sent[0], 3); // initiator floods once
        assert_eq!(stats.per_node_sent.iter().sum::<u64>(), 4 * 3);
    }

    #[test]
    fn halted_nodes_receive_nothing() {
        struct HaltEarly;
        impl Process for HaltEarly {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: NodeId, _m: &Payload, _c: &mut Ctx) {
                panic!("halted node got a message");
            }
        }
        let topo = Topology::complete(3);
        let procs: Vec<BoxProcess> = vec![
            Box::new(Gossip {
                sent: false,
                received: 0,
            }),
            Box::new(HaltEarly),
            Box::new(HaltEarly),
        ];
        let mut r = SyncRunner::new(topo, procs);
        let stats = r.run(10);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn omission_failures_are_injected_deterministically() {
        use crate::algorithms::{echo_nodes, lcr_nodes};
        // Lossless echo completes; a lossy network loses termination
        // detection — none of the seed catalog algorithms tolerate
        // omission, exactly as their taxonomy classification (Fault::None)
        // states. (The reliable-channel wrappers exist for this reason.)
        let topo = Topology::grid(4, 4);
        let run = |rate: f64| {
            let mut r = AsyncRunner::new(topo.clone(), echo_nodes(16, 0), 5, 42);
            r.drop_messages(rate);
            r.run(1_000_000)
        };
        let clean = run(0.0);
        assert_eq!(clean.outputs[0], Some(1));
        let lossy = run(0.4);
        assert_eq!(lossy.outputs[0], None, "echo must stall under heavy loss");
        // Determinism: identical seeds, identical lossy runs.
        assert_eq!(run(0.4), run(0.4));

        // LCR with loss: the candidate token can vanish — no leader.
        let uids: Vec<u64> = (1..=12).collect();
        let mut r = AsyncRunner::new(Topology::ring_unidirectional(12), lcr_nodes(&uids), 5, 7);
        r.drop_messages(0.5);
        let stats = r.run(1_000_000);
        assert_eq!(crate::algorithms::consensus(&stats), None);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn drop_rate_is_validated() {
        let mut r = AsyncRunner::new(Topology::complete(2), gossip_nodes(2), 1, 0);
        r.drop_messages(1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dup_rate_is_validated() {
        let mut r = AsyncRunner::new(Topology::complete(2), gossip_nodes(2), 1, 0);
        r.duplicate_messages(-0.1);
    }

    /// A sends `count` tokens to B at start; B halts on the first receipt.
    struct Spray {
        count: usize,
    }
    impl Process for Spray {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if ctx.node == 0 {
                for _ in 0..self.count {
                    ctx.send(1, Payload::Token);
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: &Payload, ctx: &mut Ctx) {
            ctx.decide(1);
            ctx.halt();
        }
    }

    /// Regression (bug 1): completion time must reflect only *delivered*
    /// messages. A message bound for a node that crashed before its
    /// arrival must not inflate `stats.time`.
    #[test]
    fn time_is_not_inflated_by_undeliverable_messages() {
        let topo = Topology::from_lists("pair", vec![vec![1], vec![0]]);
        let procs: Vec<BoxProcess> =
            vec![Box::new(Spray { count: 1 }), Box::new(Spray { count: 0 })];
        let mut r = AsyncRunner::new(topo, procs, 20, 3);
        // Node 1 crashes at t=0: the single message (delay in 1..=20) can
        // never be delivered. Nothing was processed, so time stays 0 —
        // the buggy engine reported the arrival time of the lost message.
        r.crash(1, 0);
        let stats = r.run(1000);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.time, 0, "undelivered messages must not advance time");
        assert_eq!(stats.lost_to_crash, 1);
    }

    /// Regression (bug 1, halted receiver): a message discarded at a node
    /// that halted before its arrival must not set the clock either.
    #[test]
    fn time_stops_at_the_last_delivery() {
        let topo = Topology::from_lists("pair", vec![vec![1], vec![0]]);
        // Halting receiver: B halts on the first of two in-flight tokens.
        let halting = |seed| {
            let procs: Vec<BoxProcess> =
                vec![Box::new(Spray { count: 2 }), Box::new(Spray { count: 0 })];
            AsyncRunner::new(topo.clone(), procs, 50, seed).run(1000)
        };
        // Control: same seed (same delays), but the receiver stays live.
        let receiving = |seed| {
            let procs: Vec<BoxProcess> = vec![
                Box::new(Spray { count: 2 }),
                Box::new(Gossip {
                    sent: true,
                    received: 0,
                }),
            ];
            AsyncRunner::new(topo.clone(), procs, 50, seed).run(1000)
        };
        for seed in 0..20 {
            let h = halting(seed);
            let full = receiving(seed);
            assert_eq!(h.messages, 1, "B halts after the first token");
            assert_eq!(h.lost_to_crash, 1);
            assert_eq!(full.messages, 2);
            assert!(h.time <= full.time, "a lost message must not add time");
            if h.time < full.time {
                return; // found a seed with distinct delays: covered
            }
        }
        panic!("no seed separated first/second delivery times");
    }

    /// Regression (bug 2): an exhausted event budget must not pop-and-drop
    /// a message. Every send is conserved: delivered, dropped, lost at a
    /// dead node, or still in flight.
    #[test]
    fn event_budget_conserves_messages() {
        for budget in 0..12u64 {
            let mut r = AsyncRunner::new(Topology::complete(4), gossip_nodes(4), 5, 9);
            let stats = r.run(budget);
            assert!(
                stats.conserves_messages(),
                "budget {budget}: sent {} + dup {} != delivered {} + dropped {} + lost {} + undelivered {}",
                stats.sent_total(),
                stats.duplicated,
                stats.messages,
                stats.dropped,
                stats.lost_to_crash,
                stats.undelivered
            );
            assert_eq!(stats.messages, budget.min(12));
        }
    }

    /// Regression (bug 4): an algorithm driven only by round ticks — a
    /// lone heartbeat monitor with nobody to hear, the "total silence"
    /// case — must still reach its horizon under `require_halt`.
    #[test]
    fn sync_silence_does_not_starve_round_driven_nodes() {
        use crate::algorithms::heartbeat_nodes;
        let lone = || {
            let topo = Topology::from_lists("lone", vec![vec![]]);
            SyncRunner::new(topo, heartbeat_nodes(1, 2, 6))
        };
        // Default mode keeps the seed semantics: total silence quiesces.
        let stats = lone().run(50);
        assert_eq!(stats.outputs[0], None, "silence ends the default run");
        // require_halt drives the node through silent rounds to a verdict.
        let stats = lone().require_halt().run(50);
        assert_eq!(stats.outputs[0], Some(0), "no neighbors, no suspects");
        assert!(stats.time >= 6, "ran to the horizon");
    }

    #[test]
    fn duplication_is_injected_and_accounted() {
        let run = |rate: f64| {
            let mut r = AsyncRunner::new(Topology::complete(4), gossip_nodes(4), 5, 11);
            r.duplicate_messages(rate);
            r.run(100_000)
        };
        let clean = run(0.0);
        assert_eq!(clean.duplicated, 0);
        let dup = run(0.9);
        assert!(dup.duplicated > 0, "duplicates injected at rate 0.9");
        assert!(dup.messages > clean.messages, "duplicates are delivered");
        assert!(dup.conserves_messages());
        // Determinism under duplication.
        assert_eq!(run(0.9), run(0.9));
    }

    #[test]
    fn crash_recovery_restores_a_node() {
        struct Pinger;
        impl Process for Pinger {
            fn on_start(&mut self, ctx: &mut Ctx) {
                if ctx.node == 0 {
                    ctx.set_timer(10, 0);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: &Payload, ctx: &mut Ctx) {
                ctx.decide(7);
            }
            fn on_timer(&mut self, _tok: u64, ctx: &mut Ctx) {
                ctx.send(1, Payload::Token);
            }
            fn on_recover(&mut self, ctx: &mut Ctx) {
                ctx.decide(99);
            }
        }
        let topo = Topology::from_lists("pair", vec![vec![1], vec![0]]);
        let procs: Vec<BoxProcess> = vec![Box::new(Pinger), Box::new(Pinger)];
        let mut r = AsyncRunner::new(topo, procs, 3, 5);
        // Node 1 is down at t ∈ [1, 5); node 0 pings at t=10 — delivered.
        r.crash(1, 1);
        r.recover(1, 5);
        r.record_trace();
        let stats = r.run(10_000);
        assert_eq!(stats.outputs[1], Some(7), "recovered node processes mail");
        let trace = r.trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Crash { t: 1, node: 1 })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Recover { t: 5, node: 1 })));
    }

    #[test]
    #[should_panic(expected = "needs a crash")]
    fn recovery_requires_a_crash() {
        let mut r = AsyncRunner::new(Topology::complete(2), gossip_nodes(2), 1, 0);
        r.recover(0, 5);
    }

    #[test]
    fn trace_records_the_message_lifecycle_as_json() {
        let mut r = AsyncRunner::new(Topology::complete(3), gossip_nodes(3), 4, 2);
        r.drop_messages(0.3).duplicate_messages(0.3).record_trace();
        let stats = r.run(100_000);
        let trace = r.trace();
        let count = |f: fn(&TraceEvent) -> bool| trace.iter().filter(|e| f(e)).count() as u64;
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Send { .. })),
            stats.sent_total()
        );
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Drop { .. })),
            stats.dropped
        );
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Duplicate { .. })),
            stats.duplicated
        );
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Deliver { .. })),
            stats.messages
        );
        let json = r.trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""kind":"send""#));
        // Every deliver's seq has a matching send/duplicate seq.
        for ev in trace {
            if let TraceEvent::Deliver { seq, .. } = ev {
                assert!(trace.iter().any(|e| matches!(
                    e,
                    TraceEvent::Send { seq: s, .. } | TraceEvent::Duplicate { seq: s, .. } if s == seq
                )));
            }
        }
    }

    #[test]
    fn sync_timers_fire_after_their_delay() {
        struct TimerOnly {
            fired_at: Option<u64>,
        }
        impl Process for TimerOnly {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(3, 42);
            }
            fn on_message(&mut self, _f: NodeId, _m: &Payload, _c: &mut Ctx) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
                assert_eq!(token, 42);
                self.fired_at = Some(1);
                ctx.decide(token);
                ctx.halt();
            }
        }
        let topo = Topology::from_lists("lone", vec![vec![]]);
        let procs: Vec<BoxProcess> = vec![Box::new(TimerOnly { fired_at: None })];
        let mut r = SyncRunner::new(topo, procs);
        let stats = r.require_halt().run(50);
        assert_eq!(stats.outputs[0], Some(42));
        assert_eq!(stats.time, 3, "timer set at round 0 with delay 3");
        assert_eq!(stats.timer_events, 1);
    }
}
