//! Network topologies (taxonomy dimension 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Node identifier.
pub type NodeId = usize;

/// An undirected-or-directed network given by per-node neighbor lists
/// (directed: a neighbor is someone you can *send to*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
    name: String,
}

impl Topology {
    /// Build from explicit neighbor lists.
    pub fn from_lists(name: impl Into<String>, neighbors: Vec<Vec<NodeId>>) -> Self {
        Topology {
            neighbors,
            name: name.into(),
        }
    }

    /// A unidirectional ring: node `i` sends to `(i+1) % n`.
    pub fn ring_unidirectional(n: usize) -> Self {
        Topology::from_lists(
            format!("ring-uni({n})"),
            (0..n).map(|i| vec![(i + 1) % n]).collect(),
        )
    }

    /// A bidirectional ring: neighbors `[left, right]`.
    pub fn ring_bidirectional(n: usize) -> Self {
        assert!(n >= 2, "bidirectional ring needs at least 2 nodes");
        Topology::from_lists(
            format!("ring-bi({n})"),
            (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect(),
        )
    }

    /// The complete graph on `n` nodes.
    pub fn complete(n: usize) -> Self {
        Topology::from_lists(
            format!("complete({n})"),
            (0..n)
                .map(|i| (0..n).filter(|&j| j != i).collect())
                .collect(),
        )
    }

    /// A star: node 0 is the hub.
    pub fn star(n: usize) -> Self {
        assert!(n >= 1);
        let mut lists = vec![(1..n).collect::<Vec<_>>()];
        for _ in 1..n {
            lists.push(vec![0]);
        }
        Topology::from_lists(format!("star({n})"), lists)
    }

    /// A `w × h` grid with 4-neighborhoods.
    pub fn grid(w: usize, h: usize) -> Self {
        let idx = |x: usize, y: usize| y * w + x;
        let mut lists = vec![Vec::new(); w * h];
        for y in 0..h {
            for x in 0..w {
                let mut ns = Vec::new();
                if x > 0 {
                    ns.push(idx(x - 1, y));
                }
                if x + 1 < w {
                    ns.push(idx(x + 1, y));
                }
                if y > 0 {
                    ns.push(idx(x, y - 1));
                }
                if y + 1 < h {
                    ns.push(idx(x, y + 1));
                }
                lists[idx(x, y)] = ns;
            }
        }
        Topology::from_lists(format!("grid({w}x{h})"), lists)
    }

    /// A random connected undirected graph: a random spanning tree plus
    /// `extra_edges` random chords. Deterministic per seed.
    pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let add = |lists: &mut Vec<Vec<NodeId>>, a: usize, b: usize| {
            if a != b && !lists[a].contains(&b) {
                lists[a].push(b);
                lists[b].push(a);
                true
            } else {
                false
            }
        };
        // Random spanning tree: attach each node to a random earlier one.
        for v in 1..n {
            let u = rng.gen_range(0..v);
            add(&mut lists, u, v);
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_edges && attempts < extra_edges * 20 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if add(&mut lists, a, b) {
                added += 1;
            }
            attempts += 1;
        }
        Topology::from_lists(format!("random({n},+{added},seed={seed})"), lists)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[v]
    }

    /// Total directed edge count (undirected edges count twice).
    pub fn directed_edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Graph diameter by all-pairs BFS (small networks only). `None` if
    /// disconnected.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.len();
        let mut diam = 0;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[s] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &v in &self.neighbors[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            let far = *dist.iter().max()?;
            if far == usize::MAX {
                return None;
            }
            diam = diam.max(far);
        }
        Some(diam)
    }

    /// Descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_have_right_degrees() {
        let uni = Topology::ring_unidirectional(5);
        assert!(uni.neighbors(4) == [0]);
        assert_eq!(uni.directed_edge_count(), 5);
        let bi = Topology::ring_bidirectional(5);
        assert_eq!(bi.neighbors(0), &[4, 1]);
        assert_eq!(bi.directed_edge_count(), 10);
    }

    #[test]
    fn complete_graph_degrees_and_diameter() {
        let k = Topology::complete(6);
        assert_eq!(k.neighbors(3).len(), 5);
        assert_eq!(k.diameter(), Some(1));
        assert_eq!(k.directed_edge_count(), 30);
    }

    #[test]
    fn star_and_grid_shapes() {
        let s = Topology::star(5);
        assert_eq!(s.neighbors(0).len(), 4);
        assert_eq!(s.neighbors(3), &[0]);
        assert_eq!(s.diameter(), Some(2));

        let g = Topology::grid(3, 2);
        assert_eq!(g.len(), 6);
        assert_eq!(g.neighbors(0).len(), 2); // corner
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn random_graphs_are_connected_and_deterministic() {
        for seed in 0..5 {
            let t = Topology::random_connected(30, 15, seed);
            assert!(t.diameter().is_some(), "seed {seed} disconnected");
        }
        assert_eq!(
            Topology::random_connected(20, 10, 3),
            Topology::random_connected(20, 10, 3)
        );
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(Topology::ring_bidirectional(8).diameter(), Some(4));
        assert_eq!(Topology::ring_unidirectional(8).diameter(), Some(7));
    }
}
