//! Sim-to-real execution: run unmodified [`Process`] implementations over
//! real TCP connections.
//!
//! The paper's thesis is that generically-programmed components compose
//! without modification across contexts. The catalog algorithms were
//! written against the [`Process`] concept and executed by the in-memory
//! simulators; this module supplies two *runtimes* that execute the very
//! same boxed processes over OS sockets, framed with the service's
//! length-prefixed codec ([`gp_core::frame`]):
//!
//! * [`NetRunner`] — a **lockstep** socket runner that cross-validates
//!   against [`AsyncRunner`]: payload bytes travel peer-to-peer over per-edge
//!   TCP connections between host threads, while a coordinator replays the
//!   *identical* seeded schedule the simulator would produce — same RNG
//!   draw order, same event-queue ordering, same crash/recovery schedule.
//!   A run on (seed, topology) X yields the same [`RunStats`] and the same
//!   structured [`TraceEvent`] sequence as `AsyncRunner` on X, event for
//!   event. The coordinator never sees payload bytes: it schedules
//!   *per-link frame indices* (TCP guarantees per-connection FIFO, so index
//!   `i` on link `u→v` always denotes the same frame), and delivery grants
//!   tell the receiving host which arrived frame to consume. Injected
//!   drops are frames that are physically sent but never granted;
//!   injected duplicates are grants that re-read the same frame.
//!
//! * [`LiveMesh`] — a **free-running** runtime for the service's control
//!   plane: one OS thread per node over a complete TCP mesh, real
//!   wall-clock ticks driving [`Process::on_round`] and timers, and
//!   [`LiveMesh::kill`] for real crash-stop (the node's connections close;
//!   peers find out the way real systems do — silence). No simulator
//!   cross-validation is possible here by construction; this is where the
//!   validated algorithms get *used*.
//!
//! Messages cross the wire as a whitespace-token text rendering of
//! [`Payload`] ([`encode_payload`] / [`decode_payload`]) inside one frame.

use crate::engine::{
    dist_metrics, trace_json, BoxProcess, Ctx, NetState, Payload, Process, RunStats, StepOutOf,
    TraceEvent, EV_CRASH, EV_MSG, EV_RECOVER, EV_TIMER,
};
use crate::topology::{NodeId, Topology};
use gp_core::frame::{read_frame, write_frame};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Payload wire codec
// ---------------------------------------------------------------------------

/// Render a [`Payload`] as whitespace-separated tokens (recursive for the
/// reliable-channel envelope). The inverse of [`decode_payload`].
pub fn encode_payload(pl: &Payload) -> String {
    match pl {
        Payload::Uid(u) => format!("uid {u}"),
        Payload::HsToken {
            uid,
            hops,
            outbound,
        } => format!("hs {uid} {hops} {}", u8::from(*outbound)),
        Payload::Max(u) => format!("max {u}"),
        Payload::Token => "tok".to_string(),
        Payload::Level(l) => format!("lvl {l}"),
        Payload::Rel { seq, inner } => format!("rel {seq} {}", encode_payload(inner)),
        Payload::RelAck { seq } => format!("ack {seq}"),
        Payload::Assign { epoch, dead } => format!("asg {epoch} {dead}"),
    }
}

/// Parse the rendering produced by [`encode_payload`].
pub fn decode_payload(s: &str) -> Result<Payload, String> {
    let mut toks = s.split_ascii_whitespace();
    let pl = decode_tokens(&mut toks)?;
    match toks.next() {
        None => Ok(pl),
        Some(extra) => Err(format!("trailing token {extra:?} in payload {s:?}")),
    }
}

fn decode_tokens<'a>(toks: &mut impl Iterator<Item = &'a str>) -> Result<Payload, String> {
    fn num<'a, T: std::str::FromStr>(
        toks: &mut impl Iterator<Item = &'a str>,
        what: &str,
    ) -> Result<T, String> {
        let t = toks.next().ok_or_else(|| format!("missing {what}"))?;
        t.parse().map_err(|_| format!("bad {what}: {t:?}"))
    }
    match toks.next() {
        Some("uid") => Ok(Payload::Uid(num(toks, "uid")?)),
        Some("hs") => Ok(Payload::HsToken {
            uid: num(toks, "hs uid")?,
            hops: num(toks, "hs hops")?,
            outbound: num::<u8>(toks, "hs outbound")? != 0,
        }),
        Some("max") => Ok(Payload::Max(num(toks, "max")?)),
        Some("tok") => Ok(Payload::Token),
        Some("lvl") => Ok(Payload::Level(num(toks, "lvl")?)),
        Some("rel") => Ok(Payload::Rel {
            seq: num(toks, "rel seq")?,
            inner: Box::new(decode_tokens(toks)?),
        }),
        Some("ack") => Ok(Payload::RelAck {
            seq: num(toks, "ack seq")?,
        }),
        Some("asg") => Ok(Payload::Assign {
            epoch: num(toks, "asg epoch")?,
            dead: num(toks, "asg dead")?,
        }),
        Some(tag) => Err(format!("unknown payload tag {tag:?}")),
        None => Err("empty payload".to_string()),
    }
}

// ---------------------------------------------------------------------------
// NetRunner: lockstep socket execution, cross-validated against AsyncRunner
// ---------------------------------------------------------------------------

/// Frames arrived on one incoming link, append-only so an injected
/// duplicate can re-read the frame at the same index.
type Arrived = Arc<(Mutex<Vec<String>>, Condvar)>;

/// Executes unmodified processes over per-edge TCP connections between
/// host threads, under the exact seeded schedule of [`AsyncRunner`] — see
/// the module docs for the lockstep protocol. Builder API mirrors
/// `AsyncRunner`; [`NetRunner::run`] consumes the processes and may be
/// called once.
///
/// [`AsyncRunner`]: crate::engine::AsyncRunner
pub struct NetRunner {
    topo: Topology,
    procs: Option<Vec<BoxProcess>>,
    crash_at: HashMap<NodeId, u64>,
    recover_at: HashMap<NodeId, u64>,
    max_delay: u64,
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
    tracing: bool,
    trace: Vec<TraceEvent>,
}

impl NetRunner {
    /// Build a runner. `max_delay` ≥ 1.
    pub fn new(topo: Topology, procs: Vec<BoxProcess>, max_delay: u64, seed: u64) -> Self {
        assert_eq!(topo.len(), procs.len(), "one process per node");
        assert!(max_delay >= 1);
        NetRunner {
            topo,
            procs: Some(procs),
            crash_at: HashMap::new(),
            recover_at: HashMap::new(),
            max_delay,
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// Schedule a crash at virtual time `t`.
    pub fn crash(&mut self, node: NodeId, t: u64) -> &mut Self {
        self.crash_at.insert(node, t);
        self
    }

    /// Schedule a recovery after a crash (same contract as
    /// [`AsyncRunner::recover`](crate::engine::AsyncRunner::recover)).
    pub fn recover(&mut self, node: NodeId, t: u64) -> &mut Self {
        let ct = *self
            .crash_at
            .get(&node)
            .expect("recover(node, t) needs a crash scheduled for the node first");
        assert!(t > ct, "recovery must come after the crash (crash at {ct})");
        self.recover_at.insert(node, t);
        self
    }

    /// Inject omission failures: the frame is physically sent but its
    /// delivery is never granted.
    pub fn drop_messages(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.drop_rate = rate;
        self
    }

    /// Inject duplication failures: an extra delivery grant that re-reads
    /// the same arrived frame.
    pub fn duplicate_messages(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.dup_rate = rate;
        self
    }

    /// Record a structured event trace during [`run`](NetRunner::run).
    pub fn record_trace(&mut self) -> &mut Self {
        self.tracing = true;
        self
    }

    /// The structured event trace of the run.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The trace rendered as a JSON array.
    pub fn trace_json(&self) -> String {
        trace_json(&self.trace)
    }

    /// Run to quiescence or `max_events` processed deliveries/timer
    /// firings, exactly as [`AsyncRunner::run`] — same budget semantics,
    /// same stats, same trace. Panics if called twice (the host threads
    /// consume the processes).
    ///
    /// [`AsyncRunner::run`]: crate::engine::AsyncRunner::run
    pub fn run(&mut self, max_events: u64) -> RunStats {
        let _span = gp_telemetry::span("net_run");
        let procs = self
            .procs
            .take()
            .expect("NetRunner::run consumes the processes; build a new runner to rerun");
        let n = self.topo.len();
        let mut stats = RunStats {
            outputs: vec![None; n],
            per_node_sent: vec![0; n],
            ..RunStats::default()
        };
        if n == 0 {
            dist_metrics().absorb_run(&stats);
            return stats;
        }

        // --- wire up the mesh -------------------------------------------------
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind host listener"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("listener addr"))
            .collect();
        let incoming: Vec<Vec<NodeId>> = {
            let mut inc = vec![Vec::new(); n];
            for u in 0..n {
                for &v in self.topo.neighbors(u) {
                    inc[v].push(u);
                }
            }
            inc
        };

        let mut hosts = Vec::with_capacity(n);
        for (v, (listener, proc_)) in listeners.into_iter().zip(procs).enumerate() {
            let out_neighbors: Vec<NodeId> = self.topo.neighbors(v).to_vec();
            let out_addrs: Vec<SocketAddr> = out_neighbors.iter().map(|&u| addrs[u]).collect();
            let in_count = incoming[v].len();
            hosts.push(
                std::thread::Builder::new()
                    .name(format!("net-host-{v}"))
                    .spawn(move || {
                        host_main(v, proc_, out_neighbors, out_addrs, listener, in_count)
                    })
                    .expect("spawn host thread"),
            );
        }

        // The coordinator's control connection to each host.
        let mut ctrl: Vec<TcpStream> = addrs
            .iter()
            .map(|&a| {
                let mut s = TcpStream::connect(a).expect("connect ctrl");
                s.set_nodelay(true).ok();
                write_frame(&mut s, "ctrl").expect("ctrl hello");
                s
            })
            .collect();

        // --- the lockstep schedule: AsyncRunner::run over link indices -------
        // `M = u64`: the per-link FIFO index of the frame a send produced.
        let mut net: NetState<u64> = NetState::new(
            self.max_delay,
            self.seed,
            self.drop_rate,
            self.dup_rate,
            self.tracing,
        );
        let mut link_count: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        let mut crashed = vec![false; n];
        let mut halted = vec![false; n];
        let mut outputs: Vec<Option<u64>> = vec![None; n];

        // One lockstep exchange: tell host `v` to run a step, absorb its
        // report (sends become link-indexed queue entries, timers queue).
        #[allow(clippy::too_many_arguments)]
        fn exchange(
            v: NodeId,
            cmd: &str,
            now: u64,
            ctrl: &mut [TcpStream],
            net: &mut NetState<u64>,
            link_count: &mut HashMap<(NodeId, NodeId), u64>,
            halted: &mut [bool],
            outputs: &mut [Option<u64>],
            stats: &mut RunStats,
        ) {
            write_frame(&mut ctrl[v], cmd).expect("ctrl send");
            let report = read_frame(&mut ctrl[v])
                .expect("ctrl recv")
                .expect("host closed mid-run");
            let mut out: StepOutOf<u64> = StepOutOf::default();
            let mut lines = report.lines();
            let head = lines.next().expect("report head");
            let mut h = head.split_ascii_whitespace();
            assert_eq!(h.next(), Some("report"), "bad report: {head}");
            halted[v] = h.next() == Some("1");
            outputs[v] = match h.next().expect("output field") {
                "-" => None,
                o => Some(o.parse().expect("output")),
            };
            stats.local_steps += h.next().expect("steps").parse::<u64>().expect("steps");
            stats.app_messages += h.next().expect("app").parse::<u64>().expect("app");
            for line in lines {
                let mut f = line.split_ascii_whitespace();
                match f.next() {
                    Some("s") => {
                        let to: NodeId = f.next().expect("to").parse().expect("to");
                        let retx = f.next() == Some("1");
                        let idx = link_count.entry((v, to)).or_insert(0);
                        out.sends.push((to, *idx, retx));
                        *idx += 1;
                    }
                    Some("t") => {
                        let delay: u64 = f.next().expect("delay").parse().expect("delay");
                        let token: u64 = f.next().expect("token").parse().expect("token");
                        out.timers.push((delay, token));
                    }
                    other => panic!("bad report line {other:?}"),
                }
            }
            net.absorb(now, v, out, stats);
        }

        // Control events first, in node order — identical to the simulator.
        for v in 0..n {
            if let Some(&ct) = self.crash_at.get(&v) {
                let seq = net.seq;
                net.seq += 1;
                net.queue.push(Reverse((ct, seq, EV_CRASH, v, v, 0)));
            }
            if let Some(&rt) = self.recover_at.get(&v) {
                let seq = net.seq;
                net.seq += 1;
                net.queue.push(Reverse((rt, seq, EV_RECOVER, v, v, 0)));
            }
        }

        for (v, dead) in crashed.iter_mut().enumerate() {
            if self.crash_at.get(&v) == Some(&0) {
                *dead = true;
            }
            if *dead {
                continue; // the simulator's run_step no-ops here too
            }
            exchange(
                v,
                "start",
                0,
                &mut ctrl,
                &mut net,
                &mut link_count,
                &mut halted,
                &mut outputs,
                &mut stats,
            );
        }

        let mut processed = 0u64;
        loop {
            if processed >= max_events {
                break;
            }
            let Some(Reverse((t, _s, kind, a, b, key))) = net.queue.pop() else {
                break;
            };
            match kind {
                EV_CRASH => {
                    crashed[a] = true;
                    dist_metrics().crashes.incr();
                    net.trace(TraceEvent::Crash { t, node: a });
                }
                EV_RECOVER => {
                    crashed[a] = false;
                    dist_metrics().recoveries.incr();
                    net.trace(TraceEvent::Recover { t, node: a });
                    if !halted[a] {
                        exchange(
                            a,
                            "recover",
                            t,
                            &mut ctrl,
                            &mut net,
                            &mut link_count,
                            &mut halted,
                            &mut outputs,
                            &mut stats,
                        );
                    }
                }
                EV_MSG => {
                    let idx = net.payloads.remove(&key).expect("link index stored");
                    if crashed[b] || halted[b] {
                        stats.lost_to_crash += 1;
                        net.trace(TraceEvent::Lost {
                            t,
                            seq: key,
                            from: a,
                            to: b,
                        });
                        continue;
                    }
                    stats.messages += 1;
                    stats.time = stats.time.max(t);
                    processed += 1;
                    net.trace(TraceEvent::Deliver {
                        t,
                        seq: key,
                        from: a,
                        to: b,
                    });
                    exchange(
                        b,
                        &format!("deliver {a} {idx}"),
                        t,
                        &mut ctrl,
                        &mut net,
                        &mut link_count,
                        &mut halted,
                        &mut outputs,
                        &mut stats,
                    );
                }
                EV_TIMER => {
                    if crashed[a] || halted[a] {
                        continue;
                    }
                    stats.timer_events += 1;
                    stats.time = stats.time.max(t);
                    processed += 1;
                    net.trace(TraceEvent::Timer {
                        t,
                        node: a,
                        token: key,
                    });
                    exchange(
                        a,
                        &format!("timer {key}"),
                        t,
                        &mut ctrl,
                        &mut net,
                        &mut link_count,
                        &mut halted,
                        &mut outputs,
                        &mut stats,
                    );
                }
                _ => unreachable!("unknown event kind"),
            }
        }

        stats.undelivered = net
            .queue
            .iter()
            .filter(|Reverse((_, _, kind, ..))| *kind == EV_MSG)
            .count() as u64;

        // Tear down: every host gets `stop` before any is joined, so hosts
        // blocked on peers' reader EOFs all release together.
        for s in ctrl.iter_mut() {
            write_frame(s, "stop").expect("ctrl stop");
        }
        for h in hosts {
            h.join().expect("host thread");
        }

        self.trace = net.trace;
        stats.outputs = outputs;
        dist_metrics().absorb_run(&stats);
        stats
    }
}

/// The per-node host: owns the process, accepts its incoming links,
/// connects its outgoing links, and executes exactly the steps the
/// coordinator grants. Payload frames flow peer-to-peer; only step
/// commands and step reports touch the coordinator.
fn host_main(
    v: NodeId,
    mut proc_: BoxProcess,
    out_neighbors: Vec<NodeId>,
    out_addrs: Vec<SocketAddr>,
    listener: TcpListener,
    in_count: usize,
) {
    // Connect outbound first: connects complete against the peer's listen
    // backlog, so no accept ordering can deadlock the mesh bring-up.
    let mut outgoing: HashMap<NodeId, TcpStream> = HashMap::new();
    for (&u, &addr) in out_neighbors.iter().zip(&out_addrs) {
        let mut s = TcpStream::connect(addr).expect("connect data link");
        s.set_nodelay(true).ok();
        write_frame(&mut s, &format!("data {v}")).expect("data hello");
        outgoing.insert(u, s);
    }

    // Accept incoming links (+1 for the coordinator's control connection),
    // identified by their hello frame. Each data link gets a reader thread
    // appending arrived frames to an append-only per-source log.
    let mut arrived: HashMap<NodeId, Arrived> = HashMap::new();
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut ctrl: Option<TcpStream> = None;
    for _ in 0..in_count + 1 {
        let (mut s, _) = listener.accept().expect("accept link");
        s.set_nodelay(true).ok();
        let hello = read_frame(&mut s).expect("hello").expect("hello eof");
        if hello == "ctrl" {
            ctrl = Some(s);
            continue;
        }
        let from: NodeId = hello
            .strip_prefix("data ")
            .and_then(|u| u.parse().ok())
            .unwrap_or_else(|| panic!("bad hello {hello:?}"));
        let log: Arrived = Arc::new((Mutex::new(Vec::new()), Condvar::new()));
        arrived.insert(from, Arc::clone(&log));
        readers.push(
            std::thread::Builder::new()
                .name(format!("net-read-{from}-{v}"))
                .spawn(move || {
                    let mut s = s;
                    while let Ok(Some(frame)) = read_frame(&mut s) {
                        let (lock, cv) = &*log;
                        lock.lock().expect("arrived log").push(frame);
                        cv.notify_all();
                    }
                })
                .expect("spawn reader"),
        );
    }
    let mut ctrl = ctrl.expect("coordinator never connected");

    let mut output: Option<u64> = None;
    let mut halted = false;

    // Run one granted step: sends go straight onto the outgoing streams
    // (in send order — the per-link FIFO the coordinator indexes), then
    // the step report goes back on the control connection.
    let step = |ctrl: &mut TcpStream,
                proc_: &mut BoxProcess,
                output: &mut Option<u64>,
                halted: &mut bool,
                outgoing: &mut HashMap<NodeId, TcpStream>,
                f: &mut dyn FnMut(&mut dyn Process, &mut Ctx)| {
        let mut sends: Vec<(NodeId, Payload, bool)> = Vec::new();
        let mut timers: Vec<(u64, u64)> = Vec::new();
        let mut scratch = RunStats::default();
        {
            let mut cx = Ctx::new(
                v,
                &out_neighbors,
                &mut sends,
                &mut timers,
                &mut scratch,
                output,
                halted,
            );
            f(proc_.as_mut(), &mut cx);
        }
        use std::fmt::Write as _;
        let mut report = format!(
            "report {} {} {} {}",
            u8::from(*halted),
            output.map_or("-".to_string(), |o| o.to_string()),
            scratch.local_steps,
            scratch.app_messages,
        );
        for (to, pl, retx) in sends {
            let s = outgoing.get_mut(&to).expect("send to non-neighbor");
            write_frame(s, &encode_payload(&pl)).expect("send frame");
            let _ = write!(report, "\ns {to} {}", u8::from(retx));
        }
        for (delay, token) in timers {
            let _ = write!(report, "\nt {delay} {token}");
        }
        write_frame(ctrl, &report).expect("report");
    };

    loop {
        let cmd = read_frame(&mut ctrl).expect("ctrl read").expect("ctrl eof");
        let mut toks = cmd.split_ascii_whitespace();
        match toks.next() {
            Some("start") => step(
                &mut ctrl,
                &mut proc_,
                &mut output,
                &mut halted,
                &mut outgoing,
                &mut |p, cx| p.on_start(cx),
            ),
            Some("deliver") => {
                let from: NodeId = toks.next().expect("from").parse().expect("from");
                let idx: usize = toks.next().expect("idx").parse().expect("idx");
                // The sender wrote frame `idx` before reporting the send,
                // and the grant comes after that report — so the frame is
                // in flight at worst; wait for the reader to log it.
                let text = {
                    let (lock, cv) = &**arrived.get(&from).expect("no link from sender");
                    let mut log = lock.lock().expect("arrived log");
                    while log.len() <= idx {
                        log = cv.wait(log).expect("arrived log");
                    }
                    log[idx].clone()
                };
                let pl = decode_payload(&text).expect("payload decode");
                step(
                    &mut ctrl,
                    &mut proc_,
                    &mut output,
                    &mut halted,
                    &mut outgoing,
                    &mut |p, cx| p.on_message(from, &pl, cx),
                );
            }
            Some("timer") => {
                let token: u64 = toks.next().expect("token").parse().expect("token");
                step(
                    &mut ctrl,
                    &mut proc_,
                    &mut output,
                    &mut halted,
                    &mut outgoing,
                    &mut |p, cx| p.on_timer(token, cx),
                );
            }
            Some("recover") => step(
                &mut ctrl,
                &mut proc_,
                &mut output,
                &mut halted,
                &mut outgoing,
                &mut |p, cx| p.on_recover(cx),
            ),
            Some("stop") => break,
            other => panic!("unknown ctrl command {other:?}"),
        }
    }

    // Closing our outgoing streams EOFs the peers' readers; every host got
    // `stop` before any join, so this releases the whole mesh.
    drop(outgoing);
    for r in readers {
        r.join().expect("reader thread");
    }
}

// ---------------------------------------------------------------------------
// LiveMesh: free-running wall-clock runtime (the control plane's substrate)
// ---------------------------------------------------------------------------

/// One OS thread per node over a complete TCP mesh, with real time:
/// every `tick`, the node's round counter advances, due timers fire
/// (timer delays are in ticks), and [`Process::on_round`] runs. Messages
/// are sent the moment a handler produces them. [`LiveMesh::kill`]
/// crash-stops a node for real — its thread exits and its connections
/// close, and the only way peers learn is by noticing the silence
/// (which is precisely what the heartbeat detector exists to do).
pub struct LiveMesh {
    handles: Vec<JoinHandle<()>>,
    kill: Vec<Arc<AtomicBool>>,
}

impl LiveMesh {
    /// Start `procs.len()` nodes over a complete mesh. Fails if the mesh
    /// cannot be wired (ports, connects).
    pub fn start(procs: Vec<BoxProcess>, tick: Duration) -> io::Result<LiveMesh> {
        let n = procs.len();
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<io::Result<_>>()?;
        let kill: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();

        let mut handles = Vec::with_capacity(n);
        for (v, (listener, proc_)) in listeners.into_iter().zip(procs).enumerate() {
            let addrs = addrs.clone();
            let flag = Arc::clone(&kill[v]);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mesh-node-{v}"))
                    .spawn(move || mesh_node_main(v, proc_, addrs, listener, tick, flag))
                    .expect("spawn mesh node"),
            );
        }
        Ok(LiveMesh { handles, kill })
    }

    /// Number of nodes (including killed ones).
    pub fn len(&self) -> usize {
        self.kill.len()
    }

    /// True when the mesh has no nodes.
    pub fn is_empty(&self) -> bool {
        self.kill.is_empty()
    }

    /// Crash-stop a node: its thread exits at the next scheduling point
    /// and its connections close. There is no recovery.
    pub fn kill(&self, node: NodeId) {
        self.kill[node].store(true, Ordering::SeqCst);
    }

    /// Stop every node and join the threads.
    pub fn shutdown(self) {
        for f in &self.kill {
            f.store(true, Ordering::SeqCst);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn mesh_node_main(
    v: NodeId,
    mut proc_: BoxProcess,
    addrs: Vec<SocketAddr>,
    listener: TcpListener,
    tick: Duration,
    kill: Arc<AtomicBool>,
) {
    let n = addrs.len();
    let neighbors: Vec<NodeId> = (0..n).filter(|&u| u != v).collect();

    let mut outgoing: HashMap<NodeId, TcpStream> = HashMap::new();
    for &u in &neighbors {
        let Ok(mut s) = TcpStream::connect(addrs[u]) else {
            return; // peer already dead at bring-up: run without the link
        };
        s.set_nodelay(true).ok();
        if write_frame(&mut s, &format!("data {v}")).is_err() {
            return;
        }
        outgoing.insert(u, s);
    }

    let (tx, rx) = mpsc::channel::<(NodeId, Payload)>();
    for _ in 0..neighbors.len() {
        let Ok((mut s, _)) = listener.accept() else {
            return;
        };
        s.set_nodelay(true).ok();
        let Ok(Some(hello)) = read_frame(&mut s) else {
            return;
        };
        let from: NodeId = hello
            .strip_prefix("data ")
            .and_then(|u| u.parse().ok())
            .unwrap_or_else(|| panic!("bad hello {hello:?}"));
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("mesh-read-{from}-{v}"))
            .spawn(move || {
                while let Ok(Some(frame)) = read_frame(&mut s) {
                    let Ok(pl) = decode_payload(&frame) else {
                        return;
                    };
                    if tx.send((from, pl)).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn mesh reader");
    }
    drop(tx);

    let mut output: Option<u64> = None;
    let mut halted = false;
    let mut round: u64 = 0;
    // (fire_round, token), insertion-ordered like the synchronous runner.
    let mut pending_timers: Vec<(u64, u64)> = Vec::new();
    let start = Instant::now();

    macro_rules! step {
        ($f:expr) => {{
            let mut sends: Vec<(NodeId, Payload, bool)> = Vec::new();
            let mut timers: Vec<(u64, u64)> = Vec::new();
            let mut scratch = RunStats::default();
            {
                let mut cx = Ctx::new(
                    v,
                    &neighbors,
                    &mut sends,
                    &mut timers,
                    &mut scratch,
                    &mut output,
                    &mut halted,
                );
                #[allow(clippy::redundant_closure_call)]
                ($f)(proc_.as_mut(), &mut cx);
            }
            for (to, pl, _) in sends {
                if let Some(s) = outgoing.get_mut(&to) {
                    // A dead peer surfaces as a write error: the message is
                    // simply lost, exactly like a real partial failure.
                    if write_frame(s, &encode_payload(&pl)).is_err() {
                        outgoing.remove(&to);
                    }
                }
            }
            for (delay, token) in timers {
                pending_timers.push((round + delay, token));
            }
        }};
    }

    step!(|p: &mut dyn Process, cx: &mut Ctx| p.on_start(cx));

    while !kill.load(Ordering::SeqCst) && !halted {
        let next_tick = start + tick * (round as u32 + 1);
        let wait = next_tick.saturating_duration_since(Instant::now());
        let msg = match rx.recv_timeout(wait) {
            Ok(m) => Some(m),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every peer is gone; keep ticking on schedule so the
                // process can still reach its own verdicts.
                std::thread::sleep(wait);
                None
            }
        };
        match msg {
            Some((from, pl)) => {
                step!(|p: &mut dyn Process, cx: &mut Ctx| p.on_message(from, &pl, cx))
            }
            None => {
                round += 1;
                let due: Vec<u64> = {
                    let mut due = Vec::new();
                    pending_timers.retain(|&(fire, token)| {
                        if fire <= round {
                            due.push(token);
                            false
                        } else {
                            true
                        }
                    });
                    due
                };
                for token in due {
                    if halted {
                        break;
                    }
                    step!(|p: &mut dyn Process, cx: &mut Ctx| p.on_timer(token, cx));
                }
                if !halted {
                    step!(|p: &mut dyn Process, cx: &mut Ctx| p.on_round(round, cx));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{consensus, echo_nodes, expected_leader, reliable_echo_nodes};
    use crate::engine::AsyncRunner;

    fn payload_cases() -> Vec<Payload> {
        vec![
            Payload::Uid(7),
            Payload::HsToken {
                uid: 9,
                hops: 3,
                outbound: true,
            },
            Payload::Max(u64::MAX),
            Payload::Token,
            Payload::Level(4),
            Payload::Rel {
                seq: 12,
                inner: Box::new(Payload::Rel {
                    seq: 1,
                    inner: Box::new(Payload::Token),
                }),
            },
            Payload::RelAck { seq: 5 },
            Payload::Assign { epoch: 3, dead: 6 },
        ]
    }

    #[test]
    fn payload_codec_round_trips_every_variant() {
        for pl in payload_cases() {
            let text = encode_payload(&pl);
            assert_eq!(decode_payload(&text), Ok(pl.clone()), "{text}");
        }
        assert!(decode_payload("").is_err());
        assert!(decode_payload("uid").is_err());
        assert!(decode_payload("uid 1 extra").is_err());
        assert!(decode_payload("wat 3").is_err());
    }

    #[test]
    fn socket_echo_matches_the_simulator_exactly() {
        let topo = Topology::grid(2, 2);
        let mut sim = AsyncRunner::new(topo.clone(), echo_nodes(4, 0), 4, 11);
        sim.record_trace();
        let sim_stats = sim.run(10_000);

        let mut net = NetRunner::new(topo, echo_nodes(4, 0), 4, 11);
        net.record_trace();
        let net_stats = net.run(10_000);

        assert_eq!(sim_stats, net_stats);
        assert_eq!(sim.trace(), net.trace());
        assert_eq!(sim_stats.outputs[0], Some(1));
    }

    #[test]
    fn socket_run_survives_drops_dups_and_crash_recovery() {
        let topo = Topology::ring_bidirectional(4);
        let configure = |r: &mut AsyncRunner| {
            r.drop_messages(0.2)
                .duplicate_messages(0.2)
                .crash(2, 3)
                .recover(2, 9)
                .record_trace();
        };
        let mut sim = AsyncRunner::new(topo.clone(), reliable_echo_nodes(4, 0, 8, 6), 3, 23);
        configure(&mut sim);
        let sim_stats = sim.run(50_000);

        let mut net = NetRunner::new(topo, reliable_echo_nodes(4, 0, 8, 6), 3, 23);
        net.drop_messages(0.2)
            .duplicate_messages(0.2)
            .crash(2, 3)
            .recover(2, 9)
            .record_trace();
        let net_stats = net.run(50_000);

        assert_eq!(sim_stats, net_stats);
        assert_eq!(sim.trace(), net.trace());
        assert!(net_stats.conserves_messages());
    }

    #[test]
    fn live_mesh_elects_a_leader_in_wall_clock_time() {
        let uids = [3, 9, 5];
        let max = expected_leader(&uids).unwrap();
        let seen: Vec<Arc<Mutex<Option<u64>>>> =
            (0..3).map(|_| Arc::new(Mutex::new(None))).collect();

        /// FT-FloodMax plus a side channel reporting the settled leader.
        struct Reporting {
            inner: crate::algorithms::FtFloodMax,
            slot: Arc<Mutex<Option<u64>>>,
        }
        impl Process for Reporting {
            fn on_start(&mut self, cx: &mut Ctx) {
                self.inner.on_start(cx);
            }
            fn on_message(&mut self, from: NodeId, msg: &Payload, cx: &mut Ctx) {
                self.inner.on_message(from, msg, cx);
                *self.slot.lock().unwrap() = Some(self.inner.best());
            }
            fn on_timer(&mut self, token: u64, cx: &mut Ctx) {
                self.inner.on_timer(token, cx);
                *self.slot.lock().unwrap() = Some(self.inner.best());
            }
        }

        let procs: Vec<BoxProcess> = uids
            .iter()
            .zip(&seen)
            .map(|(&uid, slot)| {
                Box::new(Reporting {
                    inner: crate::algorithms::FtFloodMax::new(uid, 2, 4),
                    slot: Arc::clone(slot),
                }) as BoxProcess
            })
            .collect();

        let mesh = LiveMesh::start(procs, Duration::from_millis(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let settled = seen.iter().all(|s| *s.lock().unwrap() == Some(max));
            if settled {
                break;
            }
            assert!(Instant::now() < deadline, "election did not settle");
            std::thread::sleep(Duration::from_millis(5));
        }
        mesh.shutdown();
    }

    #[test]
    fn consensus_helper_agrees_between_runtimes() {
        // Sanity: the same catalog construction runs under both runtimes.
        let topo = Topology::star(5);
        let sim = AsyncRunner::new(topo.clone(), echo_nodes(5, 0), 2, 5).run(10_000);
        let net = NetRunner::new(topo, echo_nodes(5, 0), 2, 5).run(10_000);
        assert_eq!(consensus(&sim), consensus(&net));
    }
}
