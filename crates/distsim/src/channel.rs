//! Reliable delivery as a *generic channel concept*: sequence-numbered
//! sends, acknowledgments, and timeout-driven retransmission with
//! exponential backoff, packaged as a [`Reliable`] process wrapper.
//!
//! The paper's §4 taxonomy treats fault tolerance as an orthogonal
//! dimension of distributed-algorithm concepts. This module makes that
//! orthogonality *constructive*: any existing [`Process`] composes with
//! the reliable channel unmodified — `Reliable::new(Lcr::new(uid), ...)`
//! turns a loss-intolerant algorithm into one that terminates under
//! omission failures, at a retransmission-inflated message cost the
//! taxonomy records honestly.
//!
//! Mechanics: every application send is framed as [`Payload::Rel`] with a
//! per-(sender, receiver) sequence number, and a retransmission timer is
//! armed. The receiver always acknowledges ([`Payload::RelAck`]) and
//! deduplicates by sequence number, so the wrapped process observes each
//! application message exactly once, in spite of drops, duplicates, and
//! retransmissions. Unacknowledged frames are resent with exponential
//! backoff until `max_attempts`, which bounds the message overhead (and
//! guarantees eventual quiescence) at the cost of a residual failure
//! probability of `drop_rate^max_attempts` per message.
//!
//! Requirement: links must be bidirectional (acknowledgments travel the
//! reverse direction), so e.g. LCR composes with [`Reliable`] over
//! [`Topology::ring_bidirectional`] rather than the unidirectional ring.
//!
//! [`Topology::ring_bidirectional`]: crate::topology::Topology::ring_bidirectional

use crate::engine::{Ctx, Payload, Process};
use crate::topology::NodeId;
use std::collections::{HashMap, HashSet};

/// Wrapper timer tokens carry this flag; the wrapped process keeps the
/// rest of the token space.
const TOKEN_FLAG: u64 = 1 << 63;

/// Backoff doubling is capped at `rto << MAX_BACKOFF_EXP`.
const MAX_BACKOFF_EXP: u32 = 5;

/// An unacknowledged frame awaiting retransmission.
struct Pending {
    to: NodeId,
    seq: u64,
    payload: Payload,
    attempt: u32,
}

/// Reliable-channel wrapper: runs any [`Process`] over lossy/duplicating
/// links by framing its sends with sequence numbers, acknowledging and
/// deduplicating receipts, and retransmitting unacknowledged frames on a
/// timeout with exponential backoff.
pub struct Reliable<P> {
    inner: P,
    /// Base retransmission timeout (doubled per attempt, capped).
    rto: u64,
    /// Give-up bound on send attempts per frame.
    max_attempts: u32,
    /// Next stream sequence number per destination.
    next_seq: HashMap<NodeId, u64>,
    /// In-flight frames keyed by retransmission-timer token.
    pending: HashMap<u64, Pending>,
    /// (destination, stream seq) → timer token, for ack lookup.
    by_stream: HashMap<(NodeId, u64), u64>,
    /// Stream sequence numbers already delivered, per source.
    seen: HashMap<NodeId, HashSet<u64>>,
    next_token: u64,
    /// The wrapped process halted; the wrapper halts once `pending`
    /// drains, so final messages still reach their destinations.
    inner_halted: bool,
}

impl<P: Process> Reliable<P> {
    /// Wrap `inner` with a reliable channel: retransmit after `rto` time
    /// units (doubling per attempt), giving up after `max_attempts` sends
    /// of the same frame. `rto` should exceed one round trip (i.e. at
    /// least `2 * max_delay` of the runner) to avoid spurious
    /// retransmissions.
    pub fn new(inner: P, rto: u64, max_attempts: u32) -> Self {
        assert!(rto >= 1, "retransmission timeout must be at least 1");
        assert!(max_attempts >= 1, "at least one attempt is required");
        Reliable {
            inner,
            rto,
            max_attempts,
            next_seq: HashMap::new(),
            pending: HashMap::new(),
            by_stream: HashMap::new(),
            seen: HashMap::new(),
            next_token: 0,
            inner_halted: false,
        }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Run an inner-process step with interception: the wrapped process
    /// sees the real context, but its sends are captured and re-issued
    /// through the reliable channel, and its halt is deferred until every
    /// pending frame is acknowledged or given up.
    fn run_inner(&mut self, ctx: &mut Ctx, f: impl FnOnce(&mut P, &mut Ctx)) {
        let mut sends: Vec<(NodeId, Payload, bool)> = Vec::new();
        let mut timers: Vec<(u64, u64)> = Vec::new();
        {
            let mut sub = Ctx::new(
                ctx.node,
                ctx.neighbors,
                &mut sends,
                &mut timers,
                ctx.stats,
                ctx.output,
                &mut self.inner_halted,
            );
            f(&mut self.inner, &mut sub);
        }
        for (delay, token) in timers {
            assert!(
                token & TOKEN_FLAG == 0,
                "wrapped processes may not use the reserved timer-token high bit"
            );
            ctx.set_timer(delay, token);
        }
        for (to, pl, _retransmit) in sends {
            self.send_reliable(to, pl, ctx);
        }
        self.settle(ctx);
    }

    /// Frame and send one application payload, arming its retransmission
    /// timer.
    fn send_reliable(&mut self, to: NodeId, payload: Payload, ctx: &mut Ctx) {
        let seq_ref = self.next_seq.entry(to).or_insert(0);
        let seq = *seq_ref;
        *seq_ref += 1;
        let token = TOKEN_FLAG | self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            Pending {
                to,
                seq,
                payload: payload.clone(),
                attempt: 1,
            },
        );
        self.by_stream.insert((to, seq), token);
        ctx.send(
            to,
            Payload::Rel {
                seq,
                inner: Box::new(payload),
            },
        );
        ctx.set_timer(self.rto, token);
    }

    /// Propagate a deferred inner halt once nothing is left in flight.
    fn settle(&mut self, ctx: &mut Ctx) {
        if self.inner_halted && self.pending.is_empty() {
            ctx.halt();
        }
    }
}

impl<P: Process> Process for Reliable<P> {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.run_inner(ctx, |p, c| p.on_start(c));
    }

    fn on_message(&mut self, from: NodeId, msg: &Payload, ctx: &mut Ctx) {
        match msg {
            Payload::RelAck { seq } => {
                if let Some(token) = self.by_stream.remove(&(from, *seq)) {
                    self.pending.remove(&token);
                }
                self.settle(ctx);
            }
            Payload::Rel { seq, inner } => {
                // Always acknowledge — the first ack may have been lost.
                ctx.send(from, Payload::RelAck { seq: *seq });
                let fresh = self.seen.entry(from).or_default().insert(*seq);
                if fresh && !self.inner_halted {
                    ctx.note_app_delivery();
                    let inner_pl = (**inner).clone();
                    self.run_inner(ctx, |p, c| p.on_message(from, &inner_pl, c));
                } else {
                    self.settle(ctx);
                }
            }
            other => {
                // Unframed traffic (mixed deployments) passes straight
                // through to the wrapped process.
                ctx.note_app_delivery();
                let pl = other.clone();
                self.run_inner(ctx, |p, c| p.on_message(from, &pl, c));
            }
        }
    }

    fn on_round(&mut self, round: u64, ctx: &mut Ctx) {
        self.run_inner(ctx, |p, c| p.on_round(round, c));
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token & TOKEN_FLAG == 0 {
            self.run_inner(ctx, |p, c| p.on_timer(token, c));
            return;
        }
        if let Some(p) = self.pending.get_mut(&token) {
            if p.attempt >= self.max_attempts {
                // Give up: unblock a deferred halt rather than retry
                // forever (bounds messages and guarantees quiescence).
                let p = self.pending.remove(&token).expect("present");
                self.by_stream.remove(&(p.to, p.seq));
            } else {
                p.attempt += 1;
                let backoff_exp = (p.attempt - 1).min(MAX_BACKOFF_EXP);
                ctx.resend(
                    p.to,
                    Payload::Rel {
                        seq: p.seq,
                        inner: Box::new(p.payload.clone()),
                    },
                );
                ctx.set_timer(self.rto << backoff_exp, token);
            }
        }
        self.settle(ctx);
    }

    fn on_recover(&mut self, ctx: &mut Ctx) {
        // Pending timers died with the crash: re-arm every in-flight
        // frame (sorted for determinism), then let the wrapped process
        // react.
        let mut tokens: Vec<u64> = self.pending.keys().copied().collect();
        tokens.sort_unstable();
        for token in tokens {
            ctx.set_timer(self.rto, token);
        }
        self.run_inner(ctx, |p, c| p.on_recover(c));
    }
}

#[cfg(test)]
mod tests {
    use crate::algorithms::{
        consensus, echo_nodes, expected_leader, reliable_echo_nodes, reliable_lcr_nodes,
    };
    use crate::engine::AsyncRunner;
    use crate::topology::Topology;

    #[test]
    fn echo_terminates_under_heavy_loss() {
        // The seed engine test proves raw echo stalls at drop 0.4; the
        // reliable wrapper completes the very same deployment.
        let topo = Topology::grid(4, 4);
        let mut r = AsyncRunner::new(topo, reliable_echo_nodes(16, 0, 12, 30), 5, 42);
        r.drop_messages(0.4);
        let stats = r.run(5_000_000);
        assert_eq!(stats.outputs[0], Some(1), "initiator detects termination");
        assert_eq!(
            stats.outputs.iter().filter(|o| o.is_some()).count(),
            16,
            "every node completes"
        );
        assert!(stats.retransmits > 0, "loss forces retransmission");
        assert!(stats.app_messages > 0);
    }

    #[test]
    fn lcr_elects_under_loss_on_the_bidirectional_ring() {
        let uids: Vec<u64> = (1..=12).map(|k| k * 3 % 13).collect();
        let max = expected_leader(&uids).expect("non-empty ring");
        let mut r = AsyncRunner::new(
            Topology::ring_bidirectional(12),
            reliable_lcr_nodes(&uids, 12, 30),
            5,
            7,
        );
        r.drop_messages(0.3);
        let stats = r.run(5_000_000);
        assert_eq!(consensus(&stats), Some(max));
    }

    #[test]
    fn no_loss_means_no_retransmissions() {
        let topo = Topology::grid(3, 3);
        let mut r = AsyncRunner::new(topo, reliable_echo_nodes(9, 0, 12, 20), 5, 3);
        let stats = r.run(1_000_000);
        assert_eq!(stats.retransmits, 0, "rto > 2·max_delay: acks win the race");
        assert_eq!(stats.outputs[0], Some(1));
    }

    #[test]
    fn app_level_delivery_matches_the_raw_channel() {
        // Echo's application-message count is schedule-independent:
        // exactly 2·|E| tokens. The wrapper must deliver the same.
        let topo = Topology::random_connected(20, 15, 4);
        let edges = topo.directed_edge_count() as u64;
        let raw = AsyncRunner::new(topo.clone(), echo_nodes(20, 0), 5, 9).run(1_000_000);
        assert_eq!(raw.messages, edges);
        let rel = AsyncRunner::new(topo, reliable_echo_nodes(20, 0, 12, 20), 5, 9).run(1_000_000);
        assert_eq!(rel.app_messages, edges, "same app messages, framed");
        assert!(rel.messages > edges, "framing adds acks on the wire");
    }

    #[test]
    fn duplicating_network_delivers_each_app_message_once() {
        let topo = Topology::grid(4, 4);
        let edges = topo.directed_edge_count() as u64;
        let mut r = AsyncRunner::new(topo, reliable_echo_nodes(16, 0, 12, 20), 5, 21);
        r.duplicate_messages(0.5);
        let stats = r.run(5_000_000);
        assert!(stats.duplicated > 0, "duplicates were injected");
        assert_eq!(
            stats.app_messages, edges,
            "sequence numbers dedup the duplicates"
        );
        assert_eq!(stats.outputs[0], Some(1));
    }
}
