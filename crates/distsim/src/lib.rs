//! # gp-distsim — a discrete-event message-passing simulator for
//! distributed algorithms
//!
//! The substrate behind the paper's §4: a distributed-algorithm concept
//! taxonomy is only useful if the performance dimensions it records —
//! message complexity, time complexity, and the "rarely accounted for"
//! **local computation at a node** — can be *measured*. This simulator
//! executes distributed algorithms over explicit topologies under both
//! timing models the taxonomy distinguishes, with crash-failure injection,
//! and reports exactly those three metrics per run.
//!
//! * [`topology`] — ring, complete graph, star, grid, random connected
//!   (dimension 2 of the taxonomy: *topology*).
//! * [`engine`] — synchronous rounds and asynchronous event-queue execution
//!   (dimension 6: *timing*), with crash schedules (dimension 3: *fault
//!   tolerance*) and per-node message/local-step accounting.
//! * [`algorithms`] — LCR and Hirschberg–Sinclair leader election,
//!   FloodMax, Chang's echo broadcast/convergecast, synchronous BFS
//!   spanning tree (dimensions 1, 5: *problem*, *strategy*).
//!
//! Runs are deterministic per seed, so every experiment is reproducible.

pub mod algorithms;
pub mod engine;
pub mod topology;

pub use engine::{AsyncRunner, Ctx, Payload, Process, RunStats, SyncRunner};
pub use topology::Topology;
