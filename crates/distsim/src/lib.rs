//! # gp-distsim — a discrete-event message-passing simulator for
//! distributed algorithms
//!
//! The substrate behind the paper's §4: a distributed-algorithm concept
//! taxonomy is only useful if the performance dimensions it records —
//! message complexity, time complexity, and the "rarely accounted for"
//! **local computation at a node** — can be *measured*. This simulator
//! executes distributed algorithms over explicit topologies under both
//! timing models the taxonomy distinguishes, with crash-failure injection,
//! and reports exactly those three metrics per run.
//!
//! * [`topology`] — ring, complete graph, star, grid, random connected
//!   (dimension 2 of the taxonomy: *topology*).
//! * [`engine`] — synchronous rounds and asynchronous event-queue execution
//!   (dimension 6: *timing*), with fault injection — omission, duplication,
//!   crash-stop and crash-recovery schedules (dimension 3: *fault
//!   tolerance*) — timer events, a structured event trace, and per-node
//!   message/local-step accounting.
//! * [`channel`] — reliable delivery as a generic channel concept:
//!   sequence numbers, acknowledgments, and timeout-driven retransmission
//!   with exponential backoff, composing with any unmodified [`Process`].
//! * [`algorithms`] — LCR and Hirschberg–Sinclair leader election,
//!   FloodMax, Chang's echo broadcast/convergecast, synchronous BFS
//!   spanning tree (dimensions 1, 5: *problem*, *strategy*), plus the
//!   fault-tolerant entries: reliable-channel Echo/LCR and the
//!   crash-tolerant FT-FloodMax consensus.
//! * [`net`] — sim-to-real: the same unmodified processes over real TCP.
//!   The lockstep [`NetRunner`] replays the simulator's event schedule
//!   against a live socket mesh and is event-for-event identical to
//!   [`AsyncRunner`] on the same seed/topology (faults included); the
//!   free-running [`LiveMesh`] gives each node a thread and a real tick
//!   clock for actual deployment (it backs `gp-service`'s control
//!   plane).
//!
//! Runs are deterministic per seed — including lossy, duplicating, and
//! crash-recovery runs — so every experiment is reproducible.

pub mod algorithms;
pub mod channel;
pub mod engine;
pub mod net;
pub mod topology;

pub use channel::Reliable;
pub use engine::{
    required_diameter, trace_json, AsyncRunner, BoxProcess, ConfigError, Ctx, Payload, Process,
    RunStats, SyncRunner, TraceEvent,
};
pub use net::{decode_payload, encode_payload, LiveMesh, NetRunner};
pub use topology::Topology;
