//! Property-based tests for the fault-tolerance layer: the reliable
//! channel is a semantic no-op on perfect links, faulty runs are
//! deterministic per seed (drops, duplicates, crash-recovery, and the
//! event trace included), and retransmitting LCR keeps its agreement
//! property across schedules and loss.

use gp_distsim::algorithms::{
    consensus, echo_nodes, ft_floodmax_nodes, lcr_nodes, reliable_echo_nodes, reliable_lcr_nodes,
};
use gp_distsim::{AsyncRunner, Topology};
use proptest::prelude::*;

const BUDGET: u64 = 5_000_000;

proptest! {
    /// On a loss-free network the reliable wrapper is transparent: the
    /// wrapped Echo decides exactly what raw Echo decides, its
    /// application-level delivery count equals the raw channel's message
    /// count, and nothing is ever retransmitted.
    #[test]
    fn reliable_echo_is_transparent_without_loss(
        n in 4usize..20,
        extra in 0usize..12,
        topo_seed in 0u64..500,
        seed in 0u64..500,
    ) {
        let topo = Topology::random_connected(n, extra, topo_seed);
        let raw = AsyncRunner::new(topo.clone(), echo_nodes(n, 0), 5, seed).run(BUDGET);
        let rel =
            AsyncRunner::new(topo, reliable_echo_nodes(n, 0, 12, 20), 5, seed).run(BUDGET);
        prop_assert_eq!(&rel.outputs, &raw.outputs);
        prop_assert_eq!(rel.app_messages, raw.messages);
        prop_assert_eq!(rel.retransmits, 0);
        prop_assert_eq!(rel.undelivered, 0, "quiesced, not budget-capped");
    }

    /// Same for LCR: the wrapper changes the ring from unidirectional to
    /// bidirectional (acks need reverse links) but not the election.
    #[test]
    fn reliable_lcr_elects_the_same_leader_without_loss(
        n in 3usize..16,
        seed in 0u64..500,
    ) {
        let uids: Vec<u64> = (0..n as u64).map(|i| (i * 631 + 89) % 2003).collect();
        let max = *uids.iter().max().unwrap();
        let raw = AsyncRunner::new(
            Topology::ring_unidirectional(n),
            lcr_nodes(&uids),
            5,
            seed,
        )
        .run(BUDGET);
        let rel = AsyncRunner::new(
            Topology::ring_bidirectional(n),
            reliable_lcr_nodes(&uids, 12, 20),
            5,
            seed,
        )
        .run(BUDGET);
        prop_assert_eq!(consensus(&raw), Some(max));
        prop_assert_eq!(consensus(&rel), Some(max));
        prop_assert_eq!(rel.retransmits, 0);
    }

    /// Faulty runs are a pure function of the seed: the same deployment
    /// under drops + duplicates + crash + recovery reproduces identical
    /// stats and an identical event trace, and a different seed is allowed
    /// to differ (schedule, not outcome, is what varies).
    #[test]
    fn faulty_runs_are_deterministic_per_seed(
        seed in 0u64..1000,
        drop_pct in 0u32..40,
        dup_pct in 0u32..40,
    ) {
        let n = 9;
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 1009).collect();
        let run = |s: u64| {
            let mut r = AsyncRunner::new(
                Topology::complete(n),
                ft_floodmax_nodes(&ids, 10, 4),
                5,
                s,
            );
            r.drop_messages(f64::from(drop_pct) / 100.0);
            r.duplicate_messages(f64::from(dup_pct) / 100.0);
            r.crash(2, 3);
            r.recover(2, 40);
            r.record_trace();
            let stats = r.run(BUDGET);
            (stats, r.trace_json())
        };
        let (s1, t1) = run(seed);
        let (s2, t2) = run(seed);
        prop_assert_eq!(&s1, &s2, "same seed, same run");
        prop_assert_eq!(t1, t2, "same seed, same trace");
        prop_assert!(s1.conserves_messages(), "conservation law");
    }

    /// Retransmitting LCR agreement: under message loss on the
    /// bidirectional ring, every deciding node elects the maximum uid —
    /// across uid arrangements, seeds, and loss rates up to 30%.
    #[test]
    fn retransmitting_lcr_agrees_under_loss(
        raw_uids in prop::collection::vec(1u64..10_000, 3..10),
        seed in 0u64..200,
        drop_pct in 0u32..=30,
    ) {
        // Make the uids distinct by construction (LCR needs unique ids).
        let uids: Vec<u64> = raw_uids
            .iter()
            .enumerate()
            .map(|(i, &u)| u * 16 + i as u64)
            .collect();
        let n = uids.len();
        let max = *uids.iter().max().unwrap();
        let mut r = AsyncRunner::new(
            Topology::ring_bidirectional(n),
            reliable_lcr_nodes(&uids, 12, 40),
            5,
            seed,
        );
        r.drop_messages(f64::from(drop_pct) / 100.0);
        let stats = r.run(BUDGET);
        prop_assert_eq!(consensus(&stats), Some(max));
        prop_assert!(stats.conserves_messages());
    }
}
