//! Sim-to-real cross-validation: the socket-backed [`NetRunner`] must be
//! observationally identical to the in-memory [`AsyncRunner`] on the same
//! (seed, topology) — same stats, same structured event trace, same
//! delivered-message multiset, same elected leader. This is the paper's
//! composition claim made falsifiable: one algorithm source, two runtimes,
//! event-for-event agreement.

use gp_distsim::algorithms::{
    consensus, expected_leader, ft_floodmax_nodes, reliable_echo_nodes, reliable_lcr_nodes,
};
use gp_distsim::{AsyncRunner, BoxProcess, NetRunner, Topology, TraceEvent};
use proptest::prelude::*;

const BUDGET: u64 = 300_000;

/// The multiset of delivered messages as (seq, from, to) triples — `seq`
/// correlates a delivery with its send, so equality here means the two
/// runtimes delivered the *same* messages, not merely the same number.
fn delivered(trace: &[TraceEvent]) -> Vec<(u64, usize, usize)> {
    let mut d: Vec<_> = trace
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Deliver { seq, from, to, .. } => Some((seq, from, to)),
            _ => None,
        })
        .collect();
    d.sort_unstable();
    d
}

/// Run the same deployment under both runtimes and assert event-for-event
/// agreement. Returns the (identical) consensus value.
fn cross_validate(
    topo: &Topology,
    make: &dyn Fn() -> Vec<BoxProcess>,
    max_delay: u64,
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
) -> Option<u64> {
    let mut sim = AsyncRunner::new(topo.clone(), make(), max_delay, seed);
    sim.drop_messages(drop_rate)
        .duplicate_messages(dup_rate)
        .record_trace();
    let sim_stats = sim.run(BUDGET);

    let mut net = NetRunner::new(topo.clone(), make(), max_delay, seed);
    net.drop_messages(drop_rate)
        .duplicate_messages(dup_rate)
        .record_trace();
    let net_stats = net.run(BUDGET);

    assert_eq!(sim_stats, net_stats, "stats diverge on {}", topo.name());
    assert_eq!(
        sim.trace(),
        net.trace(),
        "traces diverge on {}",
        topo.name()
    );
    assert_eq!(
        delivered(sim.trace()),
        delivered(net.trace()),
        "delivered multisets diverge on {}",
        topo.name()
    );
    assert!(sim_stats.conserves_messages());
    let c = consensus(&sim_stats);
    assert_eq!(
        c,
        consensus(&net_stats),
        "leaders diverge on {}",
        topo.name()
    );
    c
}

/// The acceptance matrix: three distinct topology families, catalog
/// algorithms unmodified, faults on — sim and sockets agree everywhere.
#[test]
fn cross_validation_matrix_on_three_topologies() {
    let uids: Vec<u64> = vec![17, 4, 29, 8];

    // 1. FT-FloodMax on the complete graph, clean network.
    let topo = Topology::complete(4);
    let elected = cross_validate(&topo, &|| ft_floodmax_nodes(&uids, 8, 4), 4, 7, 0.0, 0.0);
    assert_eq!(elected, expected_leader(&uids));

    // 2. Reliable Echo on a grid, under drops and duplicates.
    let topo = Topology::grid(2, 3);
    let done = cross_validate(
        &topo,
        &|| reliable_echo_nodes(6, 0, 10, 12),
        5,
        13,
        0.15,
        0.1,
    );
    assert_eq!(done, Some(1), "echo terminates despite loss");

    // 3. Reliable LCR on the bidirectional ring, under drops.
    let topo = Topology::ring_bidirectional(4);
    let elected = cross_validate(&topo, &|| reliable_lcr_nodes(&uids, 10, 20), 4, 3, 0.2, 0.0);
    assert_eq!(elected, expected_leader(&uids));
}

/// Crash-recovery schedules cross-validate too: the coordinator replays
/// the same control events the simulator would.
#[test]
fn crash_recovery_schedule_cross_validates() {
    let uids: Vec<u64> = vec![6, 31, 12, 25, 9];
    let topo = Topology::complete(5);
    let run = |net: bool| {
        let procs = ft_floodmax_nodes(&uids, 8, 5);
        if net {
            let mut r = NetRunner::new(topo.clone(), procs, 4, 21);
            r.crash(1, 5).recover(1, 60).record_trace();
            let stats = r.run(BUDGET);
            (stats, r.trace().to_vec())
        } else {
            let mut r = AsyncRunner::new(topo.clone(), procs, 4, 21);
            r.crash(1, 5).recover(1, 60).record_trace();
            let stats = r.run(BUDGET);
            (stats, r.trace().to_vec())
        }
    };
    let (sim_stats, sim_trace) = run(false);
    let (net_stats, net_trace) = run(true);
    assert_eq!(sim_stats, net_stats);
    assert_eq!(sim_trace, net_trace);
    // Node 1 crashed mid-election and came back; the survivors' maximum
    // still wins in both worlds.
    assert_eq!(consensus(&sim_stats), expected_leader(&uids));
}

proptest! {
    /// Property: for random small topologies, seeds, and fault rates, the
    /// socket runner and the simulator yield identical delivered-message
    /// multisets and agree on the elected leader.
    #[test]
    fn socket_and_sim_agree_on_random_deployments(
        kind in 0usize..4,
        n in 3usize..=5,
        seed in 0u64..10_000,
        drop_pct in 0u32..=25,
        dup_pct in 0u32..=25,
    ) {
        let topo = match kind {
            0 => Topology::complete(n),
            1 => Topology::ring_bidirectional(n),
            2 => Topology::star(n),
            _ => Topology::random_connected(n, 2, seed),
        };
        let uids: Vec<u64> = (0..n as u64).map(|i| (i * 131 + 7) % 997).collect();
        let elected = cross_validate(
            &topo,
            &|| ft_floodmax_nodes(&uids, 6, 3),
            4,
            seed,
            f64::from(drop_pct) / 100.0,
            f64::from(dup_pct) / 100.0,
        );
        // Agreement between runtimes is asserted inside cross_validate;
        // on a clean network the leader must also be the max uid.
        if drop_pct == 0 {
            prop_assert_eq!(elected, expected_leader(&uids));
        }
    }
}
